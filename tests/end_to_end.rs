//! End-to-end integration: dataset → YOLLO training → evaluation →
//! sentence-level inference, across every crate of the workspace.

use yollo::prelude::*;

fn tiny_dataset(kind: DatasetKind, seed: u64) -> Dataset {
    Dataset::generate(DatasetConfig::tiny(kind, seed))
}

#[test]
fn training_reduces_loss_on_every_dataset_kind() {
    for kind in DatasetKind::ALL {
        let ds = tiny_dataset(kind, 3);
        let mut model = Yollo::for_dataset(&ds, 1);
        let log = Trainer::new(TrainConfig {
            iterations: 25,
            batch_size: 4,
            eval_every: 0,
            word2vec_init: false,
            pretrain_backbone_steps: 0,
            ..TrainConfig::default()
        })
        .train(&mut model, &ds);
        let (early, late) = (
            log.early_loss(5).expect("run produced applied steps"),
            log.late_loss(5).expect("run produced applied steps"),
        );
        assert!(late < early, "{kind:?}: loss {early:.3} -> {late:.3}");
    }
}

#[test]
fn full_pipeline_is_deterministic_under_seeds() {
    let run = || {
        let ds = tiny_dataset(DatasetKind::SynthRef, 9);
        let mut model = Yollo::for_dataset(&ds, 4);
        Trainer::new(TrainConfig {
            iterations: 10,
            batch_size: 4,
            eval_every: 0,
            word2vec_init: true,
            pretrain_backbone_steps: 5,
            ..TrainConfig::default()
        })
        .train(&mut model, &ds);
        model.evaluate(&ds, Split::Val).ious
    };
    assert_eq!(run(), run());
}

#[test]
fn evaluation_covers_every_sample_and_is_bounded() {
    let ds = tiny_dataset(DatasetKind::SynthRefPlus, 5);
    let model = Yollo::for_dataset(&ds, 2);
    for split in [Split::Val, Split::TestA, Split::TestB] {
        let m = model.evaluate(&ds, split);
        assert_eq!(m.len(), ds.samples(split).len());
        assert!(m.ious.iter().all(|i| (0.0..=1.0).contains(i)));
    }
}

#[test]
fn sentence_inference_accepts_unknown_words() {
    let ds = tiny_dataset(DatasetKind::SynthRef, 6);
    let model = Yollo::for_dataset(&ds, 3);
    let scene = &ds.scenes()[0];
    // words never seen in training map to UNK but must not crash
    let pred = model.predict_scene_query(scene, "the zorbly flumph near the whatsit");
    assert!(pred.bbox.w >= 0.0 && pred.score.is_finite());
}

#[test]
fn model_roundtrips_through_disk() {
    let ds = tiny_dataset(DatasetKind::SynthRef, 7);
    let mut model = Yollo::for_dataset(&ds, 5);
    Trainer::new(TrainConfig {
        iterations: 8,
        batch_size: 4,
        eval_every: 0,
        word2vec_init: false,
        pretrain_backbone_steps: 0,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);
    let dir = std::env::temp_dir().join("yollo_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.json");
    model.save(&path).unwrap();
    let loaded = Yollo::load(&path).unwrap();
    let a = model.evaluate(&ds, Split::Val).ious;
    let b = loaded.evaluate(&ds, Split::Val).ious;
    assert_eq!(a, b);
    std::fs::remove_file(path).ok();
}

#[test]
fn word2vec_embeddings_flow_into_the_model() {
    use yollo::text::{Word2Vec, Word2VecConfig};
    let ds = tiny_dataset(DatasetKind::SynthRef, 8);
    let vocab = ds.build_vocab();
    let corpus: Vec<Vec<usize>> = ds
        .samples(Split::Train)
        .iter()
        .map(|s| s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect())
        .collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
    let w2v = Word2Vec::train(
        &corpus,
        vocab.len(),
        Word2VecConfig {
            dim: YolloConfig::for_dataset(&ds).d_rel,
            epochs: 1,
            ..Word2VecConfig::default()
        },
        &mut rng,
    );
    let mut model = Yollo::for_dataset(&ds, 1);
    model
        .encoder_mut()
        .load_word_embeddings(w2v.input_embeddings());
    // model still functions after adopting pretrained embeddings
    let pred = model.predict_scene_query(&ds.scenes()[0], "red circle");
    assert!(pred.score.is_finite());
}
