//! Reproduction regression tests: the paper's *shape claims* must hold
//! even at miniature scale. These are slower than unit tests (they train
//! small models) but they pin down exactly what the repository claims to
//! reproduce.

use std::sync::Mutex;

use yollo::prelude::*;

/// Serializes the tests in this binary: they assert on wall-clock timings
/// and on process-global `yollo-obs` counters, and a sibling test training
/// a model in parallel would pollute both.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn quick_train(ds: &Dataset, iterations: usize, seed: u64) -> Yollo {
    let mut model = Yollo::for_dataset(ds, seed);
    Trainer::new(TrainConfig {
        iterations,
        batch_size: 8,
        eval_every: 0,
        pretrain_backbone_steps: 20,
        ..TrainConfig::default()
    })
    .train(&mut model, ds);
    model
}

/// §1 / Table 5: one-stage inference must be several times faster than the
/// two-stage pipeline on identical inputs — the structural claim survives
/// any hardware.
///
/// The *structural* half (stage-ii runs its network once per proposal, so
/// the two-stage pipeline issues an op count that scales with the proposal
/// budget while YOLLO's is constant) is pinned on the obs work counters:
/// deterministic, and independent of build profile and machine load. The
/// wall-clock half is asserted only in optimized builds — at miniature
/// scale the one-stage net does *more* raw matmul flops than the 60
/// tiny per-proposal matmuls, so an unoptimized debug build (where the
/// matmul kernel dominates everything) inverts the constant factors and
/// measures the compiler, not the architecture.
#[test]
fn one_stage_is_structurally_faster_than_two_stage() {
    let _g = serial();
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 1));
    let vocab = ds.build_vocab();
    let model = Yollo::for_dataset(&ds, 0);
    let rpn = ProposalNetwork::new(
        ProposalConfig {
            proposals_per_image: 60,
            ..ProposalConfig::default()
        },
        0,
    );
    let roi = RoiExtractor::new(8, 2);
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let speaker = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 1);
    let grounder = TwoStageGrounder::new(&rpn, roi, &speaker, &vocab, ds.max_query_len());

    let s = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(s);
    let img = scene.render().reshape(&[1, 5, scene.height, scene.width]);
    let q = vocab.encode_padded(&s.tokens, model.config().max_query_len);

    yollo_obs::set_enabled(true);
    let reg = yollo_obs::registry();
    let work = || {
        (
            reg.counter("tensor.matmul.calls").get(),
            reg.counter("tensor.graph.nodes").get(),
        )
    };

    let w0 = work();
    let t_one = time_inference(
        || {
            model.predict_batch(img.clone(), std::slice::from_ref(&q));
        },
        2,
        9,
    );
    let w1 = work();
    let t_two = time_inference(
        || {
            grounder.ground(scene, &s.tokens);
        },
        1,
        5,
    );
    let w2 = work();

    // Per-pass op counts (both pipelines ran 11 resp. 6 total passes).
    let one_matmuls = (w1.0 - w0.0) / 11;
    let one_nodes = (w1.1 - w0.1) / 11;
    let two_matmuls = (w2.0 - w1.0) / 6;
    let two_nodes = (w2.1 - w1.1) / 6;
    if one_nodes > 0 {
        // measured here: ~28x the matmuls, ~17x the graph nodes; assert a
        // conservative 5x so model-shape tweaks don't trip it
        assert!(
            two_matmuls > 5 * one_matmuls,
            "stage-ii must issue per-proposal matmuls \
             (two-stage {two_matmuls}/pass vs one-stage {one_matmuls}/pass)"
        );
        assert!(
            two_nodes > 5 * one_nodes,
            "stage-ii must build a per-proposal graph \
             (two-stage {two_nodes}/pass vs one-stage {one_nodes}/pass)"
        );
    }

    let speedup = t_two.p50_s / t_one.p50_s;
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping wall-clock assert (measured {speedup:.1}x)");
        return;
    }
    // medians, and a conservative threshold: CI machines may run this test
    // alongside other load
    assert!(
        speedup > 1.5,
        "one-stage should be clearly faster; measured {speedup:.1}x \
         (one-stage p50 {:.4}s vs two-stage p50 {:.4}s)",
        t_one.p50_s,
        t_two.p50_s
    );
}

/// §1 "Low accuracy": the two-stage pipeline can never beat its stage-i
/// recall, while YOLLO has no such ceiling.
#[test]
fn two_stage_is_capped_by_proposal_recall() {
    let _g = serial();
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 2));
    let vocab = ds.build_vocab();
    let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 3);
    rpn.train(&ds, 40, 2, 4);
    let roi = RoiExtractor::new(8, 2);
    let cache = CandidateCache::build(&rpn, roi, &ds);
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let mut listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 5);
    listener.train(&ds, &vocab, &cache, 150, 6);
    let grounder = TwoStageGrounder::new(&rpn, roi, &listener, &vocab, ds.max_query_len());
    let recall = rpn.target_recall(&ds, Split::Val, 0.5);
    let acc = grounder.evaluate(&ds, Split::Val).acc_at(0.5);
    assert!(acc <= recall + 1e-9, "acc {acc:.3} > recall {recall:.3}");
}

/// Table 4's strongest claim, testable cheaply: the query-blind
/// (no-co-attention) model *cannot* disambiguate same-kind distractors, so
/// the full model must beat it on a dataset built of such cases.
#[test]
fn co_attention_matters_on_disambiguation_queries() {
    let _g = serial();
    let ds = Dataset::generate(DatasetConfig {
        train_images: 40,
        val_images: 20,
        test_images: 4,
        targets_per_image: 2,
        queries_per_target: 2,
        kind: DatasetKind::SynthRef,
        seed: 5,
    });
    let full = quick_train(&ds, 160, 7);
    let full_acc = full.evaluate(&ds, Split::Val).miou();

    let cfg = YolloConfig {
        ablation: AttentionAblation::NoCoAttention,
        ..YolloConfig::for_dataset(&ds)
    };
    let mut blind = Yollo::new(cfg, 7);
    blind.set_vocab(ds.build_vocab());
    Trainer::new(TrainConfig {
        iterations: 160,
        batch_size: 8,
        eval_every: 0,
        pretrain_backbone_steps: 20,
        ..TrainConfig::default()
    })
    .train(&mut blind, &ds);
    let blind_acc = blind.evaluate(&ds, Split::Val).miou();

    // the gap may be small at this scale, but blind must not win clearly
    assert!(
        full_acc + 0.05 >= blind_acc,
        "query-blind model beat the full model: {blind_acc:.3} vs {full_acc:.3}"
    );

    // and the blind model's predictions must be literally query-invariant
    let s = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(s);
    let a = blind.predict_scene_query(scene, "red circle");
    let b = blind.predict_scene_query(scene, "blue square");
    assert_eq!(
        a.bbox, b.bbox,
        "no-co-attention model must ignore the query"
    );
    let fa = full.predict_scene_query(scene, "the red circle on the left");
    let fb = full.predict_scene_query(scene, "the blue square on the right");
    // the full model is allowed to (and in practice does) move
    let _ = (fa, fb);
}

/// Figure 4: training converges — the loss must drop substantially within
/// a few hundred iterations on every dataset flavour.
#[test]
fn training_loss_drops_on_all_flavours() {
    let _g = serial();
    for kind in DatasetKind::ALL {
        let ds = Dataset::generate(DatasetConfig::tiny(kind, 11));
        let mut model = Yollo::for_dataset(&ds, 3);
        let log = Trainer::new(TrainConfig {
            iterations: 120,
            batch_size: 8,
            eval_every: 0,
            pretrain_backbone_steps: 0,
            ..TrainConfig::default()
        })
        .train(&mut model, &ds);
        let (early, late) = (
            log.early_loss(10).expect("run produced applied steps"),
            log.late_loss(10).expect("run produced applied steps"),
        );
        assert!(
            late < early * 0.8,
            "{kind:?}: insufficient convergence {early:.3} -> {late:.3}"
        );
    }
}
