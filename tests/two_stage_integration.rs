//! Integration of the two-stage baseline family: proposal RPN → RoI
//! features → listener / speaker / MMI / ensemble → full grounder.

use yollo::prelude::*;

fn setup() -> (
    Dataset,
    ProposalNetwork,
    CandidateCache,
    RoiExtractor,
    Vocab,
) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 21));
    let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 1);
    rpn.train(&ds, 25, 2, 3);
    let roi = RoiExtractor::new(8, 2);
    let cache = CandidateCache::build(&rpn, roi, &ds);
    let vocab = ds.build_vocab();
    (ds, rpn, cache, roi, vocab)
}

#[test]
fn rpn_training_improves_target_recall() {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 22));
    let untrained = ProposalNetwork::new(ProposalConfig::default(), 5);
    let r0 = untrained.target_recall(&ds, Split::Val, 0.5);
    let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 5);
    rpn.train(&ds, 60, 2, 3);
    let r1 = rpn.target_recall(&ds, Split::Val, 0.5);
    assert!(
        r1 > r0 || r1 > 0.5,
        "recall did not improve: {r0:.2} -> {r1:.2}"
    );
}

#[test]
fn proposals_stay_inside_the_image() {
    let (ds, rpn, _, _, _) = setup();
    let scene = &ds.scenes()[0];
    let (proposals, feat) = rpn.propose(scene);
    assert!(!proposals.is_empty());
    assert!(proposals.len() <= rpn.config().proposals_per_image);
    assert_eq!(feat.dims()[1], rpn.backbone().out_channels());
    for (b, s) in &proposals {
        assert!((0.0..=1.0).contains(s));
        assert!(b.x >= -1e-9 && b.y >= -1e-9);
        assert!(b.x2() <= scene.width as f64 + 1e-9);
        assert!(b.y2() <= scene.height as f64 + 1e-9);
    }
    // scores are sorted descending (NMS keeps best first)
    for w in proposals.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
}

#[test]
fn trained_listener_beats_untrained_on_gt_candidates() {
    let (ds, rpn, cache, roi, vocab) = setup();
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let cfg = ListenerConfig::small(feat_dim, vocab.len());

    let eval_on_gt = |listener: &Listener| {
        let mut correct = 0;
        let mut total = 0;
        for s in ds.samples(Split::Train) {
            let cands = cache.candidates(s.scene_idx);
            let q = vocab.encode_padded(&s.tokens, ds.max_query_len());
            let scores = listener.score_proposals(cands, &q);
            let best = (0..scores.len())
                .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap())
                .unwrap();
            correct += (best == s.target_idx) as usize;
            total += 1;
        }
        correct as f64 / total as f64
    };

    let untrained = Listener::new(cfg, 3);
    let acc0 = eval_on_gt(&untrained);
    let mut trained = Listener::new(cfg, 3);
    trained.train(&ds, &vocab, &cache, 250, 4);
    let acc1 = eval_on_gt(&trained);
    assert!(
        acc1 > acc0,
        "listener did not improve: {acc0:.2} -> {acc1:.2}"
    );
}

#[test]
fn ensemble_and_mmi_pipelines_run() {
    let (ds, rpn, cache, roi, vocab) = setup();
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let mut listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 3);
    listener.train(&ds, &vocab, &cache, 40, 4);
    let mut speaker = Speaker::new(
        SpeakerConfig {
            mmi_margin: Some(0.5),
            ..SpeakerConfig::small(feat_dim, vocab.len())
        },
        3,
    );
    speaker.train(&ds, &vocab, &cache, 40, 4);
    let ensemble = EnsembleScorer::new(vec![&listener, &speaker]);
    assert_eq!(ensemble.name(), "listener+speaker+MMI");
    let grounder = TwoStageGrounder::new(&rpn, roi, &ensemble, &vocab, ds.max_query_len());
    let metrics = grounder.evaluate(&ds, Split::Val);
    assert_eq!(metrics.len(), ds.samples(Split::Val).len());
    assert!(metrics.ious.iter().all(|i| i.is_finite()));
}

#[test]
fn two_stage_accuracy_is_capped_by_stage_one_recall() {
    // structural property from §1: if stage i misses the target, stage ii
    // cannot recover — pipeline ACC@0.5 <= proposal recall@0.5
    let (ds, rpn, cache, roi, vocab) = setup();
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let mut listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 3);
    listener.train(&ds, &vocab, &cache, 120, 4);
    let grounder = TwoStageGrounder::new(&rpn, roi, &listener, &vocab, ds.max_query_len());
    let recall = rpn.target_recall(&ds, Split::Val, 0.5);
    let acc = grounder.evaluate(&ds, Split::Val).acc_at(0.5);
    assert!(
        acc <= recall + 1e-9,
        "pipeline accuracy {acc:.3} exceeded stage-i recall {recall:.3}"
    );
}
