#!/bin/sh
# Regenerates every paper table/figure at the current YOLLO_SCALE.
set -e
cd "$(dirname "$0")"
mkdir -p target/experiments
run() {
  echo "=== $1 ==="
  cargo run --release -p yollo-bench --bin "$1" \
    > "target/experiments/$2_report.md" 2> "target/experiments/$2_progress.log"
}
run exp_fig4_curves fig4
run exp_table2_main table2
run exp_table3_metrics table3
run exp_fig5_visualize fig5
run exp_table1_stats table1
run exp_table5_speed table5
run exp_table4_ablation table4
run exp_error_analysis error_analysis
run exp_extensions extensions
run exp_proposers proposers
echo ALL_EXPERIMENTS_DONE
