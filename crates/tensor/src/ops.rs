//! Differentiable operations on [`Var`] handles.
//!
//! Every method records a node on the owning [`Graph`] whose backward
//! closure produces exact gradients. Shapes follow the conventions of
//! [`Tensor`]: broadcasting for elementwise ops, 2-D / batched 3-D matmul.

use crate::conv::{col2im, im2col, Conv2dSpec, Pool2dSpec};
use crate::graph::BackFn;
use crate::parallel;
use crate::tensor::{matmul_blocked, matmul_nt, matmul_tn};
use crate::{Element, Graph, Tensor, Var};

// The named add/sub/mul/div/neg methods are the primitive autodiff API;
// the std operator impls below delegate to them, not the other way round.
#[allow(clippy::should_implement_trait)]
impl<'g, E: Element> Var<'g, E> {
    fn push(self, value: Tensor<E>, back: BackFn<E>) -> Var<'g, E> {
        let id = self.graph.push(value, Some(back));
        Var {
            graph: self.graph,
            id,
        }
    }

    // ----- elementwise binary -----

    fn binop(
        self,
        rhs: Var<'g, E>,
        f: impl Fn(E, E) -> E + Sync,
        back: impl Fn(&Tensor<E>, &Tensor<E>, &Tensor<E>) -> (Tensor<E>, Tensor<E>) + 'static,
    ) -> Var<'g, E> {
        let a = self.value();
        let b = rhs.value();
        let out = a.zip_broadcast(&b, f);
        let (ia, ib) = (self.id, rhs.id);
        let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
        self.push(
            out,
            Box::new(move |g| {
                let (ga, gb) = back(g, &a, &b);
                vec![(ia, ga.reduce_to(&da)), (ib, gb.reduce_to(&db))]
            }),
        )
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(self, rhs: Var<'g, E>) -> Var<'g, E> {
        self.binop(rhs, |a, b| a + b, |g, _, _| (g.clone(), g.clone()))
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(self, rhs: Var<'g, E>) -> Var<'g, E> {
        self.binop(rhs, |a, b| a - b, |g, _, _| (g.clone(), g.scale(-E::ONE)))
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(self, rhs: Var<'g, E>) -> Var<'g, E> {
        self.binop(
            rhs,
            |a, b| a * b,
            |g, a, b| {
                (
                    g.zip_broadcast(b, |x, y| x * y),
                    g.zip_broadcast(a, |x, y| x * y),
                )
            },
        )
    }

    /// Elementwise (broadcasting) division.
    pub fn div(self, rhs: Var<'g, E>) -> Var<'g, E> {
        self.binop(
            rhs,
            |a, b| a / b,
            |g, a, b| {
                let ga = g.zip_broadcast(b, |x, y| x / y);
                let gb = g
                    .zip_broadcast(a, |x, y| x * y)
                    .zip_broadcast(b, |x, y| -x / (y * y));
                (ga, gb)
            },
        )
    }

    // ----- elementwise unary -----

    fn unary(
        self,
        f: impl Fn(E) -> E + Sync,
        dfdx: impl Fn(E, E) -> E + 'static, // (x, y=f(x)) -> derivative
    ) -> Var<'g, E> {
        let x = self.value();
        let y = x.map(f);
        let yc = y.clone();
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| {
                let mut gx = x.clone();
                let gs = g.as_slice();
                let ys = yc.as_slice();
                for (i, v) in gx.as_mut_slice().iter_mut().enumerate() {
                    *v = gs[i] * dfdx(*v, ys[i]);
                }
                vec![(id, gx)]
            }),
        )
    }

    /// Negation.
    pub fn neg(self) -> Var<'g, E> {
        self.mul_scalar(-1.0)
    }

    /// Adds a scalar constant.
    pub fn add_scalar(self, c: f64) -> Var<'g, E> {
        let c = E::from_f64(c);
        self.unary(move |x| x + c, |_, _| E::ONE)
    }

    /// Multiplies by a scalar constant.
    pub fn mul_scalar(self, c: f64) -> Var<'g, E> {
        let c = E::from_f64(c);
        self.unary(move |x| x * c, move |_, _| c)
    }

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'g, E> {
        self.unary(
            |x| x.max(E::ZERO),
            |x, _| if x > E::ZERO { E::ONE } else { E::ZERO },
        )
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(self, alpha: f64) -> Var<'g, E> {
        let alpha = E::from_f64(alpha);
        self.unary(
            move |x| if x > E::ZERO { x } else { alpha * x },
            move |x, _| if x > E::ZERO { E::ONE } else { alpha },
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'g, E> {
        self.unary(|x| E::ONE / (E::ONE + (-x).exp()), |_, y| y * (E::ONE - y))
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Var<'g, E> {
        self.unary(E::tanh, |_, y| E::ONE - y * y)
    }

    /// Natural exponential.
    pub fn exp(self) -> Var<'g, E> {
        self.unary(E::exp, |_, y| y)
    }

    /// Natural logarithm (caller must keep inputs positive).
    pub fn log(self) -> Var<'g, E> {
        self.unary(E::ln, |x, _| E::ONE / x)
    }

    /// Square root.
    pub fn sqrt(self) -> Var<'g, E> {
        self.unary(E::sqrt, |_, y| E::from_f64(0.5) / y)
    }

    /// Elementwise square.
    pub fn square(self) -> Var<'g, E> {
        self.unary(|x| x * x, |x, _| E::from_f64(2.0) * x)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(self) -> Var<'g, E> {
        self.unary(E::abs, |x, _| x.signum())
    }

    /// Clamps values into `[lo, hi]`; gradient passes through inside the
    /// range and is zero outside.
    pub fn clamp(self, lo: f64, hi: f64) -> Var<'g, E> {
        let (lo, hi) = (E::from_f64(lo), E::from_f64(hi));
        self.unary(
            move |x| x.clamp(lo, hi),
            move |x, _| if x > lo && x < hi { E::ONE } else { E::ZERO },
        )
    }

    // ----- shape -----

    /// Reshape (same number of elements).
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(self, dims: &[usize]) -> Var<'g, E> {
        let x = self.value();
        let old = x.dims().to_vec();
        let y = x.reshape(dims);
        let id = self.id;
        self.push(y, Box::new(move |g| vec![(id, g.reshape(&old))]))
    }

    /// Transpose of the last two axes.
    pub fn transpose(self) -> Var<'g, E> {
        let y = self.value().transpose();
        let id = self.id;
        self.push(y, Box::new(move |g| vec![(id, g.transpose())]))
    }

    /// Slice along `axis` (see [`Tensor::slice`]); backward zero-pads.
    pub fn slice(self, axis: usize, start: usize, len: usize) -> Var<'g, E> {
        let x = self.value();
        let full = x.dims().to_vec();
        let y = x.slice(axis, start, len);
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| {
                let mut padded = Tensor::zeros(&full);
                // place g back into position [start, start+len) along axis
                let outer: usize = full[..axis].iter().product();
                let mid = full[axis];
                let inner: usize = full[axis + 1..].iter().product();
                let gs = g.as_slice();
                let ps = padded.as_mut_slice();
                for o in 0..outer {
                    for l in 0..len {
                        let src = (o * len + l) * inner;
                        let dst = (o * mid + start + l) * inner;
                        ps[dst..dst + inner].copy_from_slice(&gs[src..src + inner]);
                    }
                }
                vec![(id, padded)]
            }),
        )
    }

    /// Gathers rows by index along axis 0; backward scatter-adds.
    pub fn gather_rows(self, indices: &[usize]) -> Var<'g, E> {
        let x = self.value();
        let rows = x.dims()[0];
        let y = x.gather_rows(indices);
        let idx = indices.to_vec();
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| vec![(id, Tensor::scatter_add_rows(g, &idx, rows))]),
        )
    }

    /// Concatenates variables along `axis`.
    ///
    /// # Panics
    /// Panics if the list is empty, mixes graphs, or shapes disagree
    /// off-axis.
    pub fn concat(vars: &[Var<'g, E>], axis: usize) -> Var<'g, E> {
        assert!(!vars.is_empty(), "concat of empty list");
        let graph = vars[0].graph;
        let values: Vec<Tensor<E>> = vars.iter().map(|v| v.value()).collect();
        let refs: Vec<&Tensor<E>> = values.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let ids: Vec<usize> = vars.iter().map(|v| v.id).collect();
        let lens: Vec<usize> = values.iter().map(|v| v.dims()[axis]).collect();
        let id = graph.push(
            out,
            Some(Box::new(move |g| {
                let mut start = 0;
                let mut grads = Vec::with_capacity(ids.len());
                for (i, &pid) in ids.iter().enumerate() {
                    grads.push((pid, g.slice(axis, start, lens[i])));
                    start += lens[i];
                }
                grads
            })),
        );
        Var { graph, id }
    }

    // ----- linear algebra -----

    /// Matrix multiplication (`[m,k]×[k,n]`, `[b,m,k]×[b,k,n]`, or
    /// `[b,m,k]×[k,n]`).
    ///
    /// The backward pass runs through the transposed-operand kernels
    /// ([`matmul_nt`] for `∂A = ∂Y·Bᵀ`, [`matmul_tn`] for `∂B = Aᵀ·∂Y`), so
    /// no operand is ever transposed in memory; for the `[b,m,k]×[k,n]`
    /// case the batch reduction of `∂B` falls out of `matmul_tn`'s
    /// accumulate-into-output semantics instead of a materialised `[b,k,n]`
    /// intermediate plus `sum_axis`.
    ///
    /// # Panics
    /// Panics on incompatible shapes.
    pub fn matmul(self, rhs: Var<'g, E>) -> Var<'g, E> {
        let a = self.value();
        let b = rhs.value();
        let out = a.matmul(&b);
        let (ia, ib) = (self.id, rhs.id);
        let ranks = (a.rank(), b.rank());
        self.push(
            out,
            Box::new(move |g| {
                let threads = parallel::num_threads();
                let ad = a.dims();
                let (batch, m) = match ranks.0 {
                    2 => (1, ad[0]),
                    _ => (ad[0], ad[1]),
                };
                let k = *ad.last().expect("matmul lhs has a last dim");
                let n = *b.dims().last().expect("matmul rhs has a last dim");
                let (a_s, b_s, g_s) = (a.as_slice(), b.as_slice(), g.as_slice());
                let mut ga = vec![E::ZERO; batch * m * k];
                let mut gb = vec![E::ZERO; b.numel()];
                let b_stride = if ranks.1 == 3 { k * n } else { 0 };
                for bi in 0..batch {
                    let gbi = &g_s[bi * m * n..(bi + 1) * m * n];
                    let abi = &a_s[bi * m * k..(bi + 1) * m * k];
                    let bbi = &b_s[bi * b_stride..bi * b_stride + k * n];
                    // ∂A[bi] += ∂Y[bi] × B[bi]ᵀ
                    matmul_nt(
                        gbi,
                        bbi,
                        &mut ga[bi * m * k..(bi + 1) * m * k],
                        m,
                        n,
                        k,
                        threads,
                    );
                    // ∂B[bi] += A[bi]ᵀ × ∂Y[bi]; with a shared 2-D rhs the
                    // per-batch calls accumulate straight into the one [k,n]
                    let gb_out = &mut gb[bi * b_stride..bi * b_stride + k * n];
                    matmul_tn(abi, gbi, gb_out, m, k, n, threads);
                }
                vec![
                    (ia, Tensor::from_vec(ga, a.dims())),
                    (ib, Tensor::from_vec(gb, b.dims())),
                ]
            }),
        )
    }

    // ----- reductions -----

    /// Sum of all elements (rank-0 result).
    pub fn sum_all(self) -> Var<'g, E> {
        let x = self.value();
        let dims = x.dims().to_vec();
        let id = self.id;
        self.push(
            x.sum_all(),
            Box::new(move |g| {
                let s = g.scalar();
                vec![(id, Tensor::full(&dims, s))]
            }),
        )
    }

    /// Mean of all elements (rank-0 result).
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean_all(self) -> Var<'g, E> {
        let n = self.numel();
        assert!(n > 0, "mean of empty tensor");
        self.sum_all().mul_scalar(1.0 / n as f64)
    }

    /// Sums along `axis`, removing it.
    pub fn sum_axis(self, axis: usize) -> Var<'g, E> {
        let x = self.value();
        let dims = x.dims().to_vec();
        let y = x.sum_axis(axis);
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| {
                // broadcast g back along the removed axis
                let mut expand_dims = dims.clone();
                expand_dims[axis] = 1;
                let ge = g.reshape(&expand_dims);
                let ones = Tensor::ones(&dims);
                vec![(id, ones.zip_broadcast(&ge, |_, b| b))]
            }),
        )
    }

    /// Means along `axis`, removing it.
    pub fn mean_axis(self, axis: usize) -> Var<'g, E> {
        let n = self.dims()[axis];
        assert!(n > 0, "mean over empty axis");
        self.sum_axis(axis).mul_scalar(1.0 / n as f64)
    }

    // ----- softmax family -----

    /// Softmax over the last axis.
    pub fn softmax_lastdim(self) -> Var<'g, E> {
        let x = self.value();
        let y = x.softmax_lastdim();
        let yc = y.clone();
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| {
                // dx = y * (g - sum_j(g_j * y_j)) per row
                let r = yc.rank();
                let n = yc.dims()[r - 1];
                let rows = yc.numel() / n;
                let mut gx = vec![E::ZERO; yc.numel()];
                let ys = yc.as_slice();
                let gs = g.as_slice();
                for row in 0..rows {
                    let o = row * n;
                    let dot = (0..n).map(|j| gs[o + j] * ys[o + j]).sum::<E>();
                    for j in 0..n {
                        gx[o + j] = ys[o + j] * (gs[o + j] - dot);
                    }
                }
                vec![(id, Tensor::from_vec(gx, yc.dims()))]
            }),
        )
    }

    /// Log-softmax over the last axis (numerically stable).
    pub fn log_softmax_lastdim(self) -> Var<'g, E> {
        let x = self.value();
        let sm = x.softmax_lastdim();
        let y = sm.map(|p| p.max(E::LN_FLOOR).ln());
        let id = self.id;
        self.push(
            y,
            Box::new(move |g| {
                // dx = g - softmax(x) * sum_j g_j per row
                let r = sm.rank();
                let n = sm.dims()[r - 1];
                let rows = sm.numel() / n;
                let mut gx = vec![E::ZERO; sm.numel()];
                let ss = sm.as_slice();
                let gs = g.as_slice();
                for row in 0..rows {
                    let o = row * n;
                    let total = (0..n).map(|j| gs[o + j]).sum::<E>();
                    for j in 0..n {
                        gx[o + j] = gs[o + j] - ss[o + j] * total;
                    }
                }
                vec![(id, Tensor::from_vec(gx, sm.dims()))]
            }),
        )
    }

    // ----- fused losses -----

    /// Binary cross-entropy with logits against a constant target tensor,
    /// averaged over all elements. Numerically stable.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn bce_with_logits(self, targets: &Tensor<E>) -> Var<'g, E> {
        let x = self.value();
        assert_eq!(x.dims(), targets.dims(), "bce target shape mismatch");
        let n = E::from_f64(x.numel() as f64);
        let mut loss = E::ZERO;
        for (&xi, &ti) in x.as_slice().iter().zip(targets.as_slice()) {
            loss += xi.max(E::ZERO) - xi * ti + (E::ONE + (-xi.abs()).exp()).ln();
        }
        let t = targets.clone();
        let id = self.id;
        self.push(
            Tensor::from_scalar(loss / n),
            Box::new(move |g| {
                let s = g.scalar() / n;
                let gx = x.zip_broadcast(&t, |xi, ti| s * (E::ONE / (E::ONE + (-xi).exp()) - ti));
                vec![(id, gx)]
            }),
        )
    }

    /// Cross-entropy between row-softmax of `self` and constant target
    /// distributions, averaged over rows. Targets need not be one-hot
    /// (the paper's attention loss, Eq. 6, uses a box-uniform distribution).
    ///
    /// # Panics
    /// Panics if shapes differ or rank < 1.
    pub fn softmax_xent_rows(self, targets: &Tensor<E>) -> Var<'g, E> {
        let x = self.value();
        assert_eq!(x.dims(), targets.dims(), "xent target shape mismatch");
        let r = x.rank();
        assert!(r >= 1, "xent requires rank >= 1");
        let n = x.dims()[r - 1];
        let rows = x.numel() / n;
        let sm = x.softmax_lastdim();
        let mut loss = E::ZERO;
        for (p, &t) in sm.as_slice().iter().zip(targets.as_slice()) {
            if t != E::ZERO {
                loss -= t * p.max(E::LN_FLOOR).ln();
            }
        }
        let t = targets.clone();
        let id = self.id;
        self.push(
            Tensor::from_scalar(loss / E::from_f64(rows as f64)),
            Box::new(move |g| {
                let s = g.scalar() / E::from_f64(rows as f64);
                // per-row: grad = (softmax - t * sum_t) where sum_t is the
                // row mass of the target (1 for distributions)
                let n = sm.dims()[sm.rank() - 1];
                let rows = sm.numel() / n;
                let mut gx = vec![E::ZERO; sm.numel()];
                let ss = sm.as_slice();
                let ts = t.as_slice();
                for row in 0..rows {
                    let o = row * n;
                    let mass = (0..n).map(|j| ts[o + j]).sum::<E>();
                    for j in 0..n {
                        gx[o + j] = s * (ss[o + j] * mass - ts[o + j]);
                    }
                }
                vec![(id, Tensor::from_vec(gx, sm.dims()))]
            }),
        )
    }

    /// Smooth-L1 (Huber) loss against a constant target, averaged over all
    /// elements, with transition point `beta`.
    ///
    /// # Panics
    /// Panics if shapes differ or `beta <= 0`.
    pub fn smooth_l1(self, targets: &Tensor<E>, beta: f64) -> Var<'g, E> {
        assert!(beta > 0.0, "beta must be positive");
        let beta = E::from_f64(beta);
        let half = E::from_f64(0.5);
        let x = self.value();
        assert_eq!(x.dims(), targets.dims(), "smooth_l1 target shape mismatch");
        let n = E::from_f64(x.numel() as f64);
        let mut loss = E::ZERO;
        for (&xi, &ti) in x.as_slice().iter().zip(targets.as_slice()) {
            let d = (xi - ti).abs();
            loss += if d < beta {
                half * d * d / beta
            } else {
                d - half * beta
            };
        }
        let t = targets.clone();
        let id = self.id;
        self.push(
            Tensor::from_scalar(loss / n),
            Box::new(move |g| {
                let s = g.scalar() / n;
                let gx = x.zip_broadcast(&t, |xi, ti| {
                    let d = xi - ti;
                    s * if d.abs() < beta { d / beta } else { d.signum() }
                });
                vec![(id, gx)]
            }),
        )
    }

    // ----- convolution / pooling -----

    /// 2-D convolution: `self` is `[N,C,H,W]`, `weight` is `[O,C,kh,kw]`.
    /// Output is `[N,O,OH,OW]`.
    ///
    /// # Panics
    /// Panics on shape mismatch or when the kernel exceeds the padded input.
    pub fn conv2d(self, weight: Var<'g, E>, spec: Conv2dSpec) -> Var<'g, E> {
        let x = self.value();
        let w = weight.value();
        assert_eq!(x.rank(), 4, "conv2d input must be [N,C,H,W]");
        assert_eq!(w.rank(), 4, "conv2d weight must be [O,C,kh,kw]");
        let (n, c, h, wd) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (o, c2, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
        assert_eq!(c, c2, "conv2d channel mismatch");
        let (oh, ow) = spec.output_hw(h, wd, kh, kw);
        // cols: [N, C*kh*kw, OH*OW]; out[b] = w [O, ckk] × cols[b] [ckk, L].
        // The [O,C,kh,kw] weight buffer is already the row-major [O, ckk]
        // matrix, and each batch's columns are a contiguous run of `cols`,
        // so everything feeds the flat kernels without reshape/slice copies.
        let cols = im2col(&x, kh, kw, spec);
        let ckk = c * kh * kw;
        let l = oh * ow;
        let threads = parallel::num_threads();
        let mut out_data = vec![E::ZERO; n * o * l];
        for b in 0..n {
            matmul_blocked(
                w.as_slice(),
                &cols.as_slice()[b * ckk * l..(b + 1) * ckk * l],
                &mut out_data[b * o * l..(b + 1) * o * l],
                o,
                ckk,
                l,
                threads,
            );
        }
        let out = Tensor::from_vec(out_data, &[n, o, oh, ow]);
        let (ix, iw) = (self.id, weight.id);
        let x_dims = x.dims().to_vec();
        self.push(
            out,
            Box::new(move |g| {
                // g: [N,O,OH,OW]; per batch, accumulate
                //   gw   += g[b] [O,L] × cols[b]ᵀ [L,ckk]
                //   gcols[b] = wᵀ [ckk,O] × g[b] [O,L]
                // via the transposed-operand kernels (no materialised
                // transposes, no per-batch slice copies)
                let threads = parallel::num_threads();
                let gs = g.as_slice();
                let cs = cols.as_slice();
                let ws = w.as_slice();
                let mut gw = vec![E::ZERO; o * ckk];
                let mut gcols = Tensor::zeros(&[n, ckk, l]);
                let gc = gcols.as_mut_slice();
                for b in 0..n {
                    let gb = &gs[b * o * l..(b + 1) * o * l];
                    let colb = &cs[b * ckk * l..(b + 1) * ckk * l];
                    matmul_nt(gb, colb, &mut gw, o, l, ckk, threads);
                    let gcb = &mut gc[b * ckk * l..(b + 1) * ckk * l];
                    matmul_tn(ws, gb, gcb, o, ckk, l, threads);
                }
                let gx = col2im(&gcols, &x_dims, kh, kw, spec);
                vec![(ix, gx), (iw, Tensor::from_vec(gw, &[o, c, kh, kw]))]
            }),
        )
    }

    /// 2-D max pooling over `[N,C,H,W]`.
    ///
    /// # Panics
    /// Panics if input is not rank 4.
    pub fn max_pool2d(self, spec: Pool2dSpec) -> Var<'g, E> {
        let x = self.value();
        assert_eq!(x.rank(), 4, "max_pool2d input must be [N,C,H,W]");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (oh, ow) = spec.output_hw(h, w);
        let mut out = vec![E::NEG_INFINITY; n * c * oh * ow];
        let mut arg = vec![0usize; n * c * oh * ow];
        let xs = x.as_slice();
        for b in 0..n {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in 0..oh {
                    for j in 0..ow {
                        let oidx = ((b * c + ch) * oh + i) * ow + j;
                        for ki in 0..spec.kernel {
                            for kj in 0..spec.kernel {
                                let y = i * spec.stride + ki;
                                let xcol = j * spec.stride + kj;
                                if y < h && xcol < w {
                                    let v = xs[base + y * w + xcol];
                                    if v > out[oidx] {
                                        out[oidx] = v;
                                        arg[oidx] = base + y * w + xcol;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let id = self.id;
        let in_dims = x.dims().to_vec();
        self.push(
            Tensor::from_vec(out, &[n, c, oh, ow]),
            Box::new(move |g| {
                let mut gx = Tensor::zeros(&in_dims);
                let gs = g.as_slice();
                let gm = gx.as_mut_slice();
                for (oidx, &src) in arg.iter().enumerate() {
                    gm[src] += gs[oidx];
                }
                vec![(id, gx)]
            }),
        )
    }

    /// Global average pool over the spatial dims of `[N,C,H,W]` → `[N,C]`.
    pub fn global_avg_pool(self) -> Var<'g, E> {
        let d = self.dims();
        assert_eq!(d.len(), 4, "global_avg_pool input must be [N,C,H,W]");
        self.reshape(&[d[0], d[1], d[2] * d[3]]).mean_axis(2)
    }

    /// Detaches the value from the tape: output is a new leaf, no gradient
    /// flows back through it.
    pub fn detach(self) -> Var<'g, E> {
        self.graph.leaf(self.value())
    }
}

/// Convenience constructors on [`Graph`] mirroring the `Var` API.
impl<E: Element> Graph<E> {
    /// Leaf filled with zeros.
    pub fn zeros(&self, dims: &[usize]) -> Var<'_, E> {
        self.leaf(Tensor::zeros(dims))
    }

    /// Leaf filled with ones.
    pub fn ones(&self, dims: &[usize]) -> Var<'_, E> {
        self.leaf(Tensor::ones(dims))
    }
}

macro_rules! impl_var_binop {
    ($trait:ident, $method:ident) => {
        impl<'g, E: Element> std::ops::$trait for Var<'g, E> {
            type Output = Var<'g, E>;
            fn $method(self, rhs: Var<'g, E>) -> Var<'g, E> {
                Var::$method(self, rhs)
            }
        }
    };
}

impl_var_binop!(Add, add);
impl_var_binop!(Sub, sub);
impl_var_binop!(Mul, mul);
impl_var_binop!(Div, div);

impl<'g, E: Element> std::ops::Neg for Var<'g, E> {
    type Output = Var<'g, E>;
    fn neg(self) -> Var<'g, E> {
        Var::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn add_broadcast_backward_reduces() {
        let g: Graph = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3]));
        let b = g.leaf(Tensor::ones(&[3]));
        let y = (a + b).sum_all();
        y.backward();
        assert_eq!(a.grad().dims(), &[2, 3]);
        assert_eq!(b.grad().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        let g: Graph = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let y = a.matmul(b).sum_all();
        y.backward();
        // d/dA sum(AB) = 1 * B^T rows summed: each grad_A[i,j] = sum_n B[j,n]
        assert_eq!(a.grad().as_slice(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().as_slice(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        let g: Graph = Graph::new();
        let mut rng = StdRng::seed_from_u64(1);
        let x = g.leaf(Tensor::randn(&[3, 5], &mut rng));
        // loss = first column of softmax summed
        let y = x.softmax_lastdim().slice(1, 0, 1).sum_all();
        y.backward();
        // each row's softmax grad sums to ~0
        let gr = x.grad();
        for r in 0..3 {
            let s: f64 = (0..5).map(|c| gr.at(&[r, c])).sum();
            assert!(s.abs() < 1e-12, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn bce_matches_closed_form() {
        let g: Graph = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.0, 2.0], &[2]));
        let t = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let loss = x.bce_with_logits(&t);
        let expected = (-(0.5f64.ln()) + (1.0 + (2.0f64).exp()).ln()) / 2.0;
        assert!(approx(loss.value().scalar(), expected, 1e-12));
        loss.backward();
        let gr = x.grad();
        assert!(approx(gr.at(&[0]), (0.5 - 1.0) / 2.0, 1e-12));
    }

    #[test]
    fn smooth_l1_quadratic_and_linear_regions() {
        let g: Graph = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![0.1, 3.0], &[2]));
        let t = Tensor::zeros(&[2]);
        let loss = x.smooth_l1(&t, 1.0);
        let expected = (0.5 * 0.01 + (3.0 - 0.5)) / 2.0;
        assert!(approx(loss.value().scalar(), expected, 1e-12));
        loss.backward();
        let gr = x.grad();
        assert!(approx(gr.at(&[0]), 0.1 / 2.0, 1e-12)); // quadratic region: d/β
        assert!(approx(gr.at(&[1]), 1.0 / 2.0, 1e-12)); // linear region: sign
    }

    #[test]
    fn gather_rows_backward_scatters() {
        let g: Graph = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
        let y = x.gather_rows(&[0, 0, 2]).sum_all();
        y.backward();
        assert_eq!(x.grad().as_slice(), &[2.0, 0.0, 1.0]);
    }

    #[test]
    fn slice_backward_pads() {
        let g: Graph = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]));
        let y = x.slice(0, 1, 2).sum_all();
        y.backward();
        assert_eq!(x.grad().as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_backward_splits() {
        let g: Graph = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 2]));
        let b = g.leaf(Tensor::ones(&[3, 2]));
        let y = Var::concat(&[a, b], 0);
        assert_eq!(y.dims(), vec![5, 2]);
        y.mul_scalar(2.0).sum_all().backward();
        assert_eq!(a.grad().as_slice(), &[2.0; 4]);
        assert_eq!(b.grad().as_slice(), &[2.0; 6]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let g: Graph = Graph::new();
        let x = g.scalar(2.0);
        let y = x.square().detach().mul_scalar(3.0);
        y.backward();
        assert_eq!(x.grad().scalar(), 0.0);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let g: Graph = Graph::new();
        let x = g.leaf(Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        ));
        let y = x.max_pool2d(Pool2dSpec {
            kernel: 2,
            stride: 2,
        });
        assert_eq!(y.value().as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        y.sum_all().backward();
        let gr = x.grad();
        assert_eq!(gr.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(gr.at(&[0, 0, 0, 0]), 0.0);
    }
}
