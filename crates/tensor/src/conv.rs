//! im2col / col2im helpers and convolution/pooling hyper-parameter specs.

use crate::Tensor;

/// Stride and padding of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Step between kernel applications, in pixels (same for H and W).
    pub stride: usize,
    /// Zero padding added on every side.
    pub pad: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec { stride: 1, pad: 0 }
    }
}

impl Conv2dSpec {
    /// Output spatial size for an `h`×`w` input and a `kh`×`kw` kernel.
    ///
    /// # Panics
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
        let hp = h + 2 * self.pad;
        let wp = w + 2 * self.pad;
        assert!(hp >= kh && wp >= kw, "kernel larger than padded input");
        ((hp - kh) / self.stride + 1, (wp - kw) / self.stride + 1)
    }
}

/// Kernel size and stride of a 2-D pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dSpec {
    /// Square pooling window size.
    pub kernel: usize,
    /// Step between windows.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Output spatial size (ceil-free, windows must start inside the input).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h.saturating_sub(self.kernel)) / self.stride + 1,
            (w.saturating_sub(self.kernel)) / self.stride + 1,
        )
    }
}

/// Unfolds `[N,C,H,W]` into column matrix `[N, C*kh*kw, OH*OW]`.
///
/// # Panics
/// Panics if `x` is not rank 4.
pub fn im2col(x: &Tensor, kh: usize, kw: usize, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x.rank(), 4, "im2col input must be [N,C,H,W]");
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (oh, ow) = spec.output_hw(h, w, kh, kw);
    let l = oh * ow;
    let mut out = vec![0.0; n * c * kh * kw * l];
    let xs = x.as_slice();
    for b in 0..n {
        for ch in 0..c {
            let xbase = (b * c + ch) * h * w;
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ch * kh + ki) * kw + kj;
                    let obase = (b * c * kh * kw + row) * l;
                    for i in 0..oh {
                        let y = (i * spec.stride + ki) as isize - spec.pad as isize;
                        for j in 0..ow {
                            let xcol = (j * spec.stride + kj) as isize - spec.pad as isize;
                            let v = if y >= 0 && (y as usize) < h && xcol >= 0 && (xcol as usize) < w
                            {
                                xs[xbase + y as usize * w + xcol as usize]
                            } else {
                                0.0
                            };
                            out[obase + i * ow + j] = v;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c * kh * kw, l])
}

/// Folds a column matrix `[N, C*kh*kw, OH*OW]` back into `[N,C,H,W]`
/// (accumulating overlaps). Exact adjoint of [`im2col`].
///
/// # Panics
/// Panics if shapes are inconsistent with `x_dims`.
pub fn col2im(cols: &Tensor, x_dims: &[usize], kh: usize, kw: usize, spec: Conv2dSpec) -> Tensor {
    assert_eq!(x_dims.len(), 4, "col2im target must be [N,C,H,W]");
    let (n, c, h, w) = (x_dims[0], x_dims[1], x_dims[2], x_dims[3]);
    let (oh, ow) = spec.output_hw(h, w, kh, kw);
    let l = oh * ow;
    assert_eq!(cols.dims(), &[n, c * kh * kw, l], "col2im shape mismatch");
    let mut out = Tensor::zeros(x_dims);
    let cs = cols.as_slice();
    let om = out.as_mut_slice();
    for b in 0..n {
        for ch in 0..c {
            let xbase = (b * c + ch) * h * w;
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ch * kh + ki) * kw + kj;
                    let cbase = (b * c * kh * kw + row) * l;
                    for i in 0..oh {
                        let y = (i * spec.stride + ki) as isize - spec.pad as isize;
                        if y < 0 || y as usize >= h {
                            continue;
                        }
                        for j in 0..ow {
                            let xcol = (j * spec.stride + kj) as isize - spec.pad as isize;
                            if xcol >= 0 && (xcol as usize) < w {
                                om[xbase + y as usize * w + xcol as usize] +=
                                    cs[cbase + i * ow + j];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_hw_basic() {
        let s = Conv2dSpec { stride: 2, pad: 1 };
        assert_eq!(s.output_hw(8, 12, 3, 3), (4, 6));
        let p = Pool2dSpec { kernel: 2, stride: 2 };
        assert_eq!(p.output_hw(8, 12), (4, 6));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: columns are just the flattened image
        let x = Tensor::from_vec((0..12).map(|v| v as f64).collect(), &[1, 2, 2, 3]);
        let cols = im2col(&x, 1, 1, Conv2dSpec::default());
        assert_eq!(cols.dims(), &[1, 2, 6]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_extracts_patches() {
        let x = Tensor::from_vec((0..16).map(|v| v as f64).collect(), &[1, 1, 4, 4]);
        let cols = im2col(&x, 2, 2, Conv2dSpec { stride: 2, pad: 0 });
        assert_eq!(cols.dims(), &[1, 4, 4]);
        // first output location patch = [0,1,4,5]
        assert_eq!(cols.at(&[0, 0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 1, 0]), 1.0);
        assert_eq!(cols.at(&[0, 2, 0]), 4.0);
        assert_eq!(cols.at(&[0, 3, 0]), 5.0);
    }

    #[test]
    fn padding_reads_zero() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, 3, 3, Conv2dSpec { stride: 1, pad: 1 });
        // top-left output's top-left kernel tap lies in the pad region
        assert_eq!(cols.at(&[0, 0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 4, 0]), 1.0); // centre tap on real pixel
    }

    proptest! {
        /// col2im is the exact adjoint of im2col:
        /// <im2col(x), y> == <x, col2im(y)> for all x, y.
        #[test]
        fn col2im_is_adjoint_of_im2col(
            h in 3usize..7, w in 3usize..7,
            k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
            seed in 0u64..500,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let spec = Conv2dSpec { stride, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::randn(&[1, 2, h, w], &mut rng);
            let cx = im2col(&x, k, k, spec);
            let y = Tensor::randn(cx.dims(), &mut rng);
            let lhs: f64 = cx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
            let xy = col2im(&y, x.dims(), k, k, spec);
            let rhs: f64 = x.as_slice().iter().zip(xy.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        }
    }
}
