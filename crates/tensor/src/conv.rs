//! im2col / col2im helpers and convolution/pooling hyper-parameter specs.
//!
//! Both unfold directions parallelise over `(batch, channel)` slices — each
//! slice owns a disjoint region of the output buffer — and both offer
//! `_into` variants that reuse a caller-provided buffer, so hot loops (conv
//! forward/backward, batched inference) stop re-allocating column matrices
//! on every call. [`conv2d_forward`] bundles the whole graph-free
//! convolution with a [`ConvScratch`].

use crate::parallel;
use crate::tensor::matmul_blocked;
use crate::{Element, Tensor};

/// Stride and padding of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Step between kernel applications, in pixels (same for H and W).
    pub stride: usize,
    /// Zero padding added on every side.
    pub pad: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Conv2dSpec { stride: 1, pad: 0 }
    }
}

impl Conv2dSpec {
    /// Output spatial size for an `h`×`w` input and a `kh`×`kw` kernel.
    ///
    /// # Panics
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_hw(&self, h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize) {
        let hp = h + 2 * self.pad;
        let wp = w + 2 * self.pad;
        assert!(hp >= kh && wp >= kw, "kernel larger than padded input");
        ((hp - kh) / self.stride + 1, (wp - kw) / self.stride + 1)
    }
}

/// Kernel size and stride of a 2-D pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pool2dSpec {
    /// Square pooling window size.
    pub kernel: usize,
    /// Step between windows.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Output spatial size (ceil-free, windows must start inside the input).
    ///
    /// # Panics
    /// Panics if the window does not fit in the input — matching
    /// [`Conv2dSpec::output_hw`]'s contract rather than silently producing
    /// a bogus 1×1 output.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.kernel && w >= self.kernel,
            "pool window larger than input"
        );
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// Worker count for an unfold touching `elems` output elements across
/// `slices` independent `(batch, channel)` slices.
fn unfold_threads(elems: usize, slices: usize) -> usize {
    if elems < parallel::PAR_ELEMWISE_MIN || slices < 2 {
        1
    } else {
        parallel::num_threads()
    }
}

/// Unfolds `[N,C,H,W]` into column matrix `[N, C*kh*kw, OH*OW]`.
///
/// # Panics
/// Panics if `x` is not rank 4.
pub fn im2col<E: Element>(x: &Tensor<E>, kh: usize, kw: usize, spec: Conv2dSpec) -> Tensor<E> {
    let mut out = Vec::new();
    let dims = im2col_into(x, kh, kw, spec, &mut out);
    Tensor::from_vec(out, &dims)
}

/// [`im2col`] into a reusable buffer (cleared and resized); returns the
/// column-matrix shape `[N, C*kh*kw, OH*OW]`.
///
/// # Panics
/// Panics if `x` is not rank 4.
pub fn im2col_into<E: Element>(
    x: &Tensor<E>,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    out: &mut Vec<E>,
) -> [usize; 3] {
    assert_eq!(x.rank(), 4, "im2col input must be [N,C,H,W]");
    let _lat = yollo_obs::time_hist!("tensor.im2col_ns");
    yollo_obs::counter!("tensor.im2col.calls").incr();
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (oh, ow) = spec.output_hw(h, w, kh, kw);
    let l = oh * ow;
    out.clear();
    out.resize(n * c * kh * kw * l, E::ZERO);
    let xs = x.as_slice();
    // one chunk per (batch, channel): rows [ch*kh*kw, (ch+1)*kh*kw) of
    // batch b's column matrix, a contiguous kh*kw*l run
    let threads = unfold_threads(out.len(), n * c);
    parallel::for_each_chunk_in(threads, out, (kh * kw * l).max(1), |bc, chunk| {
        let (b, ch) = (bc / c, bc % c);
        let xbase = (b * c + ch) * h * w;
        for ki in 0..kh {
            for kj in 0..kw {
                let rbase = (ki * kw + kj) * l;
                for i in 0..oh {
                    let y = (i * spec.stride + ki) as isize - spec.pad as isize;
                    for j in 0..ow {
                        let xcol = (j * spec.stride + kj) as isize - spec.pad as isize;
                        let v = if y >= 0 && (y as usize) < h && xcol >= 0 && (xcol as usize) < w {
                            xs[xbase + y as usize * w + xcol as usize]
                        } else {
                            E::ZERO
                        };
                        chunk[rbase + i * ow + j] = v;
                    }
                }
            }
        }
    });
    [n, c * kh * kw, l]
}

/// Folds a column matrix `[N, C*kh*kw, OH*OW]` back into `[N,C,H,W]`
/// (accumulating overlaps). Exact adjoint of [`im2col`].
///
/// # Panics
/// Panics if shapes are inconsistent with `x_dims`.
pub fn col2im<E: Element>(
    cols: &Tensor<E>,
    x_dims: &[usize],
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Tensor<E> {
    let mut out = Tensor::zeros(x_dims);
    col2im_accumulate(cols.as_slice(), cols.dims(), x_dims, kh, kw, spec, &mut out);
    out
}

/// [`col2im`] into a reusable tensor (must already have shape `x_dims`;
/// zeroed before accumulation).
///
/// # Panics
/// Panics if shapes are inconsistent.
pub fn col2im_into<E: Element>(
    cols: &Tensor<E>,
    x_dims: &[usize],
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    out: &mut Tensor<E>,
) {
    assert_eq!(out.dims(), x_dims, "col2im_into target shape mismatch");
    out.as_mut_slice().fill(E::ZERO);
    col2im_accumulate(cols.as_slice(), cols.dims(), x_dims, kh, kw, spec, out);
}

/// Shared col2im core: accumulates `cols` into `out` (not zeroed here).
pub(crate) fn col2im_accumulate<E: Element>(
    cs: &[E],
    cols_dims: &[usize],
    x_dims: &[usize],
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    out: &mut Tensor<E>,
) {
    assert_eq!(x_dims.len(), 4, "col2im target must be [N,C,H,W]");
    let (n, c, h, w) = (x_dims[0], x_dims[1], x_dims[2], x_dims[3]);
    let (oh, ow) = spec.output_hw(h, w, kh, kw);
    let l = oh * ow;
    assert_eq!(cols_dims, &[n, c * kh * kw, l], "col2im shape mismatch");
    let om = out.as_mut_slice();
    // one chunk per (batch, channel) image plane: writes stay inside the
    // plane, reads stay inside that plane's kh*kw column rows
    let threads = unfold_threads(om.len().max(cs.len()), n * c);
    parallel::for_each_chunk_in(threads, om, (h * w).max(1), |bc, plane| {
        let (b, ch) = (bc / c, bc % c);
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let cbase = (b * c * kh * kw + row) * l;
                for i in 0..oh {
                    let y = (i * spec.stride + ki) as isize - spec.pad as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    for j in 0..ow {
                        let xcol = (j * spec.stride + kj) as isize - spec.pad as isize;
                        if xcol >= 0 && (xcol as usize) < w {
                            plane[y as usize * w + xcol as usize] += cs[cbase + i * ow + j];
                        }
                    }
                }
            }
        }
    });
}

/// Reusable buffers for repeated convolutions: the unfolded column matrix
/// survives between calls, so steady-state inference does no per-call
/// column allocation.
#[derive(Debug, Clone)]
pub struct ConvScratch<E: Element = f64> {
    cols: Vec<E>,
}

impl<E: Element> Default for ConvScratch<E> {
    fn default() -> Self {
        ConvScratch { cols: Vec::new() }
    }
}

impl<E: Element> ConvScratch<E> {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current scratch footprint in elements (diagnostics).
    pub fn capacity(&self) -> usize {
        self.cols.capacity()
    }
}

/// Graph-free convolution forward: `x [N,C,H,W] ⊛ w [O,C,kh,kw]` →
/// `[N,O,OH,OW]`, with column buffers reused from `scratch`. Same math as
/// the differentiable `Var::conv2d`, minus the tape.
///
/// # Panics
/// Panics on rank/shape mismatch or when the kernel exceeds the padded
/// input.
pub fn conv2d_forward<E: Element>(
    x: &Tensor<E>,
    w: &Tensor<E>,
    spec: Conv2dSpec,
    scratch: &mut ConvScratch<E>,
) -> Tensor<E> {
    assert_eq!(x.rank(), 4, "conv2d input must be [N,C,H,W]");
    assert_eq!(w.rank(), 4, "conv2d weight must be [O,C,kh,kw]");
    let _span = yollo_obs::span!("tensor.conv2d_forward");
    let _lat = yollo_obs::time_hist!("tensor.conv2d_forward_ns");
    yollo_obs::counter!("tensor.conv2d.calls").incr();
    let (n, c) = (x.dims()[0], x.dims()[1]);
    let (o, c2, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    assert_eq!(c, c2, "conv2d channel mismatch");
    let (oh, ow) = spec.output_hw(x.dims()[2], x.dims()[3], kh, kw);
    let [_, ckk, l] = im2col_into(x, kh, kw, spec, &mut scratch.cols);
    // the weight is already the row-major [O, C*kh*kw] matrix — no reshape
    let wmat = w.as_slice();
    let threads = parallel::num_threads();
    let mut out = vec![E::ZERO; n * o * l];
    for bi in 0..n {
        matmul_blocked(
            wmat,
            &scratch.cols[bi * ckk * l..(bi + 1) * ckk * l],
            &mut out[bi * o * l..(bi + 1) * o * l],
            o,
            ckk,
            l,
            threads,
        );
    }
    Tensor::from_vec(out, &[n, o, oh, ow])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_hw_basic() {
        let s = Conv2dSpec { stride: 2, pad: 1 };
        assert_eq!(s.output_hw(8, 12, 3, 3), (4, 6));
        let p = Pool2dSpec {
            kernel: 2,
            stride: 2,
        };
        assert_eq!(p.output_hw(8, 12), (4, 6));
    }

    #[test]
    #[should_panic(expected = "pool window larger than input")]
    fn pool_rejects_window_larger_than_input() {
        let p = Pool2dSpec {
            kernel: 3,
            stride: 1,
        };
        p.output_hw(2, 5);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: columns are just the flattened image
        let x = Tensor::from_vec((0..12).map(|v| v as f64).collect(), &[1, 2, 2, 3]);
        let cols = im2col(&x, 1, 1, Conv2dSpec::default());
        assert_eq!(cols.dims(), &[1, 2, 6]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_extracts_patches() {
        let x = Tensor::from_vec((0..16).map(|v| v as f64).collect(), &[1, 1, 4, 4]);
        let cols = im2col(&x, 2, 2, Conv2dSpec { stride: 2, pad: 0 });
        assert_eq!(cols.dims(), &[1, 4, 4]);
        // first output location patch = [0,1,4,5]
        assert_eq!(cols.at(&[0, 0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 1, 0]), 1.0);
        assert_eq!(cols.at(&[0, 2, 0]), 4.0);
        assert_eq!(cols.at(&[0, 3, 0]), 5.0);
    }

    #[test]
    fn padding_reads_zero() {
        let x: Tensor = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&x, 3, 3, Conv2dSpec { stride: 1, pad: 1 });
        // top-left output's top-left kernel tap lies in the pad region
        assert_eq!(cols.at(&[0, 0, 0]), 0.0);
        assert_eq!(cols.at(&[0, 4, 0]), 1.0); // centre tap on real pixel
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = Conv2dSpec { stride: 1, pad: 1 };
        let mut buf = Vec::new();
        for trial in 0..3 {
            let x: Tensor = Tensor::randn(&[2, 3, 5 + trial, 6], &mut rng);
            let dims = im2col_into(&x, 3, 3, spec, &mut buf);
            let fresh = im2col(&x, 3, 3, spec);
            assert_eq!(dims.to_vec(), fresh.dims().to_vec());
            assert_eq!(buf, fresh.as_slice());

            let y: Tensor = Tensor::randn(&dims, &mut rng);
            let mut folded = Tensor::zeros(x.dims());
            col2im_into(&y, x.dims(), 3, 3, spec, &mut folded);
            assert_eq!(folded, col2im(&y, x.dims(), 3, 3, spec));
        }
    }

    #[test]
    fn conv2d_forward_matches_manual_columns() {
        let mut rng = StdRng::seed_from_u64(6);
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        let x: Tensor = Tensor::randn(&[2, 3, 8, 10], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let mut scratch = ConvScratch::new();
        let y = conv2d_forward(&x, &w, spec, &mut scratch);
        assert_eq!(y.dims(), &[2, 4, 4, 5]);
        // reference: explicit per-batch wmat × cols
        let cols = im2col(&x, 3, 3, spec);
        let wmat = w.reshape(&[4, 27]);
        for b in 0..2 {
            let colb = cols.slice(0, b, 1).reshape(&[27, 20]);
            let yb = wmat.matmul(&colb);
            let got = y.slice(0, b, 1).reshape(&[4, 20]);
            assert!(got.max_abs_diff(&yb) < 1e-12);
        }
        // second call reuses the grown buffer
        let cap = scratch.capacity();
        let _ = conv2d_forward(&x, &w, spec, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "scratch should not regrow");
    }

    proptest! {
        /// col2im is the exact adjoint of im2col:
        /// <im2col(x), y> == <x, col2im(y)> for all x, y.
        #[test]
        fn col2im_is_adjoint_of_im2col(
            h in 3usize..7, w in 3usize..7,
            k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
            seed in 0u64..500,
        ) {
            prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
            let spec = Conv2dSpec { stride, pad };
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Tensor = Tensor::randn(&[1, 2, h, w], &mut rng);
            let cx = im2col(&x, k, k, spec);
            let y = Tensor::randn(cx.dims(), &mut rng);
            let lhs: f64 = cx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
            let xy = col2im(&y, x.dims(), k, k, spec);
            let rhs: f64 = x.as_slice().iter().zip(xy.as_slice()).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        }
    }
}
