//! Finite-difference gradient checking.
//!
//! Used throughout the workspace's test suites to validate that every
//! backward closure computes the true derivative of its forward pass.

use crate::{Element, Graph, Tensor, Var};

/// Configuration for [`check_gradients`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Central-difference step size.
    pub eps: f64,
    /// Allowed absolute-plus-relative tolerance.
    pub tol: f64,
}

impl Default for GradCheck {
    fn default() -> Self {
        GradCheck {
            eps: 1e-5,
            tol: 1e-6,
        }
    }
}

/// Checks the analytic gradient of `f` at `inputs` against central finite
/// differences.
///
/// `f` receives leaves created from `inputs` (in order) and must return a
/// scalar loss variable. Returns `Ok(())` when every component of every
/// gradient matches within tolerance, otherwise an error message naming the
/// first offending component.
///
/// # Errors
/// Returns a description of the first mismatching gradient component.
///
/// # Example
/// ```
/// use yollo_tensor::{check_gradients, GradCheck, Tensor};
/// let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[3]);
/// check_gradients(&[x], GradCheck::default(), |vars| {
///     vars[0].sigmoid().square().sum_all()
/// }).unwrap();
/// ```
pub fn check_gradients<E: Element, F>(
    inputs: &[Tensor<E>],
    cfg: GradCheck,
    f: F,
) -> Result<(), String>
where
    F: for<'g> Fn(&[Var<'g, E>]) -> Var<'g, E>,
{
    // analytic gradients
    let graph = Graph::new();
    let vars: Vec<Var<'_, E>> = inputs.iter().map(|t| graph.leaf(t.clone())).collect();
    let loss = f(&vars);
    if loss.numel() != 1 {
        return Err(format!("loss must be scalar, got shape {:?}", loss.dims()));
    }
    loss.backward();
    let analytic: Vec<Tensor<E>> = vars.iter().map(|v| v.grad()).collect();

    // numeric gradients (differenced in f64 regardless of E, so the check
    // itself never loses precision to the dtype under test)
    for (vi, input) in inputs.iter().enumerate() {
        for ei in 0..input.numel() {
            let eval = |delta: f64| -> f64 {
                let mut perturbed: Vec<Tensor<E>> = inputs.to_vec();
                perturbed[vi].as_mut_slice()[ei] += E::from_f64(delta);
                let g = Graph::new();
                let vs: Vec<Var<'_, E>> = perturbed.iter().map(|t| g.leaf(t.clone())).collect();
                f(&vs).value().scalar().to_f64()
            };
            let numeric = (eval(cfg.eps) - eval(-cfg.eps)) / (2.0 * cfg.eps);
            let got = analytic[vi].as_slice()[ei].to_f64();
            let denom = 1.0 + numeric.abs().max(got.abs());
            if (numeric - got).abs() > cfg.tol * denom {
                return Err(format!(
                    "input {vi} element {ei}: analytic {got} vs numeric {numeric}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2dSpec, Pool2dSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn catches_wrong_gradient() {
        // relu gradient at a positive point is 1; a deliberately wrong op
        // would fail — emulate by comparing against detach (zero grad).
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let err = check_gradients(&[x], GradCheck::default(), |v| {
            v[0].detach().square().sum_all()
        });
        assert!(err.is_err(), "detached input must fail the grad check");
    }

    #[test]
    fn elementwise_chain() {
        let x = Tensor::from_vec(vec![0.5, -1.3, 2.0, 0.01], &[4]);
        check_gradients(&[x], GradCheck::default(), |v| {
            (v[0].tanh().square() + v[0].sigmoid()).sum_all()
        })
        .unwrap();
    }

    #[test]
    fn exp_log_sqrt() {
        let x = Tensor::from_vec(vec![0.5, 1.3, 2.0], &[3]);
        check_gradients(&[x], GradCheck::default(), |v| {
            (v[0].log() + v[0].sqrt() + v[0].exp()).sum_all()
        })
        .unwrap();
    }

    #[test]
    fn div_and_mul_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.5, 1.5, 2.5], &[3]);
        check_gradients(&[a, b], GradCheck::default(), |v| {
            (v[0] / v[1]).square().sum_all()
        })
        .unwrap();
    }

    #[test]
    fn matmul_2d() {
        let mut r = rng();
        let a: Tensor = Tensor::randn(&[3, 4], &mut r);
        let b = Tensor::randn(&[4, 2], &mut r);
        check_gradients(&[a, b], GradCheck::default(), |v| {
            v[0].matmul(v[1]).square().sum_all()
        })
        .unwrap();
    }

    #[test]
    fn matmul_batched() {
        let mut r = rng();
        let a: Tensor = Tensor::randn(&[2, 3, 4], &mut r);
        let b = Tensor::randn(&[2, 4, 2], &mut r);
        check_gradients(&[a, b], GradCheck::default(), |v| {
            v[0].matmul(v[1]).square().sum_all()
        })
        .unwrap();
    }

    #[test]
    fn matmul_3d_by_2d() {
        let mut r = rng();
        let a: Tensor = Tensor::randn(&[2, 3, 4], &mut r);
        let b = Tensor::randn(&[4, 2], &mut r);
        check_gradients(&[a, b], GradCheck::default(), |v| {
            v[0].matmul(v[1]).square().sum_all()
        })
        .unwrap();
    }

    #[test]
    fn softmax_and_log_softmax() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[2, 5], &mut r);
        check_gradients(std::slice::from_ref(&x), GradCheck::default(), |v| {
            v[0].softmax_lastdim().square().sum_all()
        })
        .unwrap();
        check_gradients(&[x], GradCheck::default(), |v| {
            v[0].log_softmax_lastdim().slice(1, 1, 2).sum_all()
        })
        .unwrap();
    }

    #[test]
    fn reductions() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[3, 4], &mut r);
        check_gradients(std::slice::from_ref(&x), GradCheck::default(), |v| {
            v[0].sum_axis(0).square().sum_all()
        })
        .unwrap();
        check_gradients(std::slice::from_ref(&x), GradCheck::default(), |v| {
            v[0].mean_axis(1).square().sum_all()
        })
        .unwrap();
        check_gradients(&[x], GradCheck::default(), |v| v[0].mean_all()).unwrap();
    }

    #[test]
    fn fused_losses() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[2, 4], &mut r);
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[2, 4]);
        check_gradients(std::slice::from_ref(&x), GradCheck::default(), |v| {
            v[0].bce_with_logits(&t)
        })
        .unwrap();
        let dist = Tensor::from_vec(vec![0.25, 0.25, 0.25, 0.25, 0.0, 0.5, 0.5, 0.0], &[2, 4]);
        check_gradients(std::slice::from_ref(&x), GradCheck::default(), |v| {
            v[0].softmax_xent_rows(&dist)
        })
        .unwrap();
        let target = Tensor::randn(&[2, 4], &mut r);
        check_gradients(
            &[x],
            GradCheck {
                eps: 1e-6,
                tol: 1e-5,
            },
            |v| v[0].smooth_l1(&target, 1.0),
        )
        .unwrap();
    }

    #[test]
    fn conv2d_gradients() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[2, 2, 5, 5], &mut r);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut r);
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        check_gradients(
            &[x, w],
            GradCheck {
                eps: 1e-5,
                tol: 1e-5,
            },
            |v| v[0].conv2d(v[1], spec).square().sum_all(),
        )
        .unwrap();
    }

    #[test]
    fn max_pool_gradients() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[1, 2, 6, 6], &mut r);
        check_gradients(&[x], GradCheck::default(), |v| {
            v[0].max_pool2d(Pool2dSpec {
                kernel: 2,
                stride: 2,
            })
            .square()
            .sum_all()
        })
        .unwrap();
    }

    #[test]
    fn structural_ops() {
        let mut r = rng();
        let a: Tensor = Tensor::randn(&[2, 3], &mut r);
        let b = Tensor::randn(&[2, 2], &mut r);
        check_gradients(&[a.clone(), b], GradCheck::default(), |v| {
            Var::concat(&[v[0], v[1]], 1).square().sum_all()
        })
        .unwrap();
        check_gradients(std::slice::from_ref(&a), GradCheck::default(), |v| {
            v[0].transpose().slice(0, 1, 2).square().sum_all()
        })
        .unwrap();
        check_gradients(&[a], GradCheck::default(), |v| {
            v[0].reshape(&[6])
                .gather_rows(&[0, 0, 5])
                .square()
                .sum_all()
        })
        .unwrap();
    }

    /// One GRU recurrence step, inlined from primitive ops exactly as
    /// `yollo_nn::Gru::step` composes them: `z = σ(xWz + hUz)`,
    /// `r = σ(xWr + hUr)`, `ĥ = tanh(xWh + (r⊙h)Uh)`,
    /// `h' = h + z⊙(ĥ − h)`. Gradients flow into the input, the previous
    /// state, and every weight block — including Uh, which enters through
    /// the gated product `r⊙h`.
    #[test]
    fn gru_step_gradients() {
        let mut r = rng();
        let (batch, input, hidden) = (2, 3, 4);
        let x: Tensor = Tensor::randn(&[batch, input], &mut r);
        let h = Tensor::randn(&[batch, hidden], &mut r);
        let wx = Tensor::randn(&[input, 3 * hidden], &mut r);
        let bx = Tensor::randn(&[3 * hidden], &mut r);
        let wh = Tensor::randn(&[hidden, 3 * hidden], &mut r);
        check_gradients(&[x, h, wx, bx, wh], GradCheck::default(), |v| {
            let (x, h, wx, bx, wh) = (v[0], v[1], v[2], v[3], v[4]);
            let gx = x.matmul(wx) + bx; // [b, 3H]
            let gh = h.matmul(wh); // [b, 3H]
            let z = (gx.slice(1, 0, hidden) + gh.slice(1, 0, hidden)).sigmoid();
            let r = (gx.slice(1, hidden, hidden) + gh.slice(1, hidden, hidden)).sigmoid();
            let uh = wh.slice(1, 2 * hidden, hidden); // [H, H]
            let cand = (gx.slice(1, 2 * hidden, hidden) + (r * h).matmul(uh)).tanh();
            (h + z * (cand - h)).square().sum_all()
        })
        .unwrap();
    }

    /// Layer normalisation with its affine parameters, inlined exactly as
    /// `yollo_nn::LayerNorm::forward` composes it (mean/variance over the
    /// last axis, `eps = 1e-5`, then `·γ + β`). Checks gradients through
    /// the normalisation into x, γ, and β at the default 1e-6 tolerance.
    #[test]
    fn layernorm_affine_gradients() {
        let mut r = rng();
        let x: Tensor = Tensor::randn(&[3, 5], &mut r);
        let gamma = Tensor::randn(&[5], &mut r);
        let beta = Tensor::randn(&[5], &mut r);
        check_gradients(&[x, gamma, beta], GradCheck::default(), |v| {
            let (x, gamma, beta) = (v[0], v[1], v[2]);
            let dims = x.dims();
            let axis = dims.len() - 1;
            let mut keep = dims.clone();
            keep[axis] = 1;
            let mean = x.mean_axis(axis).reshape(&keep);
            let centered = x - mean;
            let var = centered.square().mean_axis(axis).reshape(&keep);
            let normed = centered / var.add_scalar(1e-5).sqrt();
            (normed * gamma + beta).square().sum_all()
        })
        .unwrap();
    }

    /// The f32 instantiations of the same backward closures, at
    /// tolerances matched to single precision: the analytic gradient is
    /// computed in f32 end to end, while the finite difference runs in f64
    /// (see `check_gradients`), so the achievable agreement is bounded by
    /// f32 rounding of the forward pass (~1e-3 relative after a few dozen
    /// accumulations), not by the differencing step.
    #[test]
    fn matmul_2d_gradients_f32() {
        let mut r = rng();
        let a: Tensor<f32> = Tensor::randn(&[3, 4], &mut r);
        let b: Tensor<f32> = Tensor::randn(&[4, 2], &mut r);
        check_gradients(
            &[a, b],
            GradCheck {
                eps: 1e-3,
                tol: 2e-3,
            },
            |v| v[0].matmul(v[1]).square().sum_all(),
        )
        .unwrap();
    }

    #[test]
    fn conv2d_gradients_f32() {
        let mut r = rng();
        let x: Tensor<f32> = Tensor::randn(&[1, 2, 5, 5], &mut r);
        let w: Tensor<f32> = Tensor::randn(&[2, 2, 3, 3], &mut r);
        let spec = Conv2dSpec { stride: 2, pad: 1 };
        check_gradients(
            &[x, w],
            GradCheck {
                eps: 1e-2,
                tol: 5e-3,
            },
            |v| v[0].conv2d(v[1], spec).square().sum_all(),
        )
        .unwrap();
    }

    #[test]
    fn layernorm_affine_gradients_f32() {
        let mut r = rng();
        let x: Tensor<f32> = Tensor::randn(&[3, 5], &mut r);
        let gamma: Tensor<f32> = Tensor::randn(&[5], &mut r);
        let beta: Tensor<f32> = Tensor::randn(&[5], &mut r);
        check_gradients(
            &[x, gamma, beta],
            GradCheck {
                eps: 1e-2,
                tol: 5e-3,
            },
            |v| {
                let (x, gamma, beta) = (v[0], v[1], v[2]);
                let dims = x.dims();
                let axis = dims.len() - 1;
                let mut keep = dims.clone();
                keep[axis] = 1;
                let mean = x.mean_axis(axis).reshape(&keep);
                let centered = x - mean;
                let var = centered.square().mean_axis(axis).reshape(&keep);
                let normed = centered / var.add_scalar(1e-5).sqrt();
                (normed * gamma + beta).square().sum_all()
            },
        )
        .unwrap();
    }

    #[test]
    fn deep_composition_like_rel2att() {
        // miniature of the Rel2Att computation: relation map + mean masks
        let mut r = rng();
        let v: Tensor = Tensor::randn(&[4, 3], &mut r);
        let t = Tensor::randn(&[2, 3], &mut r);
        check_gradients(
            &[v, t],
            GradCheck {
                eps: 1e-5,
                tol: 1e-5,
            },
            |vars| {
                let x1 = Var::concat(&[vars[0], vars[1]], 0); // [6,3]
                let rel = x1.matmul(x1.transpose()).mul_scalar(1.0 / 3.0f64.sqrt());
                let att = rel.mean_axis(0) + rel.mean_axis(1);
                let att_v = att.slice(0, 0, 4).sigmoid().reshape(&[4, 1]);
                (vars[0] * att_v).square().sum_all()
            },
        )
        .unwrap();
    }
}
