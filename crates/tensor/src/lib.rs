//! Dense `f64` tensors with reverse-mode automatic differentiation.
//!
//! This crate is the computational substrate of the YOLLO reproduction: a
//! minimal tensor library providing the operators the paper's model needs —
//! matrix multiplication, 2-D convolution, softmax, reductions, gathering —
//! together with a tape-based autodiff [`Graph`] that computes exact
//! gradients for all of them.
//!
//! # Quick example
//!
//! ```
//! use yollo_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
//! let w = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
//! let y = (x * w).sum_all(); // y = 1*3 + 2*4 = 11
//! assert_eq!(y.value().scalar(), 11.0);
//! y.backward();
//! assert_eq!(x.grad().as_slice(), &[3.0, 4.0]); // dy/dx = w
//! ```

mod check;
mod conv;
mod error;
mod graph;
mod ops;
mod shape;
mod tensor;

pub use check::{check_gradients, GradCheck};
pub use conv::{col2im, im2col, Conv2dSpec, Pool2dSpec};
pub use error::TensorError;
pub use graph::{Graph, Var, VarId};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
