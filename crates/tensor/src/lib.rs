//! Dense dtype-generic tensors (`Tensor<E>`, `E` ∈ {`f64`, `f32`}) with
//! reverse-mode automatic differentiation.
//!
//! This crate is the computational substrate of the YOLLO reproduction: a
//! minimal tensor library providing the operators the paper's model needs —
//! matrix multiplication, 2-D convolution, softmax, reductions, gathering —
//! together with a tape-based autodiff [`Graph`] that computes exact
//! gradients for all of them.
//!
//! # Dtypes
//!
//! Every tensor, graph and kernel is generic over a sealed [`Element`]
//! trait with exactly two instantiations. **`f64` is the default type
//! parameter and the bitwise reference**: plain `Tensor` means
//! `Tensor<f64>`, all determinism/equivalence suites run against it, and
//! training only ever uses it. **`f32` is the inference fast path**: cast
//! weights once with [`Tensor::cast`] and the same kernels run at double
//! the vector width (~2× on the large blocked matmul). Casts are always
//! explicit; there are no mixed-dtype ops. See DESIGN.md § Dtype policy.
//!
//! # Threading model
//!
//! The autodiff tape is **single-threaded**: [`Graph`] is built on
//! `RefCell` and is `!Sync`, ops are recorded and replayed in order, and no
//! tape state ever crosses a thread. Parallelism is **intra-op**: large
//! tensor operations (matmul, im2col/col2im, elementwise maps and
//! reductions) fan their output buffer out over a scoped worker pool
//! ([`parallel`]) and join before returning, so callers — including the
//! tape's backward closures — never observe a thread.
//!
//! The pool width defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `YOLLO_THREADS` environment variable;
//! `YOLLO_THREADS=1` forces every op onto its serial reference path. Small
//! tensors skip the pool entirely (see [`parallel::PAR_ELEMWISE_MIN`] and
//! [`parallel::PAR_MATMUL_MIN_FLOPS`]), keeping scalar-heavy code fast.
//!
//! Matrix multiplication runs through a cache-blocked kernel
//! ([`matmul_blocked`]) that packs panels of the right-hand operand for
//! contiguous streaming; [`matmul_naive`] retains the textbook
//! triple loop as the correctness reference that the equivalence property
//! tests pin the blocked/parallel paths against. Convolutions can reuse
//! column buffers across calls via [`ConvScratch`] / [`conv2d_forward`] and
//! the `im2col_into` / `col2im_into` variants.
//!
//! # Telemetry
//!
//! The hot entry points (matmul, im2col, conv2d, tape push/backward, pool
//! fan-out) are instrumented with `yollo-obs` counters, latency histograms
//! and trace spans (`tensor.matmul`, `tensor.pool.worker`, …). The default
//! `obs` cargo feature compiles the instrumentation in; it is further gated
//! at runtime by the `YOLLO_OBS` environment variable, and building with
//! `--no-default-features` compiles every probe down to a no-op — the
//! `obs_overhead` integration test holds that variant to uninstrumented
//! matmul performance.
//!
//! # Quick example
//!
//! ```
//! use yollo_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
//! let w = g.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2]));
//! let y = (x * w).sum_all(); // y = 1*3 + 2*4 = 11
//! assert_eq!(y.value().scalar(), 11.0);
//! y.backward();
//! assert_eq!(x.grad().as_slice(), &[3.0, 4.0]); // dy/dx = w
//! ```

mod arena;
mod check;
mod conv;
mod element;
mod error;
mod graph;
mod ops;
pub mod parallel;
mod shape;
mod tensor;

pub use arena::TapeArena;
pub use check::{check_gradients, GradCheck};
pub use conv::{
    col2im, col2im_into, conv2d_forward, im2col, im2col_into, Conv2dSpec, ConvScratch, Pool2dSpec,
};
pub use element::Element;
pub use error::TensorError;
pub use graph::{Graph, Var, VarId};
pub use shape::{broadcast_shapes, Shape};
pub use tensor::{
    block_reduce, matmul_blocked, matmul_blocked_batched, matmul_naive, matmul_nt, matmul_tn,
    Tensor,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
