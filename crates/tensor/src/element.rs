//! The scalar element trait behind [`crate::Tensor`].
//!
//! Every tensor, tape and kernel in this crate is generic over an
//! [`Element`] — the sealed trait that supplies the arithmetic, casting and
//! accumulation hooks the kernels need. Exactly two types implement it:
//!
//! * `f64` — the **reference dtype**. It is the default type parameter
//!   everywhere (`Tensor` means `Tensor<f64>`), so all pre-existing code,
//!   every determinism suite and every bit-equality test keeps running
//!   against the exact same arithmetic as before the refactor. Training,
//!   checkpointing and the serve cache-identity guarantees all live here.
//! * `f32` — the **fast path**. Halves memory traffic through the blocked
//!   matmul/conv kernels and doubles effective SIMD width; used by the
//!   inference path (`forward_infer`, `predict_batch::<f32>`) and gated by
//!   the serve dtype knob. Verified against the f64 oracle by relative-
//!   error-bound property tests, never by bit equality.
//!
//! Accumulation policy: reductions and dot-product chains accumulate in
//! `Self`, not in a widened type. For f64 this keeps the oracle bitwise
//! identical to the pre-generic code; for f32 the rounding error this
//! admits is characterised (and bounded) by the cross-dtype equivalence
//! suite in `tests/backend_equivalence.rs`. See DESIGN.md, "Dtype policy".

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A tensor scalar: `f64` (reference oracle) or `f32` (fast path).
///
/// The trait is sealed — kernels are only ever instantiated at these two
/// dtypes, which keeps the equivalence-test matrix closed.
pub trait Element:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + serde::Serialize
    + serde::de::DeserializeOwned
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Negative infinity (the max-reduction seed).
    const NEG_INFINITY: Self;
    /// Dtype tag used in bench records and error messages.
    const DTYPE: &'static str;
    /// The positive floor applied before `ln()` in the fused losses so a
    /// probability that underflowed to zero never produces `-inf`. For
    /// f64 this is the historical `1e-300` (keeping the oracle bitwise
    /// stable); for f32, `1e-300` itself would round to zero, so the floor
    /// sits just above `f32::MIN_POSITIVE`.
    const LN_FLOOR: Self;

    /// Exact-as-possible conversion from `f64` (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Sign (`±1.0`, propagating NaN), as `f64::signum`.
    fn signum(self) -> Self;
    /// Neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Clamp into `[lo, hi]`.
    fn clamp(self, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_element {
    ($ty:ty, $dtype:literal, $ln_floor:expr) => {
        impl Element for $ty {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NEG_INFINITY: Self = <$ty>::NEG_INFINITY;
            const DTYPE: &'static str = $dtype;
            const LN_FLOOR: Self = $ln_floor;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $ty
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$ty>::abs(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$ty>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$ty>::min(self, other)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$ty>::sqrt(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$ty>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$ty>::ln(self)
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                <$ty>::tanh(self)
            }
            #[inline(always)]
            fn signum(self) -> Self {
                <$ty>::signum(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$ty>::is_finite(self)
            }
            #[inline(always)]
            fn clamp(self, lo: Self, hi: Self) -> Self {
                <$ty>::clamp(self, lo, hi)
            }
        }
    };
}

impl_element!(f64, "f64", 1e-300);
impl_element!(f32, "f32", 1e-37);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_constants() {
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(f32::from_f64(1.5), 1.5f32);
        assert_eq!(<f64 as Element>::ZERO, 0.0);
        assert_eq!(<f32 as Element>::ONE, 1.0f32);
        assert_eq!(f64::DTYPE, "f64");
        assert_eq!(f32::DTYPE, "f32");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn ln_floor_is_positive_and_loggable() {
        assert!(<f64 as Element>::LN_FLOOR > 0.0);
        assert!(<f32 as Element>::LN_FLOOR > 0.0);
        assert!(<f64 as Element>::LN_FLOOR.ln().is_finite());
        assert!(<f32 as Element>::LN_FLOOR.ln().is_finite());
        // the f64 floor is the historical constant the oracle was built on
        assert_eq!(<f64 as Element>::LN_FLOOR, 1e-300);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn f32_ln_floor_does_not_underflow() {
        // the whole point of a per-dtype floor: 1e-300 is zero in f32
        assert_eq!(1e-300f64 as f32, 0.0f32);
        assert!(<f32 as Element>::LN_FLOOR > 0.0f32);
    }
}
