use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A tensor shape: an ordered list of dimension sizes, row-major layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank). A scalar has rank 0.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        let mut off = 0;
        for (i, (&x, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(x < self.0[i], "index {x} out of range for dim {i}");
            off += x * s;
        }
        off
    }

    /// Validates an axis, returning it or an error.
    ///
    /// # Errors
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn check_axis(&self, axis: usize) -> Result<usize> {
        if axis < self.rank() {
            Ok(axis)
        } else {
            Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Computes the NumPy-style broadcast of two shapes.
///
/// Dimensions are aligned from the right; a dimension of size 1 broadcasts
/// against any size.
///
/// # Errors
/// Returns [`TensorError::ShapeMismatch`] when a pair of dimensions is
/// incompatible (neither equal nor 1).
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: a.to_vec(),
                rhs: b.to_vec(),
                op: "broadcast",
            });
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 4]).unwrap(), vec![2, 4]);
        assert_eq!(broadcast_shapes(&[], &[5]).unwrap(), vec![5]);
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
    }

    #[test]
    fn check_axis_bounds() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.check_axis(1).unwrap(), 1);
        assert!(s.check_axis(2).is_err());
    }

    proptest! {
        #[test]
        fn broadcast_is_commutative(a in proptest::collection::vec(1usize..5, 0..4),
                                    b in proptest::collection::vec(1usize..5, 0..4)) {
            // compare successful shapes only: error payloads carry lhs/rhs
            // in call order, which legitimately differ
            let ab = broadcast_shapes(&a, &b).ok();
            let ba = broadcast_shapes(&b, &a).ok();
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn broadcast_with_self_is_identity(a in proptest::collection::vec(1usize..6, 0..5)) {
            prop_assert_eq!(broadcast_shapes(&a, &a).unwrap(), a);
        }

        #[test]
        fn offsets_are_unique_and_dense(dims in proptest::collection::vec(1usize..4, 1..4)) {
            let s = Shape::new(&dims);
            let mut seen = vec![false; s.numel()];
            let mut idx = vec![0usize; dims.len()];
            loop {
                let off = s.offset(&idx);
                prop_assert!(!seen[off]);
                seen[off] = true;
                // increment multi-index
                let mut d = dims.len();
                loop {
                    if d == 0 { break; }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < dims[d] { break; }
                    idx[d] = 0;
                    if d == 0 { d = usize::MAX; break; }
                }
                if d == usize::MAX { break; }
            }
            prop_assert!(seen.iter().all(|&x| x));
        }
    }
}
