use crate::element::Element;
use crate::parallel;
use crate::shape::{broadcast_shapes, Shape};
use crate::{Result, TensorError};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of [`Element`] values — `f64` (the default
/// and reference dtype) or `f32` (the fast inference path).
///
/// `Tensor` is the plain value type of the crate; differentiable computation
/// is expressed on [`crate::Var`] handles inside a [`crate::Graph`], whose
/// nodes store `Tensor`s.
///
/// # Example
/// ```
/// use yollo_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), a.as_slice());
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<E: Element = f64> {
    shape: Shape,
    data: Vec<E>,
}

impl<E: Element> Tensor<E> {
    // ----- constructors -----

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![E::ZERO; dims.iter().product()],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, E::ONE)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: E) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; dims.iter().product()],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn from_scalar(value: E) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn from_vec(data: Vec<E>, dims: &[usize]) -> Self {
        Tensor::try_from_vec(data, dims).expect("data length must match shape")
    }

    /// Fallible version of [`Tensor::from_vec`].
    ///
    /// # Errors
    /// Returns [`TensorError::DataLength`] if the data length does not match.
    pub fn try_from_vec(data: Vec<E>, dims: &[usize]) -> Result<Self> {
        let expected: usize = dims.iter().product();
        if data.len() != expected {
            return Err(TensorError::DataLength {
                len: data.len(),
                expected,
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> E) -> Self {
        let n: usize = dims.iter().product();
        Tensor {
            shape: Shape::new(dims),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Identity matrix of size `n`×`n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = E::ONE;
        }
        t
    }

    /// Standard-normal random tensor (Box–Muller over the supplied RNG).
    pub fn randn(dims: &[usize], rng: &mut impl Rng) -> Self {
        let normal = StandardNormal;
        Tensor::from_fn(dims, |_| E::from_f64(normal.sample(rng)))
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f64, hi: f64, rng: &mut impl Rng) -> Self {
        Tensor::from_fn(dims, |_| E::from_f64(rng.gen_range(lo..hi)))
    }

    // ----- access -----

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat view of the data.
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable flat view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> E {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, idx: &[usize], value: E) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn scalar(&self) -> E {
        assert_eq!(
            self.numel(),
            1,
            "scalar() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    // ----- shape manipulation -----

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor<E> {
        self.try_reshape(dims).expect("reshape must preserve numel")
    }

    /// Fallible version of [`Tensor::reshape`].
    ///
    /// # Errors
    /// Returns [`TensorError::BadReshape`] on element-count mismatch.
    pub fn try_reshape(&self, dims: &[usize]) -> Result<Tensor<E>> {
        let expected: usize = dims.iter().product();
        if expected != self.numel() {
            return Err(TensorError::BadReshape {
                from: self.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data: self.data.clone(),
        })
    }

    /// Transposes the last two axes (works on rank ≥ 2; batched for rank 3+).
    ///
    /// # Panics
    /// Panics if rank < 2.
    pub fn transpose(&self) -> Tensor<E> {
        let r = self.rank();
        assert!(r >= 2, "transpose requires rank >= 2");
        let dims = self.dims();
        let (m, n) = (dims[r - 2], dims[r - 1]);
        let batch: usize = dims[..r - 2].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims.swap(r - 2, r - 1);
        let mut out = vec![E::ZERO; self.numel()];
        for b in 0..batch {
            let base = b * m * n;
            for i in 0..m {
                for j in 0..n {
                    out[base + j * m + i] = self.data[base + i * n + j];
                }
            }
        }
        Tensor {
            shape: Shape::new(&out_dims),
            data: out,
        }
    }

    // ----- elementwise -----

    /// Number of workers an elementwise op over `n` elements should use:
    /// 1 (serial fast path) below the size threshold or when the pool is
    /// a single thread.
    fn elemwise_threads(n: usize) -> usize {
        if n < parallel::PAR_ELEMWISE_MIN {
            1
        } else {
            parallel::num_threads()
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Large tensors are processed by the worker pool (see [`crate::parallel`]),
    /// hence the `Sync` bound.
    pub fn map(&self, f: impl Fn(E) -> E + Sync) -> Tensor<E> {
        let n = self.numel();
        let threads = Self::elemwise_threads(n);
        if threads <= 1 {
            return Tensor {
                shape: self.shape.clone(),
                data: self.data.iter().map(|&x| f(x)).collect(),
            };
        }
        let mut data = vec![E::ZERO; n];
        let chunk = parallel::chunk_len_for(n, threads);
        let src = &self.data;
        parallel::for_each_chunk_in(threads, &mut data, chunk, |ci, out| {
            let off = ci * chunk;
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(src[off + i]);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place elementwise update (parallel above the size threshold).
    pub fn map_inplace(&mut self, f: impl Fn(E) -> E + Sync) {
        let threads = Self::elemwise_threads(self.numel());
        let chunk = parallel::chunk_len_for(self.data.len(), threads);
        parallel::for_each_chunk_in(threads, &mut self.data, chunk, |_, out| {
            for x in out.iter_mut() {
                *x = f(*x);
            }
        });
    }

    /// Broadcasting binary operation (parallel above the size threshold).
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip_broadcast(&self, other: &Tensor<E>, f: impl Fn(E, E) -> E + Sync) -> Tensor<E> {
        if self.dims() == other.dims() {
            // fast path: identical shapes
            let n = self.numel();
            let threads = Self::elemwise_threads(n);
            if threads <= 1 {
                let data = self
                    .data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect();
                return Tensor {
                    shape: self.shape.clone(),
                    data,
                };
            }
            let mut data = vec![E::ZERO; n];
            let chunk = parallel::chunk_len_for(n, threads);
            let (sa, sb) = (&self.data, &other.data);
            parallel::for_each_chunk_in(threads, &mut data, chunk, |ci, out| {
                let off = ci * chunk;
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = f(sa[off + i], sb[off + i]);
                }
            });
            return Tensor {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_dims =
            broadcast_shapes(self.dims(), other.dims()).expect("broadcast-incompatible shapes");
        let out_shape = Shape::new(&out_dims);
        let n = out_shape.numel();
        let mut data = vec![E::ZERO; n];
        let sa = padded_strides(self.dims(), &out_dims);
        let sb = padded_strides(other.dims(), &out_dims);
        let strides = out_shape.strides();
        let threads = Self::elemwise_threads(n);
        let chunk = parallel::chunk_len_for(n, threads);
        let (da, db) = (&self.data, &other.data);
        parallel::for_each_chunk_in(threads, &mut data, chunk, |ci, out| {
            for (i, slot) in out.iter_mut().enumerate() {
                let flat = ci * chunk + i;
                let mut off_a = 0;
                let mut off_b = 0;
                let mut rem = flat;
                for d in 0..out_dims.len() {
                    let coord = rem / strides[d];
                    rem %= strides[d];
                    off_a += coord * sa[d];
                    off_b += coord * sb[d];
                }
                *slot = f(da[off_a], db[off_b]);
            }
        });
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Sums this tensor down to `dims` (inverse of broadcasting).
    ///
    /// Used by autodiff to reduce an upstream gradient back to the shape of
    /// a broadcast operand.
    ///
    /// # Panics
    /// Panics if `dims` cannot be broadcast to this tensor's shape.
    pub fn reduce_to(&self, dims: &[usize]) -> Tensor<E> {
        if self.dims() == dims {
            return self.clone();
        }
        let out_shape = Shape::new(dims);
        let mut out = vec![E::ZERO; out_shape.numel()];
        let strides_src = self.shape.strides();
        let starget = padded_strides(dims, self.dims());
        for flat in 0..self.numel() {
            let mut rem = flat;
            let mut off_t = 0;
            for d in 0..self.rank() {
                let coord = rem / strides_src[d];
                rem %= strides_src[d];
                off_t += coord * starget[d];
            }
            out[off_t] += self.data[flat];
        }
        Tensor {
            shape: out_shape,
            data: out,
        }
    }

    /// Elementwise addition into `self` (same shape only).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor<E>) {
        assert_eq!(self.dims(), other.dims(), "add_assign shape mismatch");
        let threads = Self::elemwise_threads(self.numel());
        let chunk = parallel::chunk_len_for(self.data.len(), threads);
        let src = &other.data;
        parallel::for_each_chunk_in(threads, &mut self.data, chunk, |ci, out| {
            let off = ci * chunk;
            for (i, a) in out.iter_mut().enumerate() {
                *a += src[off + i];
            }
        });
    }

    /// Fused `self += s * other` (same shape only): one pass, no scaled
    /// temporary. This is the gradient-reduction primitive of the
    /// data-parallel trainer.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor<E>, s: E) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "add_scaled_assign shape mismatch"
        );
        let threads = Self::elemwise_threads(self.numel());
        let chunk = parallel::chunk_len_for(self.data.len(), threads);
        let src = &other.data;
        parallel::for_each_chunk_in(threads, &mut self.data, chunk, |ci, out| {
            let off = ci * chunk;
            for (i, a) in out.iter_mut().enumerate() {
                *a += s * src[off + i];
            }
        });
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: E) -> Tensor<E> {
        self.map(|x| x * s)
    }

    /// Casts every element to dtype `F` (via `f64`), preserving shape.
    ///
    /// `f32 -> f64` is exact; `f64 -> f32` rounds to nearest. This is the
    /// bridge between the f64 training oracle and the f32 inference path.
    pub fn cast<F: Element>(&self) -> Tensor<F> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| F::from_f64(x.to_f64())).collect(),
        }
    }

    // ----- linear algebra -----

    /// Matrix multiplication.
    ///
    /// Supports `[m,k] × [k,n]` and batched `[b,m,k] × [b,k,n]` (plus a 2-D
    /// right operand broadcast across the batch).
    ///
    /// # Panics
    /// Panics on rank/shape mismatch.
    pub fn matmul(&self, other: &Tensor<E>) -> Tensor<E> {
        let threads = parallel::num_threads();
        let _span = yollo_obs::span!("tensor.matmul");
        let _lat = yollo_obs::time_hist!("tensor.matmul_ns");
        yollo_obs::counter!("tensor.matmul.calls").incr();
        match (self.rank(), other.rank()) {
            (2, 2) => {
                let (m, k) = (self.dims()[0], self.dims()[1]);
                let (k2, n) = (other.dims()[0], other.dims()[1]);
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                yollo_obs::counter!("tensor.matmul.flops").add(2 * (m * k * n) as u64);
                let mut out = vec![E::ZERO; m * n];
                matmul_blocked(&self.data, &other.data, &mut out, m, k, n, threads);
                Tensor::from_vec(out, &[m, n])
            }
            (3, 3) => {
                let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
                let (b2, k2, n) = (other.dims()[0], other.dims()[1], other.dims()[2]);
                assert_eq!(b, b2, "batched matmul batch dims: {b} vs {b2}");
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                yollo_obs::counter!("tensor.matmul.flops").add(2 * (b * m * k * n) as u64);
                let mut out = vec![E::ZERO; b * m * n];
                matmul_blocked_batched(
                    &self.data,
                    &other.data,
                    &mut out,
                    b,
                    m,
                    k,
                    n,
                    true,
                    threads,
                );
                Tensor::from_vec(out, &[b, m, n])
            }
            (3, 2) => {
                let (b, m, k) = (self.dims()[0], self.dims()[1], self.dims()[2]);
                let (k2, n) = (other.dims()[0], other.dims()[1]);
                assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
                yollo_obs::counter!("tensor.matmul.flops").add(2 * (b * m * k * n) as u64);
                let mut out = vec![E::ZERO; b * m * n];
                matmul_blocked_batched(
                    &self.data,
                    &other.data,
                    &mut out,
                    b,
                    m,
                    k,
                    n,
                    false,
                    threads,
                );
                Tensor::from_vec(out, &[b, m, n])
            }
            (ra, rb) => panic!("matmul unsupported ranks: {ra} and {rb}"),
        }
    }

    // ----- reductions -----

    /// Sum of all elements, as a rank-0 tensor.
    ///
    /// Parallel above the size threshold. The reduction runs over
    /// fixed-size blocks ([`block_reduce`]) whose partials combine in block
    /// order, so the result is bitwise identical for any thread count —
    /// not just for a fixed one.
    pub fn sum_all(&self) -> Tensor<E> {
        let threads = Self::elemwise_threads(self.numel());
        Tensor::from_scalar(block_reduce(&self.data, threads, |b| {
            b.iter().copied().sum::<E>()
        }))
    }

    /// Mean of all elements, as a rank-0 tensor. Empty tensors yield 0.
    pub fn mean_all(&self) -> Tensor<E> {
        if self.data.is_empty() {
            Tensor::from_scalar(E::ZERO)
        } else {
            Tensor::from_scalar(
                self.data.iter().copied().sum::<E>() / E::from_f64(self.data.len() as f64),
            )
        }
    }

    /// Maximum element. Empty tensors yield negative infinity.
    pub fn max_all(&self) -> E {
        self.data.iter().copied().fold(E::NEG_INFINITY, E::max)
    }

    /// Sums along `axis`, removing that axis.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Tensor<E> {
        assert!(axis < self.rank(), "axis {axis} out of range");
        let dims = self.dims();
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims.remove(axis);
        let mut out = vec![E::ZERO; outer * inner];
        let threads = if inner == 0 {
            1
        } else {
            Self::elemwise_threads(self.numel())
        };
        let src = &self.data;
        // one chunk per outer slice: disjoint writes, reads confined to the
        // matching input stripe
        parallel::for_each_chunk_in(threads, &mut out, inner.max(1), |o, slot| {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for (i, s) in slot.iter_mut().enumerate() {
                    *s += src[base + i];
                }
            }
        });
        Tensor::from_vec(out, &out_dims)
    }

    /// Means along `axis`, removing that axis.
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the axis has size 0.
    pub fn mean_axis(&self, axis: usize) -> Tensor<E> {
        let n = self.dims()[axis];
        assert!(n > 0, "mean over empty axis");
        self.sum_axis(axis).scale(E::from_f64(1.0 / n as f64))
    }

    /// Row-wise softmax over the last axis (rows fan out over the pool
    /// above the size threshold).
    pub fn softmax_lastdim(&self) -> Tensor<E> {
        let r = self.rank();
        assert!(r >= 1, "softmax requires rank >= 1");
        let n = self.dims()[r - 1];
        let mut out = self.data.clone();
        let threads = if n == 0 {
            1
        } else {
            Self::elemwise_threads(self.numel())
        };
        parallel::for_each_chunk_in(threads, &mut out, n.max(1), |_, s| {
            let mx = s.iter().copied().fold(E::NEG_INFINITY, E::max);
            let mut z = E::ZERO;
            for x in s.iter_mut() {
                *x = (*x - mx).exp();
                z += *x;
            }
            for x in s.iter_mut() {
                *x /= z;
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    // ----- structural -----

    /// Concatenates tensors along `axis`.
    ///
    /// # Panics
    /// Panics if the list is empty or shapes disagree off-axis.
    pub fn concat(tensors: &[&Tensor<E>], axis: usize) -> Tensor<E> {
        assert!(!tensors.is_empty(), "concat of empty list");
        let first = tensors[0];
        let rank = first.rank();
        assert!(axis < rank, "concat axis out of range");
        let mut axis_total = 0;
        for t in tensors {
            assert_eq!(t.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(t.dims()[d], first.dims()[d], "concat off-axis dim mismatch");
                }
            }
            axis_total += t.dims()[axis];
        }
        let mut out_dims = first.dims().to_vec();
        out_dims[axis] = axis_total;
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        let mut out = Vec::with_capacity(out_dims.iter().product());
        for o in 0..outer {
            for t in tensors {
                let mid = t.dims()[axis];
                let start = o * mid * inner;
                out.extend_from_slice(&t.data[start..start + mid * inner]);
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Slice of length `len` starting at `start` along `axis`.
    ///
    /// # Panics
    /// Panics if the range exceeds the axis size.
    pub fn slice(&self, axis: usize, start: usize, len: usize) -> Tensor<E> {
        let dims = self.dims();
        assert!(axis < self.rank(), "slice axis out of range");
        assert!(start + len <= dims[axis], "slice range out of bounds");
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[axis] = len;
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * mid + start) * inner;
            out.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Gathers rows (axis 0) by index. Indices may repeat.
    ///
    /// # Panics
    /// Panics if any index is out of range or the tensor is rank 0.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor<E> {
        assert!(self.rank() >= 1, "gather_rows on scalar");
        let rows = self.dims()[0];
        let inner: usize = self.dims()[1..].iter().product();
        let mut out = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            assert!(i < rows, "gather index {i} out of range {rows}");
            out.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut out_dims = self.dims().to_vec();
        out_dims[0] = indices.len();
        Tensor::from_vec(out, &out_dims)
    }

    /// Scatter-adds `src` rows into a zero tensor of `rows` rows (inverse of
    /// [`Tensor::gather_rows`]).
    ///
    /// # Panics
    /// Panics if `src.dims()[0] != indices.len()` or an index is out of range.
    pub fn scatter_add_rows(src: &Tensor<E>, indices: &[usize], rows: usize) -> Tensor<E> {
        assert_eq!(src.dims()[0], indices.len(), "scatter rows mismatch");
        let inner: usize = src.dims()[1..].iter().product();
        let mut out_dims = src.dims().to_vec();
        out_dims[0] = rows;
        let mut out = vec![E::ZERO; rows * inner];
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < rows, "scatter index {i} out of range {rows}");
            for c in 0..inner {
                out[i * inner + c] += src.data[r * inner + c];
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Panics
    /// Panics if the list is empty or shapes differ.
    pub fn stack(tensors: &[&Tensor<E>]) -> Tensor<E> {
        assert!(!tensors.is_empty(), "stack of empty list");
        let dims = tensors[0].dims();
        let mut data = Vec::with_capacity(tensors.len() * tensors[0].numel());
        for t in tensors {
            assert_eq!(t.dims(), dims, "stack shape mismatch");
            data.extend_from_slice(t.as_slice());
        }
        let mut out_dims = vec![tensors.len()];
        out_dims.extend_from_slice(dims);
        Tensor::from_vec(data, &out_dims)
    }

    /// Frobenius / L2 norm of all elements (parallel above the threshold).
    ///
    /// Like [`Tensor::sum_all`], the square-sum reduces over fixed-size
    /// blocks, so the norm — and anything derived from it, such as the
    /// trainer's global gradient clip — is bitwise identical for any
    /// thread count.
    pub fn norm(&self) -> E {
        let threads = Self::elemwise_threads(self.numel());
        block_reduce(&self.data, threads, |b| b.iter().map(|&x| x * x).sum::<E>()).sqrt()
    }

    /// Index of the maximum element (flat). Ties resolve to the first.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Number of non-finite (NaN or ±∞) elements (parallel above the
    /// elementwise threshold). The non-finite guard of the training loop
    /// scans every gradient with this after each backward pass.
    pub fn non_finite_count(&self) -> usize {
        let threads = Self::elemwise_threads(self.numel());
        parallel::par_fold_in(
            threads,
            self.data.len(),
            |r| self.data[r].iter().filter(|x| !x.is_finite()).count(),
            |a, b| a + b,
        )
        .unwrap_or(0)
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.non_finite_count() == 0
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor<E>) -> E {
        assert_eq!(self.dims(), other.dims(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(E::ZERO, E::max)
    }
}

impl<E: Element> Default for Tensor<E> {
    fn default() -> Self {
        Tensor::from_scalar(E::ZERO)
    }
}

impl<E: Element> fmt::Debug for Tensor<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.dims())?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …; n={}]",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

impl<E: Element> fmt::Display for Tensor<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Strides of `dims` padded/aligned (from the right) against `target`,
/// with broadcast dimensions getting stride 0.
fn padded_strides(dims: &[usize], target: &[usize]) -> Vec<usize> {
    let shape = Shape::new(dims);
    let strides = shape.strides();
    let offset = target.len() - dims.len();
    let mut out = vec![0usize; target.len()];
    for d in 0..dims.len() {
        out[offset + d] = if dims[d] == 1 { 0 } else { strides[d] };
    }
    out
}

// ----- matmul kernel suite -----
//
// The blocked kernel loops (kb, jb) panels of B, packs each panel into an
// interleaved layout (quads of four consecutive k-rows), and streams it
// against rows of A, so the innermost loop reads one contiguous buffer and
// touches each output row once per four k-steps instead of once per step.
// Row bands of the output fan out over the worker pool; each band is an
// independent serial computation, so parallel and serial results are
// identical for a given band split.

/// Output rows per parallel band (and the band height the packed panel is
/// reused across).
const MC: usize = 64;
/// Panel depth: k-rows of B packed per panel.
const KC: usize = 128;
/// Panel width: columns of B per panel (KC×NC×8 bytes ≈ 256 KiB, L2-sized).
const NC: usize = 256;

/// Naive triple-loop reference kernel: `out[m,n] += a[m,k] × b[k,n]`.
///
/// Deliberately unoptimised (i-j-k dot products, strided B reads). Retained
/// as the correctness oracle for the equivalence property tests and the
/// baseline that `exp_tensor_speed` measures [`matmul_blocked`] against.
pub fn matmul_naive<E: Element>(a: &[E], b: &[E], out: &mut [E], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = E::ZERO;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] += acc;
        }
    }
}

/// Serial cache-blocked kernel over one row band:
/// `band += a[r0 .. r0+rows, :] × b`, where `band` holds `rows` full output
/// rows. `panel` is caller-provided pack scratch (cleared and reused).
fn matmul_band<E: Element>(
    a: &[E],
    b: &[E],
    band: &mut [E],
    r0: usize,
    k: usize,
    n: usize,
    panel: &mut Vec<E>,
) {
    let rows = band.len() / n;
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        let kq = (kend - kb) & !3; // span handled by packed quads
        for jb in (0..n).step_by(NC) {
            let jend = (jb + NC).min(n);
            let jw = jend - jb;
            // pack B[kb..kb+kq, jb..jend] as quads of contiguous sub-rows:
            // the four k-rows of a quad sit back to back, so the inner loop
            // below reads five contiguous streams — a layout the
            // auto-vectoriser handles at any element width (an interleaved
            // per-j layout defeats it, and f32 then gains nothing over f64)
            panel.clear();
            panel.resize(kq * jw, E::ZERO);
            for q in 0..kq / 4 {
                let r = kb + q * 4;
                let dst = &mut panel[q * 4 * jw..(q + 1) * 4 * jw];
                for s in 0..4 {
                    dst[s * jw..(s + 1) * jw]
                        .copy_from_slice(&b[(r + s) * n + jb..(r + s) * n + jend]);
                }
            }
            for i in 0..rows {
                let arow = &a[(r0 + i) * k..(r0 + i) * k + k];
                let orow = &mut band[i * n + jb..i * n + jend];
                for q in 0..kq / 4 {
                    let p = kb + q * 4;
                    let (av0, av1, av2, av3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                    let quad = &panel[q * 4 * jw..(q + 1) * 4 * jw];
                    let (q0, rest) = quad.split_at(jw);
                    let (q1, rest) = rest.split_at(jw);
                    let (q2, q3) = rest.split_at(jw);
                    // same per-element addition order as before the layout
                    // change, so f64 results stay bitwise identical
                    for (((o, &b0), (&b1, &b2)), &b3) in
                        orow.iter_mut().zip(q0).zip(q1.iter().zip(q2)).zip(q3)
                    {
                        *o += av0 * b0 + av1 * b1 + av2 * b2 + av3 * b3;
                    }
                }
                // k remainder (fewer than four rows left in this k-panel)
                for p in kb + kq..kend {
                    let av = arow[p];
                    let brow = &b[p * n + jb..p * n + jend];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// Cache-blocked, pool-parallel matmul: `out[m,n] += a[m,k] × b[k,n]`.
///
/// Row bands of the output are distributed over `threads` workers; pass
/// `threads = 1` for the deterministic serial path. Small problems (under
/// [`parallel::PAR_MATMUL_MIN_FLOPS`] multiply-accumulates) stay serial
/// regardless.
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn matmul_blocked<E: Element>(
    a: &[E],
    b: &[E],
    out: &mut [E],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_blocked: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_blocked: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_blocked: bad out length");
    if n == 0 {
        return;
    }
    if threads <= 1 || m * k * n < parallel::PAR_MATMUL_MIN_FLOPS || m < 2 {
        let mut panel = Vec::new();
        matmul_band(a, b, out, 0, k, n, &mut panel);
        return;
    }
    parallel::for_each_chunk_in(threads, out, MC * n, |band_idx, band| {
        let mut panel = Vec::new();
        matmul_band(a, b, band, band_idx * MC, k, n, &mut panel);
    });
}

/// Batched blocked matmul: `out[bi] += a[bi] × b[bi]` (or a shared 2-D `b`
/// when `b_is_batched` is false). Whole batches fan out over the pool when
/// there are enough of them; otherwise each batch parallelises over rows.
#[allow(clippy::too_many_arguments)]
pub fn matmul_blocked_batched<E: Element>(
    a: &[E],
    b: &[E],
    out: &mut [E],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    b_is_batched: bool,
    threads: usize,
) {
    assert_eq!(a.len(), batch * m * k, "matmul_blocked_batched: bad lhs");
    let b_stride = if b_is_batched { k * n } else { 0 };
    assert_eq!(
        b.len(),
        if b_is_batched { batch * k * n } else { k * n },
        "matmul_blocked_batched: bad rhs"
    );
    assert_eq!(out.len(), batch * m * n, "matmul_blocked_batched: bad out");
    if batch == 0 || m * n == 0 {
        return;
    }
    let big_enough = batch * m * k * n >= parallel::PAR_MATMUL_MIN_FLOPS;
    if threads > 1 && big_enough && batch >= threads {
        // enough batches to keep every worker busy: one batch per chunk
        parallel::for_each_chunk_in(threads, out, m * n, |bi, chunk| {
            let mut panel = Vec::new();
            matmul_band(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * b_stride..bi * b_stride + k * n],
                chunk,
                0,
                k,
                n,
                &mut panel,
            );
        });
    } else {
        // few large batches: let each matmul parallelise over its rows
        for bi in 0..batch {
            matmul_blocked(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[bi * b_stride..bi * b_stride + k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
                threads,
            );
        }
    }
}

/// Fixed block length of [`block_reduce`] partials. Small enough that a
/// block's sum stays in cache, large enough that the serial combine over
/// partials is negligible.
const REDUCE_BLOCK: usize = 4096;

/// Thread-count-independent parallel reduction: folds every
/// [`REDUCE_BLOCK`]-sized block of `data` with `fold`, then sums the block
/// partials serially in block order. Workers write disjoint partial slots,
/// so — unlike a per-worker-band fold — the floating-point combine order is
/// a function of the data length only, and the result is bitwise identical
/// for any `threads`.
pub fn block_reduce<E: Element>(data: &[E], threads: usize, fold: impl Fn(&[E]) -> E + Sync) -> E {
    if data.is_empty() {
        return E::ZERO;
    }
    if threads <= 1 || data.len() <= REDUCE_BLOCK {
        return data.chunks(REDUCE_BLOCK).map(&fold).sum();
    }
    let mut partials = vec![E::ZERO; data.len().div_ceil(REDUCE_BLOCK)];
    let per_worker = parallel::chunk_len_for(partials.len(), threads);
    parallel::for_each_chunk_in(threads, &mut partials, per_worker, move |ci, band| {
        for (i, slot) in band.iter_mut().enumerate() {
            let start = (ci * per_worker + i) * REDUCE_BLOCK;
            let end = (start + REDUCE_BLOCK).min(data.len());
            *slot = fold(&data[start..end]);
        }
    });
    partials.iter().copied().sum()
}

/// One dot product of [`matmul_nt`], split into four partial accumulators
/// so the reduction vectorises. Every caller must use this exact pattern:
/// it fixes the floating-point accumulation order of the kernel.
#[inline(always)]
fn nt_dot<E: Element>(arow: &[E], brow: &[E], k: usize) -> E {
    let (mut s0, mut s1, mut s2, mut s3) = (E::ZERO, E::ZERO, E::ZERO, E::ZERO);
    let quads = k & !3;
    for p in (0..quads).step_by(4) {
        s0 += arow[p] * brow[p];
        s1 += arow[p + 1] * brow[p + 1];
        s2 += arow[p + 2] * brow[p + 2];
        s3 += arow[p + 3] * brow[p + 3];
    }
    let mut acc = (s0 + s1) + (s2 + s3);
    for p in quads..k {
        acc += arow[p] * brow[p];
    }
    acc
}

/// One output row of [`matmul_nt`]: `orow[n] += arow[k] · b[n,k]ᵀ`.
///
/// Four `b` rows are processed per pass so `arow` is loaded once per quad
/// and the four independent dot chains fill the FMA pipeline; each dot
/// keeps the [`nt_dot`] accumulation order, so the output is bitwise
/// identical to the one-row-at-a-time loop.
fn matmul_nt_row<E: Element>(arow: &[E], b: &[E], orow: &mut [E], k: usize) {
    let n = orow.len();
    let jquads = n & !3;
    for j in (0..jquads).step_by(4) {
        let b0 = &b[j * k..(j + 1) * k];
        let b1 = &b[(j + 1) * k..(j + 2) * k];
        let b2 = &b[(j + 2) * k..(j + 3) * k];
        let b3 = &b[(j + 3) * k..(j + 4) * k];
        let (mut s0, mut s1, mut s2, mut s3) =
            ([E::ZERO; 4], [E::ZERO; 4], [E::ZERO; 4], [E::ZERO; 4]);
        let quads = k & !3;
        for p in (0..quads).step_by(4) {
            for u in 0..4 {
                s0[u] += arow[p + u] * b0[p + u];
                s1[u] += arow[p + u] * b1[p + u];
                s2[u] += arow[p + u] * b2[p + u];
                s3[u] += arow[p + u] * b3[p + u];
            }
        }
        let mut acc = [
            (s0[0] + s0[1]) + (s0[2] + s0[3]),
            (s1[0] + s1[1]) + (s1[2] + s1[3]),
            (s2[0] + s2[1]) + (s2[2] + s2[3]),
            (s3[0] + s3[1]) + (s3[2] + s3[3]),
        ];
        for p in quads..k {
            acc[0] += arow[p] * b0[p];
            acc[1] += arow[p] * b1[p];
            acc[2] += arow[p] * b2[p];
            acc[3] += arow[p] * b3[p];
        }
        for u in 0..4 {
            orow[j + u] += acc[u];
        }
    }
    for (j, o) in orow.iter_mut().enumerate().skip(jquads) {
        *o += nt_dot(arow, &b[j * k..(j + 1) * k], k);
    }
}

/// `out[m,n] += a[m,k] × b[n,k]ᵀ` — both operands row-major, so every dot
/// product reads two contiguous runs; neither operand is ever transposed in
/// memory. This is the `∂A = ∂Y·Bᵀ` kernel of matmul backward and the `∂W`
/// kernel of conv2d backward.
///
/// Row bands of `out` fan out over `threads` workers above
/// [`parallel::PAR_MATMUL_MIN_FLOPS`]; every output element is produced by
/// exactly one worker with a fixed accumulation order, so the result is
/// bitwise identical for any thread count.
///
/// # Panics
/// Panics if slice lengths do not match `m*k`, `n*k`, `m*n`.
pub fn matmul_nt<E: Element>(
    a: &[E],
    b: &[E],
    out: &mut [E],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_nt: bad lhs length");
    assert_eq!(b.len(), n * k, "matmul_nt: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_nt: bad out length");
    if n == 0 {
        return;
    }
    let workers = if m * k * n < parallel::PAR_MATMUL_MIN_FLOPS {
        1
    } else {
        threads
    };
    // cache tiling: a panel of NT_JB b-rows is reused across a band of
    // NT_IB a-rows before moving on, so b streams from memory m/NT_IB
    // times instead of m times. Each dot product is untouched, so the
    // result is bitwise identical to the untiled loop.
    const NT_IB: usize = 16;
    const NT_JB: usize = 32;
    parallel::for_each_chunk_in(workers, out, NT_IB * n, |ci, oband| {
        let rows = oband.len() / n;
        for j0 in (0..n).step_by(NT_JB) {
            let jt = NT_JB.min(n - j0);
            for ii in 0..rows {
                let arow = &a[(ci * NT_IB + ii) * k..(ci * NT_IB + ii + 1) * k];
                let opanel = &mut oband[ii * n + j0..ii * n + j0 + jt];
                matmul_nt_row(arow, &b[j0 * k..(j0 + jt) * k], opanel, k);
            }
        }
    });
}

/// `out[m,n] += a[p,m]ᵀ × b[p,n]` — the transpose-free Aᵀ·B: both operands
/// stream row-major, no copies. This is the `∂B = Aᵀ·∂Y` kernel of matmul
/// backward and the `∂cols` kernel of conv2d backward.
///
/// Parallelism is over row bands of `out` (each worker re-streams `a`'s
/// column and `b`'s rows for its band); per output element the `p`
/// accumulation order is identical on the serial and banded paths, so the
/// result is bitwise identical for any thread count.
///
/// # Panics
/// Panics if slice lengths do not match `p*m`, `p*n`, `m*n`.
pub fn matmul_tn<E: Element>(
    a: &[E],
    b: &[E],
    out: &mut [E],
    p: usize,
    m: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), p * m, "matmul_tn: bad lhs length");
    assert_eq!(b.len(), p * n, "matmul_tn: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_tn: bad out length");
    if n == 0 || m == 0 {
        return;
    }
    let workers = if p * m * n < parallel::PAR_MATMUL_MIN_FLOPS {
        1
    } else {
        threads
    };
    // cache tiling: a band of TN_IB output rows stays hot across the whole
    // `r` sweep, so `out` streams from memory once instead of `p` times and
    // `b` once per band instead of once per output row. Every element still
    // accumulates its `p` terms in ascending `r` order, so the result is
    // bitwise identical for any thread count (and to the untiled loop).
    const TN_IB: usize = 16;
    parallel::for_each_chunk_in(workers, out, TN_IB * n, |ci, oband| {
        let i0 = ci * TN_IB;
        let rows = oband.len() / n;
        // four `r` terms per pass: each output row is loaded and stored
        // once per quad instead of once per `r`. The adds stay strictly
        // sequential in ascending `r`, so every element's accumulation
        // order — and therefore its bits — matches the one-`r`-at-a-time
        // loop exactly.
        let rquads = p & !3;
        for r in (0..rquads).step_by(4) {
            for ii in 0..rows {
                let i = i0 + ii;
                let (a0, a1, a2, a3) = (
                    a[r * m + i],
                    a[(r + 1) * m + i],
                    a[(r + 2) * m + i],
                    a[(r + 3) * m + i],
                );
                let b0 = &b[r * n..(r + 1) * n];
                let b1 = &b[(r + 1) * n..(r + 2) * n];
                let b2 = &b[(r + 2) * n..(r + 3) * n];
                let b3 = &b[(r + 3) * n..(r + 4) * n];
                let orow = &mut oband[ii * n..(ii + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let mut t = *o + a0 * b0[j];
                    t += a1 * b1[j];
                    t += a2 * b2[j];
                    t += a3 * b3[j];
                    *o = t;
                }
            }
        }
        for r in rquads..p {
            let acol = &a[r * m + i0..r * m + i0 + rows];
            let brow = &b[r * n..(r + 1) * n];
            for (ii, &av) in acol.iter().enumerate() {
                let orow = &mut oband[ii * n..(ii + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $f:expr) => {
        impl<E: Element> std::ops::$trait<&Tensor<E>> for &Tensor<E> {
            type Output = Tensor<E>;
            fn $method(self, rhs: &Tensor<E>) -> Tensor<E> {
                self.zip_broadcast(rhs, $f)
            }
        }
    };
}

impl_binop!(Add, add, |a, b| a + b);
impl_binop!(Sub, sub, |a, b| a - b);
impl_binop!(Mul, mul, |a, b| a * b);
impl_binop!(Div, div, |a, b| a / b);

/// Standard-normal distribution via Box–Muller (avoids rand_distr dependency).
struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.dims(), &[2, 3]);
        let mut t = t;
        t.set(&[0, 1], 9.0);
        assert_eq!(t.at(&[0, 1]), 9.0);
    }

    #[test]
    fn matmul_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[2, 2, 3]);
        let b = Tensor::from_vec((0..18).map(|x| x as f64).collect(), &[2, 3, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2, 3]);
        // manual check for batch 0, row 0: [0,1,2] x cols of b0
        assert_eq!(c.at(&[0, 0, 0]), 0.0 * 0.0 + 1.0 * 3.0 + 2.0 * 6.0);
    }

    #[test]
    fn matmul_3d_by_2d_broadcasts_rhs() {
        let a = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[2, 2, 3]);
        let b = Tensor::eye(3);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn transpose_2d_and_batched() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
        let b = Tensor::from_vec((0..12).map(|x| x as f64).collect(), &[2, 2, 3]);
        let bt = b.transpose();
        assert_eq!(bt.dims(), &[2, 3, 2]);
        assert_eq!(bt.at(&[1, 2, 0]), b.at(&[1, 0, 2]));
    }

    #[test]
    fn broadcasting_add() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        let d = &a + &col;
        assert_eq!(d.as_slice(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    fn reduce_to_inverts_broadcast() {
        let g: Tensor = Tensor::ones(&[2, 3]);
        let r = g.reduce_to(&[3]);
        assert_eq!(r.as_slice(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to(&[2, 1]);
        assert_eq!(r2.as_slice(), &[3.0, 3.0]);
        let r3 = g.reduce_to(&[]);
        assert_eq!(r3.scalar(), 6.0);
    }

    #[test]
    fn axis_reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_axis(0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1).as_slice(), &[6.0, 15.0]);
        assert_eq!(a.mean_axis(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = a.softmax_lastdim();
        for row in 0..2 {
            let sum: f64 = (0..3).map(|j| s.at(&[row, j])).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(s.is_finite());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0], &[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.slice(0, 0, 2).as_slice(), a.as_slice());
        assert_eq!(c.slice(0, 2, 1).as_slice(), b.as_slice());

        let d = Tensor::concat(&[&a, &a], 1);
        assert_eq!(d.dims(), &[2, 4]);
        assert_eq!(d.slice(1, 2, 2).as_slice(), a.as_slice());
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = Tensor::scatter_add_rows(&g, &[2, 0, 2], 3);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let nested = Tensor::stack(&[&s]);
        assert_eq!(nested.dims(), &[1, 2, 2]);
    }

    #[test]
    fn randn_is_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a: Tensor = Tensor::randn(&[4, 4], &mut r1);
        let b = Tensor::randn(&[4, 4], &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn non_finite_count_finds_nan_and_inf() {
        let mut t = Tensor::zeros(&[4, 3]);
        assert_eq!(t.non_finite_count(), 0);
        assert!(t.is_finite());
        t.set(&[1, 2], f64::NAN);
        t.set(&[3, 0], f64::INFINITY);
        t.set(&[0, 0], f64::NEG_INFINITY);
        assert_eq!(t.non_finite_count(), 3);
        assert!(!t.is_finite());
        // large tensor exercises the parallel fold path
        let mut big = Tensor::ones(&[1 << 17]);
        big.as_mut_slice()[77777] = f64::NAN;
        assert_eq!(big.non_finite_count(), 1);
    }

    #[test]
    fn argmax_first_tie() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0], &[4]);
        assert_eq!(a.argmax(), 1);
    }

    #[test]
    fn blocked_kernel_matches_naive_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        // shapes straddle the MC/KC/NC block edges and quad remainders
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 3, 5),
            (65, 130, 37),
            (64, 128, 256),
            (33, 257, 300),
        ] {
            let a: Tensor = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let mut reference = vec![0.0; m * n];
            matmul_naive(a.as_slice(), b.as_slice(), &mut reference, m, k, n);
            for &threads in &[1usize, 4] {
                let mut out = vec![0.0; m * n];
                matmul_blocked(a.as_slice(), b.as_slice(), &mut out, m, k, n, threads);
                let worst = out
                    .iter()
                    .zip(&reference)
                    .map(|(x, y)| (x - y).abs())
                    .fold(0.0, f64::max);
                assert!(worst < 1e-11, "{m}x{k}x{n} threads {threads}: diff {worst}");
            }
        }
    }

    #[test]
    fn nt_and_tn_kernels_match_transposed_matmul() {
        let mut rng = StdRng::seed_from_u64(12);
        for &threads in &[1usize, 4] {
            let (m, k, n) = (9, 17, 6);
            let a: Tensor = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[n, k], &mut rng);
            let mut out = vec![0.0; m * n];
            matmul_nt(a.as_slice(), b.as_slice(), &mut out, m, k, n, threads);
            let expected = a.matmul(&b.transpose());
            let got = Tensor::from_vec(out, &[m, n]);
            assert!(got.max_abs_diff(&expected) < 1e-12);

            let (p, m2, n2) = (13, 5, 8);
            let c = Tensor::randn(&[p, m2], &mut rng);
            let d = Tensor::randn(&[p, n2], &mut rng);
            let mut out2 = vec![0.0; m2 * n2];
            matmul_tn(c.as_slice(), d.as_slice(), &mut out2, p, m2, n2, threads);
            let expected2 = c.transpose().matmul(&d);
            let got2 = Tensor::from_vec(out2, &[m2, n2]);
            assert!(got2.max_abs_diff(&expected2) < 1e-12);
        }
    }

    #[test]
    fn block_reductions_are_thread_count_independent() {
        let mut rng = StdRng::seed_from_u64(15);
        // crosses PAR_ELEMWISE_MIN so the parallel path actually runs
        let t: Tensor = Tensor::randn(&[1 << 17], &mut rng);
        let serial_sum = parallel::with_threads(1, || t.sum_all().scalar());
        let serial_norm = parallel::with_threads(1, || t.norm());
        for &threads in &[2usize, 3, 8] {
            let (s, n) = parallel::with_threads(threads, || (t.sum_all().scalar(), t.norm()));
            assert_eq!(s.to_bits(), serial_sum.to_bits(), "sum threads {threads}");
            assert_eq!(n.to_bits(), serial_norm.to_bits(), "norm threads {threads}");
        }
        // direct block_reduce: odd lengths, tail blocks
        for len in [0usize, 1, 4095, 4096, 4097, 10_000] {
            let d: Vec<f64> = (0..len).map(|i| (i as f64).sin()).collect();
            let one = block_reduce(&d, 1, |b| b.iter().sum());
            for threads in [2usize, 5] {
                let many = block_reduce(&d, threads, |b| b.iter().sum());
                assert_eq!(one.to_bits(), many.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn nt_and_tn_banded_paths_are_bitwise_equal_to_serial() {
        // big enough to clear PAR_MATMUL_MIN_FLOPS so the banded path runs
        let mut rng = StdRng::seed_from_u64(14);
        let (m, k, n) = (96, 160, 160);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[n, k], &mut rng);
        let mut serial = vec![0.0; m * n];
        matmul_nt(a.as_slice(), b.as_slice(), &mut serial, m, k, n, 1);
        for &threads in &[2usize, 4, 7] {
            let mut banded = vec![0.0; m * n];
            matmul_nt(a.as_slice(), b.as_slice(), &mut banded, m, k, n, threads);
            assert_eq!(serial, banded, "matmul_nt threads {threads}");
        }

        let (p, m2, n2) = (160, 96, 160);
        let c = Tensor::randn(&[p, m2], &mut rng);
        let d = Tensor::randn(&[p, n2], &mut rng);
        let mut serial2 = vec![0.0; m2 * n2];
        matmul_tn(c.as_slice(), d.as_slice(), &mut serial2, p, m2, n2, 1);
        for &threads in &[2usize, 4, 7] {
            let mut banded = vec![0.0; m2 * n2];
            matmul_tn(c.as_slice(), d.as_slice(), &mut banded, p, m2, n2, threads);
            assert_eq!(serial2, banded, "matmul_tn threads {threads}");
        }
    }

    #[test]
    fn batched_kernel_handles_shared_and_batched_rhs() {
        let mut rng = StdRng::seed_from_u64(13);
        let (bsz, m, k, n) = (5, 4, 6, 3);
        let a = Tensor::randn(&[bsz, m, k], &mut rng);
        let b3 = Tensor::randn(&[bsz, k, n], &mut rng);
        let b2 = Tensor::randn(&[k, n], &mut rng);
        for &threads in &[1usize, 3] {
            let mut out = vec![0.0; bsz * m * n];
            matmul_blocked_batched(
                a.as_slice(),
                b3.as_slice(),
                &mut out,
                bsz,
                m,
                k,
                n,
                true,
                threads,
            );
            let mut reference = vec![0.0; bsz * m * n];
            for bi in 0..bsz {
                matmul_naive(
                    &a.as_slice()[bi * m * k..(bi + 1) * m * k],
                    &b3.as_slice()[bi * k * n..(bi + 1) * k * n],
                    &mut reference[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            for (x, y) in out.iter().zip(&reference) {
                assert!((x - y).abs() < 1e-12);
            }
            let mut out2 = vec![0.0; bsz * m * n];
            matmul_blocked_batched(
                a.as_slice(),
                b2.as_slice(),
                &mut out2,
                bsz,
                m,
                k,
                n,
                false,
                threads,
            );
            let expected = a.matmul(&b2);
            for (x, y) in out2.iter().zip(expected.as_slice()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    proptest! {
        #[test]
        fn matmul_identity(rows in 1usize..5, cols in 1usize..5,
                           seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Tensor = Tensor::randn(&[rows, cols], &mut rng);
            let c = a.matmul(&Tensor::eye(cols));
            prop_assert!(a.max_abs_diff(&c) < 1e-12);
        }

        #[test]
        fn matmul_distributes_over_add(m in 1usize..4, k in 1usize..4, n in 1usize..4,
                                       seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Tensor = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            let c = Tensor::randn(&[k, n], &mut rng);
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
        }

        #[test]
        fn transpose_is_involution(m in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Tensor = Tensor::randn(&[m, n], &mut rng);
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn sum_axis_total_matches_sum_all(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Tensor = Tensor::randn(&[m, n], &mut rng);
            let by_axis = a.sum_axis(0).sum_all().scalar();
            prop_assert!((by_axis - a.sum_all().scalar()).abs() < 1e-9);
        }

        #[test]
        fn reduce_to_conserves_mass(m in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Tensor = Tensor::randn(&[m, n], &mut rng);
            let r = a.reduce_to(&[n]);
            prop_assert!((r.sum_all().scalar() - a.sum_all().scalar()).abs() < 1e-9);
        }
    }
}
