//! Intra-op parallelism: a scoped worker pool over `std::thread`.
//!
//! The autodiff tape ([`crate::Graph`]) stays single-threaded by design;
//! parallelism lives *inside* individual tensor operations, which fan work
//! out over disjoint chunks of their output buffer and join before
//! returning. Nothing concurrent ever escapes an op, so the tape never
//! observes a thread.
//!
//! The pool width is [`num_threads`]: the `YOLLO_THREADS` environment
//! variable when set to a positive integer, otherwise
//! [`std::thread::available_parallelism`]. `YOLLO_THREADS=1` forces every
//! op onto its serial path, which is also the reference behaviour the
//! equivalence property tests pin the parallel paths against.
//!
//! Workers are scoped threads spawned per call ([`std::thread::scope`]),
//! not a persistent pool: spawn cost is a few microseconds, so every op
//! gates fan-out behind a size threshold ([`PAR_ELEMWISE_MIN`],
//! [`PAR_MATMUL_MIN_FLOPS`]) below which it stays on the serial fast path.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Minimum number of output elements before an elementwise op fans out.
pub const PAR_ELEMWISE_MIN: usize = 1 << 16;

/// Minimum multiply-accumulate count before a matmul fans out.
pub const PAR_MATMUL_MIN_FLOPS: usize = 1 << 21;

fn hardware_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parses a `YOLLO_THREADS`-style override. `None`, non-numeric values and
/// `0` all mean "no override".
pub fn parse_thread_override(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

thread_local! {
    /// Per-thread pool-width cap installed by [`with_threads`].
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker-pool width: a [`with_threads`] override on the current thread
/// if one is active, else `YOLLO_THREADS` if set, else hardware parallelism.
///
/// Read per call (not cached) so tests and long-lived servers can retune.
pub fn num_threads() -> usize {
    if let Some(cap) = THREAD_CAP.with(Cell::get) {
        return cap;
    }
    parse_thread_override(std::env::var("YOLLO_THREADS").ok().as_deref())
        .unwrap_or_else(hardware_threads)
}

/// Runs `f` with the ambient pool width pinned to `n` on the current thread.
///
/// This is how higher-level parallelism (e.g. the data-parallel trainer in
/// `yollo-core`, which runs one model replica per worker thread) stops
/// intra-op fan-out from oversubscribing the machine: each replica thread
/// wraps its forward/backward in `with_threads(1, ..)` so every tensor op
/// inside takes its serial path. The override is thread-local and restored
/// on exit (including on panic), and it does not propagate into threads
/// spawned by `f` — scoped pool workers spawned under an override therefore
/// see the ambient width, which is why callers pin to 1 rather than some
/// smaller budget.
///
/// # Panics
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "with_threads requires a positive width");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(Some(n))));
    f()
}

/// Runs `f(chunk_index, chunk)` for every `chunk_len`-sized chunk of `data`
/// (the last chunk may be shorter), distributing contiguous runs of chunks
/// over `threads` scoped workers. `threads <= 1`, or a single chunk, runs
/// inline with no spawn. Chunks are disjoint `&mut` views, so workers can
/// write their output without synchronisation.
///
/// # Panics
/// Panics if `chunk_len == 0`, or if a worker panics.
pub fn for_each_chunk_in<T: Send>(
    threads: usize,
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let workers = threads.min(n_chunks);
    if workers <= 1 {
        yollo_obs::counter!("tensor.pool.serial").incr();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    yollo_obs::counter!("tensor.pool.fanouts").incr();
    yollo_obs::gauge!("tensor.pool.last_fanout").set(workers as f64);
    let per = n_chunks.div_ceil(workers); // whole chunks per worker
    std::thread::scope(|scope| {
        let f = &f;
        let mut bands = Vec::with_capacity(workers);
        let mut rest = data;
        let mut first = 0;
        while !rest.is_empty() {
            let take = (per * chunk_len).min(rest.len());
            let (band, tail) = rest.split_at_mut(take);
            rest = tail;
            bands.push((first, band));
            first += per;
        }
        let mut bands = bands.into_iter();
        let home = bands.next();
        for (band_first, band) in bands {
            scope.spawn(move || {
                let _busy = yollo_obs::time_hist!("tensor.pool.worker_busy_ns");
                let _span = yollo_obs::span!("tensor.pool.worker");
                for (i, chunk) in band.chunks_mut(chunk_len).enumerate() {
                    f(band_first + i, chunk);
                }
            });
        }
        // the calling thread works too, instead of idling at the join
        if let Some((band_first, band)) = home {
            let _busy = yollo_obs::time_hist!("tensor.pool.worker_busy_ns");
            for (i, chunk) in band.chunks_mut(chunk_len).enumerate() {
                f(band_first + i, chunk);
            }
        }
    });
}

/// [`for_each_chunk_in`] at the ambient pool width ([`num_threads`]).
pub fn for_each_chunk<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    for_each_chunk_in(num_threads(), data, chunk_len, f);
}

/// Parallel fold over the index range `0..n`: splits it into one contiguous
/// sub-range per worker, folds each with `fold`, and combines the partial
/// results in range order (so the result is deterministic for a fixed
/// thread count). Returns `None` when `n == 0`.
///
/// # Panics
/// Panics if a worker panics.
pub fn par_fold_in<T, F, C>(threads: usize, n: usize, fold: F, combine: C) -> Option<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return None;
    }
    let workers = threads.min(n);
    if workers <= 1 {
        yollo_obs::counter!("tensor.pool.serial").incr();
        return Some(fold(0..n));
    }
    yollo_obs::counter!("tensor.pool.fanouts").incr();
    yollo_obs::gauge!("tensor.pool.last_fanout").set(workers as f64);
    let per = n.div_ceil(workers);
    Some(std::thread::scope(|scope| {
        let fold = &fold;
        let handles: Vec<_> = (1..workers)
            .map(|w| {
                let range = (w * per).min(n)..((w + 1) * per).min(n);
                scope.spawn(move || {
                    let _busy = yollo_obs::time_hist!("tensor.pool.worker_busy_ns");
                    let _span = yollo_obs::span!("tensor.pool.worker");
                    fold(range)
                })
            })
            .collect();
        let mut acc = {
            let _busy = yollo_obs::time_hist!("tensor.pool.worker_busy_ns");
            fold(0..per.min(n))
        };
        for h in handles {
            acc = combine(acc, h.join().expect("parallel fold worker panicked"));
        }
        acc
    }))
}

/// The chunk length that hands each of `threads` workers one contiguous
/// run of `n` elements.
pub fn chunk_len_for(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn override_parsing() {
        assert_eq!(parse_thread_override(None), None);
        assert_eq!(parse_thread_override(Some("0")), None);
        assert_eq!(parse_thread_override(Some("banana")), None);
        assert_eq!(parse_thread_override(Some("4")), Some(4));
        assert_eq!(parse_thread_override(Some(" 2 ")), Some(2));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn chunks_cover_every_element_exactly_once() {
        for &threads in &[1usize, 2, 3, 8] {
            for &(len, chunk) in &[(0usize, 3usize), (1, 3), (7, 3), (9, 3), (100, 7), (64, 64)] {
                let mut data = vec![0.0; len];
                let touched = AtomicUsize::new(0);
                for_each_chunk_in(threads, &mut data, chunk, |ci, c| {
                    touched.fetch_add(c.len(), Ordering::Relaxed);
                    for (i, v) in c.iter_mut().enumerate() {
                        *v = (ci * chunk + i) as f64;
                    }
                });
                assert_eq!(touched.load(Ordering::Relaxed), len);
                for (i, v) in data.iter().enumerate() {
                    assert_eq!(*v, i as f64, "len {len} chunk {chunk} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn par_fold_matches_serial_sum() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let serial: f64 = data.iter().sum();
        for &threads in &[1usize, 2, 5, 16] {
            let par = par_fold_in(
                threads,
                data.len(),
                |r| r.map(|i| data[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(par, serial, "threads {threads}");
        }
        assert_eq!(
            par_fold_in(4, 0, |_| 0.0f64, |a, b| a + b),
            None,
            "empty fold"
        );
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = num_threads();
        let inner = with_threads(1, || {
            assert_eq!(num_threads(), 1);
            // nesting shadows, then restores the outer override
            with_threads(3, || assert_eq!(num_threads(), 3));
            num_threads()
        });
        assert_eq!(inner, 1);
        assert_eq!(num_threads(), ambient, "override must not leak");
        // spawned threads never inherit the cap
        with_threads(1, || {
            let seen = std::thread::scope(|s| s.spawn(num_threads).join().unwrap());
            assert!(seen >= 1);
            assert_eq!(num_threads(), 1);
            assert_eq!(seen, ambient, "override is thread-local");
        });
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let ambient = num_threads();
        let caught = std::panic::catch_unwind(|| with_threads(1, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(num_threads(), ambient);
    }

    #[test]
    fn chunk_len_hands_one_run_per_worker() {
        assert_eq!(chunk_len_for(100, 4), 25);
        assert_eq!(chunk_len_for(101, 4), 26);
        assert_eq!(chunk_len_for(3, 8), 1);
        assert_eq!(chunk_len_for(5, 0), 5);
    }
}
