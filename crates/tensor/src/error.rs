use std::fmt;

/// Error produced by tensor operations.
///
/// Most tensor routines panic on shape mismatches (programming errors inside
/// a fixed model architecture), but the fallible entry points used at API
/// boundaries return this type instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes could not be combined (element-wise op or broadcast).
    ShapeMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
        /// Operation name for context.
        op: &'static str,
    },
    /// A reshape target had a different number of elements.
    BadReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// The data length did not match the product of the dimensions.
    DataLength {
        /// Provided data length.
        len: usize,
        /// Expected number of elements.
        expected: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::DataLength { len, expected } => {
                write!(f, "data length {len} does not match {expected} elements")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        let s = e.to_string();
        assert!(s.starts_with("shape mismatch"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
