use crate::arena::TapeArena;
use crate::{Element, Tensor};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Backward function: given the gradient flowing into a node, produce
/// `(parent id, gradient contribution)` pairs.
pub(crate) type BackFn<E> = Box<dyn FnOnce(&Tensor<E>) -> Vec<(usize, Tensor<E>)>>;

struct Node<E: Element> {
    value: Tensor<E>,
    grad: Option<Tensor<E>>,
    backward: Option<BackFn<E>>,
}

/// A reverse-mode automatic-differentiation tape.
///
/// Every differentiable operation on a [`Var`] appends a node to the tape;
/// [`Var::backward`] replays the tape in reverse, accumulating gradients.
/// A `Graph` is intended to live for a single forward/backward pass; model
/// parameters live outside (see `yollo-nn`) and read their gradients back
/// via [`Var::grad`] after the backward pass.
///
/// `Graph` is single-threaded (`!Sync`) by design: training in this
/// reproduction is data-parallel at a higher level, never within one tape.
///
/// # Example
/// ```
/// use yollo_tensor::{Graph, Tensor};
/// let g = Graph::new();
/// let x = g.leaf(Tensor::from_scalar(3.0));
/// let y = x.square(); // y = x^2
/// y.backward();
/// assert_eq!(x.grad().scalar(), 6.0); // dy/dx = 2x
/// ```
pub struct Graph<E: Element = f64> {
    nodes: RefCell<Vec<Node<E>>>,
    arena: Option<Rc<TapeArena<E>>>,
    tape_allocs: Cell<usize>,
}

impl<E: Element> Default for Graph<E> {
    fn default() -> Self {
        Graph {
            nodes: RefCell::new(Vec::new()),
            arena: None,
            tape_allocs: Cell::new(0),
        }
    }
}

impl<E: Element> std::fmt::Debug for Graph<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.borrow().len())
    }
}

/// Opaque identifier of a node on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// A handle to a differentiable value on a [`Graph`].
///
/// `Var` is `Copy`; all arithmetic builds new tape nodes. See the crate-level
/// documentation for a usage example.
#[derive(Clone, Copy)]
pub struct Var<'g, E: Element = f64> {
    pub(crate) graph: &'g Graph<E>,
    pub(crate) id: usize,
}

impl<E: Element> std::fmt::Debug for Var<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var#{}({:?})", self.id, self.value().dims())
    }
}

impl<E: Element> Graph<E> {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates an empty tape that recycles its buffers through `arena`.
    ///
    /// When the graph is dropped, every node's value and gradient buffer is
    /// handed back to the arena, and the backward seed draws from it — so a
    /// training loop that builds one tape per step with the same arena stops
    /// allocating once shapes have been seen once.
    pub fn with_arena(arena: Rc<TapeArena<E>>) -> Self {
        Graph {
            nodes: RefCell::new(Vec::new()),
            arena: Some(arena),
            tape_allocs: Cell::new(0),
        }
    }

    /// Tensor allocations made by the tape machinery itself during backward
    /// passes on this graph (gradient seeds and zero-gradient reads; the
    /// gradients produced *by* backward closures are not machinery).
    ///
    /// This is the regression surface for the clone-free backward: one
    /// backward pass costs exactly one machinery allocation (the seed), and
    /// zero when an arena hit serves the seed.
    pub fn tape_alloc_count(&self) -> usize {
        self.tape_allocs.get()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a leaf (input) value and returns its handle.
    pub fn leaf(&self, value: Tensor<E>) -> Var<'_, E> {
        let id = self.push(value, None);
        Var { graph: self, id }
    }

    /// Registers a scalar leaf.
    pub fn scalar(&self, value: E) -> Var<'_, E> {
        self.leaf(Tensor::from_scalar(value))
    }

    /// Re-creates a [`Var`] handle from a raw tape index.
    ///
    /// # Panics
    /// Panics if `index` is not a node on this tape.
    pub fn var_by_index(&self, index: usize) -> Var<'_, E> {
        assert!(index < self.len(), "var index {index} out of range");
        Var {
            graph: self,
            id: index,
        }
    }

    pub(crate) fn push(&self, value: Tensor<E>, backward: Option<BackFn<E>>) -> usize {
        yollo_obs::counter!("tensor.graph.nodes").incr();
        yollo_obs::counter!("tensor.graph.bytes")
            .add((value.numel() * std::mem::size_of::<E>()) as u64);
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            backward,
        });
        nodes.len() - 1
    }

    pub(crate) fn value_of(&self, id: usize) -> Tensor<E> {
        self.nodes.borrow()[id].value.clone()
    }

    pub(crate) fn grad_of(&self, id: usize) -> Tensor<E> {
        let dims = {
            let nodes = self.nodes.borrow();
            let node = &nodes[id];
            if let Some(g) = &node.grad {
                return g.clone();
            }
            node.value.dims().to_vec()
        };
        self.machinery_filled(&dims, E::ZERO)
    }

    /// Calls `f` with a borrow of the node's accumulated gradient (`None`
    /// before any backward pass reaches it), without cloning. This is the
    /// allocation-free read path `Binder::harvest` in `yollo-nn` uses to
    /// fold tape gradients into parameters.
    pub(crate) fn with_grad_of<R>(&self, id: usize, f: impl FnOnce(Option<&Tensor<E>>) -> R) -> R {
        f(self.nodes.borrow()[id].grad.as_ref())
    }

    /// A `value`-filled tensor created by the tape machinery: drawn from the
    /// arena when one is attached, and counted in [`Graph::tape_alloc_count`]
    /// when it had to touch the allocator.
    fn machinery_filled(&self, dims: &[usize], value: E) -> Tensor<E> {
        match &self.arena {
            Some(a) => {
                let misses = a.misses();
                let buf = a.take_filled(dims.iter().product(), value);
                if a.misses() > misses {
                    self.tape_allocs.set(self.tape_allocs.get() + 1);
                }
                Tensor::from_vec(buf, dims)
            }
            None => {
                self.tape_allocs.set(self.tape_allocs.get() + 1);
                Tensor::full(dims, value)
            }
        }
    }

    /// Runs the backward pass from node `root`, seeding its gradient with
    /// ones. Gradients accumulate across multiple `backward_from` calls on
    /// the same tape.
    pub(crate) fn backward_from(&self, root: usize) {
        let _span = yollo_obs::span!("tensor.graph.backward");
        let _lat = yollo_obs::time_hist!("tensor.graph.backward_ns");
        {
            let dims = self.nodes.borrow()[root].value.dims().to_vec();
            let seed = self.machinery_filled(&dims, E::ONE);
            accumulate(&mut self.nodes.borrow_mut()[root].grad, seed);
        }
        for id in (0..=root).rev() {
            let (grad, back) = {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[id];
                if node.grad.is_none() || node.backward.is_none() {
                    continue;
                }
                // take the accumulated grad out of its slot instead of
                // cloning it; it is restored right after the closure runs
                (
                    node.grad.take().expect("checked above"),
                    node.backward.take(),
                )
            };
            if let Some(back) = back {
                yollo_obs::counter!("tensor.graph.backward_ops").incr();
                // run outside the borrow: backward closures only capture
                // cloned tensors, never the graph itself
                let contributions = back(&grad);
                let mut nodes = self.nodes.borrow_mut();
                nodes[id].grad = Some(grad);
                for (pid, g) in contributions {
                    debug_assert!(pid < id, "tape must be topologically ordered");
                    debug_assert_eq!(
                        g.dims(),
                        nodes[pid].value.dims(),
                        "gradient shape must match value shape"
                    );
                    accumulate(&mut nodes[pid].grad, g);
                }
            }
        }
    }
}

impl<E: Element> Drop for Graph<E> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            for node in self.nodes.get_mut().drain(..) {
                arena.give(node.value.into_vec());
                if let Some(g) = node.grad {
                    arena.give(g.into_vec());
                }
            }
        }
    }
}

fn accumulate<E: Element>(slot: &mut Option<Tensor<E>>, g: Tensor<E>) {
    match slot {
        Some(acc) => acc.add_assign(&g),
        None => *slot = Some(g),
    }
}

impl<'g, E: Element> Var<'g, E> {
    /// The tape this variable lives on.
    pub fn graph(self) -> &'g Graph<E> {
        self.graph
    }

    /// Stable identifier of this variable on its tape.
    pub fn id(self) -> VarId {
        VarId(self.id)
    }

    /// Raw tape index (usable with [`Graph::var_by_index`]).
    pub fn index(self) -> usize {
        self.id
    }

    /// A clone of the node's current value.
    pub fn value(self) -> Tensor<E> {
        self.graph.value_of(self.id)
    }

    /// A clone of the node's accumulated gradient (zeros before `backward`).
    pub fn grad(self) -> Tensor<E> {
        self.graph.grad_of(self.id)
    }

    /// Borrows the node's accumulated gradient without cloning; `None` when
    /// no backward pass has reached this node yet.
    pub fn with_grad<R>(self, f: impl FnOnce(Option<&Tensor<E>>) -> R) -> R {
        self.graph.with_grad_of(self.id, f)
    }

    /// Runs reverse-mode differentiation from this node.
    ///
    /// The gradient seed is a tensor of ones with this node's shape, so for
    /// the common case of a scalar loss this computes `d loss / d leaf` for
    /// every leaf on the tape.
    pub fn backward(self) {
        self.graph.backward_from(self.id);
    }

    /// Shape of the node's value.
    pub fn dims(self) -> Vec<usize> {
        self.graph.nodes.borrow()[self.id].value.dims().to_vec()
    }

    /// Number of elements in the node's value.
    pub fn numel(self) -> usize {
        self.graph.nodes.borrow()[self.id].value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let g = Graph::new();
        let t: Tensor = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let v = g.leaf(t.clone());
        assert_eq!(v.value(), t);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn grad_is_zero_before_backward() {
        let g = Graph::new();
        let v = g.leaf(Tensor::<f64>::ones(&[3]));
        assert_eq!(v.grad().as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn chained_backward_accumulates() {
        let g = Graph::new();
        let x = g.scalar(2.0);
        let y = x.square();
        y.backward();
        assert_eq!(x.grad().scalar(), 4.0);
        // a second loss on the same tape accumulates into x.grad
        let z = x.mul_scalar(3.0);
        z.backward();
        assert_eq!(x.grad().scalar(), 7.0);
    }

    #[test]
    fn diamond_dependency_sums_gradients() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let g = Graph::new();
        let x = g.scalar(5.0);
        let y = (x * x) + x;
        y.backward();
        assert_eq!(x.grad().scalar(), 11.0);
    }

    #[test]
    fn with_grad_borrows_without_cloning() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert!(x.with_grad(|g| g.is_none()));
        x.square().sum_all().backward();
        let sum = x.with_grad(|g| g.expect("grad after backward").sum_all());
        assert_eq!(sum.scalar(), 6.0);
    }

    #[test]
    fn backward_machinery_allocates_only_the_seed() {
        // A deep chain: pre-refactor the tape cloned the incoming gradient
        // at every op, so machinery allocations grew with depth. Now the
        // whole backward pass costs exactly one (the seed), regardless of
        // how many ops are on the tape.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![1.0; 64], &[64]));
        let mut y = x;
        for _ in 0..100 {
            y = y.mul_scalar(1.01);
        }
        let loss = y.sum_all();
        assert_eq!(g.tape_alloc_count(), 0, "forward must not touch machinery");
        loss.backward();
        assert_eq!(g.tape_alloc_count(), 1, "backward allocates the seed only");
        // reading an existing grad clones but does not re-allocate zeros
        let _ = x.grad();
        assert_eq!(g.tape_alloc_count(), 1);
        // reading a grad that was never written costs one zeros tensor
        let untouched = g.leaf(Tensor::ones(&[4]));
        let _ = untouched.grad();
        assert_eq!(g.tape_alloc_count(), 2);
    }

    #[test]
    fn arena_recycles_tape_buffers_across_steps() {
        let arena = crate::TapeArena::<f64>::new();
        let run_step = || {
            let g = Graph::with_arena(arena.clone());
            let x = g.leaf(Tensor::from_vec(vec![2.0; 32], &[32]));
            let loss = x.square().sum_all();
            loss.backward();
            (x.grad().as_slice().to_vec(), g.tape_alloc_count())
        };
        let (g1, _) = run_step();
        let hits_after_first = arena.hits();
        let (g2, allocs2) = run_step();
        assert_eq!(g1, g2, "arena reuse must not change results");
        assert!(
            arena.hits() > hits_after_first,
            "second step must recycle buffers (hits {} -> {})",
            hits_after_first,
            arena.hits()
        );
        assert_eq!(allocs2, 0, "recycled seed is not a machinery allocation");
    }
}
