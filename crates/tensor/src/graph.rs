use crate::Tensor;
use std::cell::RefCell;

/// Backward function: given the gradient flowing into a node, produce
/// `(parent id, gradient contribution)` pairs.
pub(crate) type BackFn = Box<dyn FnOnce(&Tensor) -> Vec<(usize, Tensor)>>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    backward: Option<BackFn>,
}

/// A reverse-mode automatic-differentiation tape.
///
/// Every differentiable operation on a [`Var`] appends a node to the tape;
/// [`Var::backward`] replays the tape in reverse, accumulating gradients.
/// A `Graph` is intended to live for a single forward/backward pass; model
/// parameters live outside (see `yollo-nn`) and read their gradients back
/// via [`Var::grad`] after the backward pass.
///
/// `Graph` is single-threaded (`!Sync`) by design: training in this
/// reproduction is data-parallel at a higher level, never within one tape.
///
/// # Example
/// ```
/// use yollo_tensor::{Graph, Tensor};
/// let g = Graph::new();
/// let x = g.leaf(Tensor::from_scalar(3.0));
/// let y = x.square(); // y = x^2
/// y.backward();
/// assert_eq!(x.grad().scalar(), 6.0); // dy/dx = 2x
/// ```
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.borrow().len())
    }
}

/// Opaque identifier of a node on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// A handle to a differentiable value on a [`Graph`].
///
/// `Var` is `Copy`; all arithmetic builds new tape nodes. See the crate-level
/// documentation for a usage example.
#[derive(Clone, Copy)]
pub struct Var<'g> {
    pub(crate) graph: &'g Graph,
    pub(crate) id: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var#{}({:?})", self.id, self.value().dims())
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a leaf (input) value and returns its handle.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        let id = self.push(value, None);
        Var { graph: self, id }
    }

    /// Registers a scalar leaf.
    pub fn scalar(&self, value: f64) -> Var<'_> {
        self.leaf(Tensor::from_scalar(value))
    }

    /// Re-creates a [`Var`] handle from a raw tape index.
    ///
    /// # Panics
    /// Panics if `index` is not a node on this tape.
    pub fn var_by_index(&self, index: usize) -> Var<'_> {
        assert!(index < self.len(), "var index {index} out of range");
        Var {
            graph: self,
            id: index,
        }
    }

    pub(crate) fn push(&self, value: Tensor, backward: Option<BackFn>) -> usize {
        yollo_obs::counter!("tensor.graph.nodes").incr();
        yollo_obs::counter!("tensor.graph.bytes").add((value.numel() * 8) as u64);
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            backward,
        });
        nodes.len() - 1
    }

    pub(crate) fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    pub(crate) fn grad_of(&self, id: usize) -> Tensor {
        let nodes = self.nodes.borrow();
        let node = &nodes[id];
        node.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(node.value.dims()))
    }

    /// Runs the backward pass from node `root`, seeding its gradient with
    /// ones. Gradients accumulate across multiple `backward_from` calls on
    /// the same tape.
    pub(crate) fn backward_from(&self, root: usize) {
        let _span = yollo_obs::span!("tensor.graph.backward");
        let _lat = yollo_obs::time_hist!("tensor.graph.backward_ns");
        {
            let mut nodes = self.nodes.borrow_mut();
            let seed = Tensor::ones(nodes[root].value.dims());
            accumulate(&mut nodes[root].grad, seed);
        }
        for id in (0..=root).rev() {
            let (grad, back) = {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[id];
                if node.grad.is_none() || node.backward.is_none() {
                    continue;
                }
                (
                    node.grad.clone().expect("checked above"),
                    node.backward.take(),
                )
            };
            if let Some(back) = back {
                yollo_obs::counter!("tensor.graph.backward_ops").incr();
                // run outside the borrow: backward closures only capture
                // cloned tensors, never the graph itself
                let contributions = back(&grad);
                let mut nodes = self.nodes.borrow_mut();
                for (pid, g) in contributions {
                    debug_assert!(pid < id, "tape must be topologically ordered");
                    debug_assert_eq!(
                        g.dims(),
                        nodes[pid].value.dims(),
                        "gradient shape must match value shape"
                    );
                    accumulate(&mut nodes[pid].grad, g);
                }
            }
        }
    }
}

fn accumulate(slot: &mut Option<Tensor>, g: Tensor) {
    match slot {
        Some(acc) => acc.add_assign(&g),
        None => *slot = Some(g),
    }
}

impl<'g> Var<'g> {
    /// The tape this variable lives on.
    pub fn graph(self) -> &'g Graph {
        self.graph
    }

    /// Stable identifier of this variable on its tape.
    pub fn id(self) -> VarId {
        VarId(self.id)
    }

    /// Raw tape index (usable with [`Graph::var_by_index`]).
    pub fn index(self) -> usize {
        self.id
    }

    /// A clone of the node's current value.
    pub fn value(self) -> Tensor {
        self.graph.value_of(self.id)
    }

    /// A clone of the node's accumulated gradient (zeros before `backward`).
    pub fn grad(self) -> Tensor {
        self.graph.grad_of(self.id)
    }

    /// Runs reverse-mode differentiation from this node.
    ///
    /// The gradient seed is a tensor of ones with this node's shape, so for
    /// the common case of a scalar loss this computes `d loss / d leaf` for
    /// every leaf on the tape.
    pub fn backward(self) {
        self.graph.backward_from(self.id);
    }

    /// Shape of the node's value.
    pub fn dims(self) -> Vec<usize> {
        self.graph.nodes.borrow()[self.id].value.dims().to_vec()
    }

    /// Number of elements in the node's value.
    pub fn numel(self) -> usize {
        self.graph.nodes.borrow()[self.id].value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let g = Graph::new();
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let v = g.leaf(t.clone());
        assert_eq!(v.value(), t);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn grad_is_zero_before_backward() {
        let g = Graph::new();
        let v = g.leaf(Tensor::ones(&[3]));
        assert_eq!(v.grad().as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn chained_backward_accumulates() {
        let g = Graph::new();
        let x = g.scalar(2.0);
        let y = x.square();
        y.backward();
        assert_eq!(x.grad().scalar(), 4.0);
        // a second loss on the same tape accumulates into x.grad
        let z = x.mul_scalar(3.0);
        z.backward();
        assert_eq!(x.grad().scalar(), 7.0);
    }

    #[test]
    fn diamond_dependency_sums_gradients() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let g = Graph::new();
        let x = g.scalar(5.0);
        let y = (x * x) + x;
        y.backward();
        assert_eq!(x.grad().scalar(), 11.0);
    }
}
