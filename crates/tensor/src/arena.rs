//! Buffer recycling for the autodiff tape.
//!
//! A training loop builds and drops one [`crate::Graph`] per step, and every
//! node on that tape owns at least one heap buffer (its value, plus a
//! gradient once backward has run). The shapes repeat exactly from step to
//! step, so instead of returning those buffers to the allocator a [`Graph`]
//! created with [`crate::Graph::with_arena`] hands them back to a
//! [`TapeArena`] on drop, and the next step's tape draws from the pool.
//!
//! The arena is deliberately simple: a per-length free list with a global
//! element budget. It is single-threaded (`Rc` + `RefCell`), like the tape
//! itself — in data-parallel training every worker thread owns a private
//! arena alongside its private tape.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::Element;

/// Pooled buffers kept per distinct length.
const MAX_PER_LEN: usize = 64;

/// Total pooled elements across all lengths (8 Mi elements; 64 MiB at f64).
const MAX_TOTAL_ELEMS: usize = 8 << 20;

/// A free list of `Vec<E>` buffers, keyed by exact length.
///
/// `take_zeroed` / `take_filled` pop and re-initialise a pooled buffer (a
/// *hit*) or fall back to a fresh allocation (a *miss*); [`TapeArena::give`]
/// returns a buffer to the pool, dropping it instead when the per-length or
/// total budget is full. Hit/miss counts are exposed for tests and probes.
pub struct TapeArena<E: Element = f64> {
    pools: RefCell<HashMap<usize, Vec<Vec<E>>>>,
    pooled_elems: Cell<usize>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<E: Element> Default for TapeArena<E> {
    fn default() -> Self {
        TapeArena {
            pools: RefCell::new(HashMap::new()),
            pooled_elems: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }
}

impl<E: Element> TapeArena<E> {
    /// Creates an empty arena behind the `Rc` handle [`crate::Graph`] wants.
    pub fn new() -> Rc<TapeArena<E>> {
        Rc::new(TapeArena::default())
    }

    /// A buffer of `len` zeros, recycled when the pool has one.
    pub fn take_zeroed(&self, len: usize) -> Vec<E> {
        self.take_filled(len, E::ZERO)
    }

    /// A buffer of `len` copies of `value`, recycled when the pool has one.
    pub fn take_filled(&self, len: usize, value: E) -> Vec<E> {
        let pooled = self.pools.borrow_mut().get_mut(&len).and_then(Vec::pop);
        match pooled {
            Some(mut buf) => {
                self.pooled_elems.set(self.pooled_elems.get() - len);
                self.hits.set(self.hits.get() + 1);
                yollo_obs::counter!("tensor.arena.hits").incr();
                buf.fill(value);
                buf
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                yollo_obs::counter!("tensor.arena.misses").incr();
                vec![value; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse. Zero-length buffers and
    /// buffers over budget are dropped instead.
    pub fn give(&self, buf: Vec<E>) {
        let len = buf.len();
        if len == 0 || self.pooled_elems.get() + len > MAX_TOTAL_ELEMS {
            return;
        }
        let mut pools = self.pools.borrow_mut();
        let pool = pools.entry(len).or_default();
        if pool.len() >= MAX_PER_LEN {
            return;
        }
        pool.push(buf);
        self.pooled_elems.set(self.pooled_elems.get() + len);
    }

    /// Buffers served from the pool so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Buffers that had to be freshly allocated so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Elements currently parked in the pool.
    pub fn pooled_elems(&self) -> usize {
        self.pooled_elems.get()
    }
}

impl<E: Element> std::fmt::Debug for TapeArena<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TapeArena({} elems pooled, {} hits / {} misses)",
            self.pooled_elems.get(),
            self.hits.get(),
            self.misses.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_matching_lengths() {
        let a = TapeArena::<f64>::new();
        let b1 = a.take_zeroed(16);
        assert_eq!((a.hits(), a.misses()), (0, 1));
        a.give(b1);
        assert_eq!(a.pooled_elems(), 16);
        let b2 = a.take_filled(16, 1.5);
        assert_eq!((a.hits(), a.misses()), (1, 1));
        assert_eq!(b2, vec![1.5; 16]);
        assert_eq!(a.pooled_elems(), 0);
        // different length misses
        let _ = a.take_zeroed(8);
        assert_eq!((a.hits(), a.misses()), (1, 2));
    }

    #[test]
    fn reused_buffers_come_back_zeroed() {
        let a = TapeArena::<f64>::new();
        let mut b = a.take_zeroed(4);
        b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.give(b);
        assert_eq!(a.take_zeroed(4), vec![0.0; 4]);
    }

    #[test]
    fn budget_caps_are_enforced() {
        let a = TapeArena::<f64>::new();
        a.give(Vec::new()); // zero-length is dropped
        assert_eq!(a.pooled_elems(), 0);
        for _ in 0..(MAX_PER_LEN + 10) {
            a.give(vec![0.0; 2]);
        }
        assert_eq!(a.pooled_elems(), MAX_PER_LEN * 2);
        // a buffer that would blow the total budget is dropped, not pooled
        a.give(vec![0.0; MAX_TOTAL_ELEMS]);
        assert_eq!(a.pooled_elems(), MAX_PER_LEN * 2);
    }
}
