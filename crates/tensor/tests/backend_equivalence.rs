//! Property tests pinning the blocked/parallel compute paths to the naive
//! reference kernels.
//!
//! The contract: for every shape — including awkward non-multiples of the
//! block sizes — and every thread count (1 forces the serial path),
//! `matmul_blocked` / `Tensor::matmul` / the parallel im2col and
//! elementwise paths agree with an independent naive implementation to
//! within summation-reordering tolerance (and bitwise where the op does
//! not reorder sums).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yollo_tensor::{
    col2im, conv2d_forward, im2col, im2col_into, matmul_blocked, matmul_blocked_batched,
    matmul_naive, parallel, Conv2dSpec, ConvScratch, Tensor,
};

fn randn_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[len.max(1)], &mut rng).into_vec()[..len].to_vec()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Tolerance scaled to the dot-product length: blocked summation reorders
/// additions, so exact equality only holds for tiny k.
fn matmul_tol(k: usize) -> f64 {
    1e-12 * (k as f64 + 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..80,
        k in 1usize..140,
        n in 1usize..90,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = randn_vec(m * k, seed);
        let b = randn_vec(k * n, seed ^ 0x9e37);
        let mut naive = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut naive, m, k, n);
        let mut blocked = vec![0.0; m * n];
        matmul_blocked(&a, &b, &mut blocked, m, k, n, threads);
        prop_assert!(max_abs_diff(&naive, &blocked) < matmul_tol(k));
    }

    /// Shapes straddling the MC=64 / KC=128 / NC=256 block edges, where an
    /// off-by-one in remainder handling would hide from small random shapes.
    #[test]
    fn blocked_matmul_at_block_edges(
        dm in 0usize..3, dk in 0usize..3, dn in 0usize..3,
        threads in 1usize..4,
    ) {
        let (m, k, n) = (63 + dm, 127 + dk, 255 + dn);
        let a = randn_vec(m * k, 7);
        let b = randn_vec(k * n, 8);
        let mut naive = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut naive, m, k, n);
        let mut blocked = vec![0.0; m * n];
        matmul_blocked(&a, &b, &mut blocked, m, k, n, threads);
        prop_assert!(max_abs_diff(&naive, &blocked) < matmul_tol(k));
    }

    #[test]
    fn tensor_matmul_matches_naive_2d(
        m in 1usize..40,
        k in 1usize..60,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let y = a.matmul(&b);
        let mut naive = vec![0.0; m * n];
        matmul_naive(a.as_slice(), b.as_slice(), &mut naive, m, k, n);
        prop_assert!(max_abs_diff(y.as_slice(), &naive) < matmul_tol(k));
    }

    #[test]
    fn batched_matmul_matches_naive(
        bt in 1usize..6,
        m in 1usize..20,
        k in 1usize..30,
        n in 1usize..20,
        shared_rhs in proptest::bool::ANY,
        threads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a = randn_vec(bt * m * k, seed);
        let blen = if shared_rhs { k * n } else { bt * k * n };
        let b = randn_vec(blen, seed ^ 0x51f2);
        let mut naive = vec![0.0; bt * m * n];
        for bi in 0..bt {
            let boff = if shared_rhs { 0 } else { bi * k * n };
            matmul_naive(
                &a[bi * m * k..(bi + 1) * m * k],
                &b[boff..boff + k * n],
                &mut naive[bi * m * n..(bi + 1) * m * n],
                m, k, n,
            );
        }
        let mut blocked = vec![0.0; bt * m * n];
        matmul_blocked_batched(&a, &b, &mut blocked, bt, m, k, n, !shared_rhs, threads);
        prop_assert!(max_abs_diff(&naive, &blocked) < matmul_tol(k));
    }

    /// im2col against an independent per-element naive unfold, plus the
    /// `_into` buffer-reuse variant.
    #[test]
    fn im2col_matches_naive_unfold(
        nb in 1usize..3, c in 1usize..4,
        h in 2usize..8, w in 2usize..8,
        kh in 1usize..4, kw in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= kh && w + 2 * pad >= kw);
        let spec = Conv2dSpec { stride, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[nb, c, h, w], &mut rng);
        let cols = im2col(&x, kh, kw, spec);

        // independent naive unfold, written directly from the definition
        let (oh, ow) = spec.output_hw(h, w, kh, kw);
        let xs = x.as_slice();
        let mut naive = vec![0.0; nb * c * kh * kw * oh * ow];
        let mut idx = 0;
        for b in 0..nb {
            for ch in 0..c {
                for ki in 0..kh {
                    for kj in 0..kw {
                        for i in 0..oh {
                            for j in 0..ow {
                                let y = (i * stride + ki) as isize - pad as isize;
                                let xc = (j * stride + kj) as isize - pad as isize;
                                naive[idx] = if y >= 0 && (y as usize) < h
                                    && xc >= 0 && (xc as usize) < w
                                {
                                    xs[((b * c + ch) * h + y as usize) * w + xc as usize]
                                } else {
                                    0.0
                                };
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }
        // unfold moves data without arithmetic: must be bitwise equal
        prop_assert_eq!(cols.as_slice(), &naive[..]);
        prop_assert_eq!(cols.dims(), &[nb, c * kh * kw, oh * ow]);

        let mut buf = vec![1.0; 3]; // non-empty: _into must clear stale data
        let dims = im2col_into(&x, kh, kw, spec, &mut buf);
        prop_assert_eq!(&dims[..], cols.dims());
        prop_assert_eq!(&buf[..], cols.as_slice());
    }

    /// col2im adjoint identity over random shapes — exercises the parallel
    /// fold path and pins it to im2col (any indexing drift breaks the
    /// inner-product identity).
    #[test]
    fn col2im_adjoint_identity(
        c in 1usize..4, h in 2usize..8, w in 2usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let spec = Conv2dSpec { stride, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Tensor = Tensor::randn(&[2, c, h, w], &mut rng);
        let cx = im2col(&x, k, k, spec);
        let y = Tensor::randn(cx.dims(), &mut rng);
        let lhs: f64 = cx.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, x.dims(), k, k, spec);
        let rhs: f64 = x.as_slice().iter().zip(folded.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{} vs {}", lhs, rhs);
    }

    /// Graph-free scratch conv equals the naive direct convolution sum.
    #[test]
    fn conv2d_forward_matches_direct_convolution(
        c in 1usize..3, o in 1usize..3,
        h in 3usize..7, w in 3usize..7,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let spec = Conv2dSpec { stride, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Tensor = Tensor::randn(&[2, c, h, w], &mut rng);
        let wt = Tensor::randn(&[o, c, k, k], &mut rng);
        let mut scratch = ConvScratch::new();
        let got = conv2d_forward(&x, &wt, spec, &mut scratch);

        let (oh, ow) = spec.output_hw(h, w, k, k);
        let xs = x.as_slice();
        let ws = wt.as_slice();
        for b in 0..2 {
            for oc in 0..o {
                for i in 0..oh {
                    for j in 0..ow {
                        let mut acc = 0.0;
                        for ch in 0..c {
                            for ki in 0..k {
                                for kj in 0..k {
                                    let y = (i * stride + ki) as isize - pad as isize;
                                    let xc = (j * stride + kj) as isize - pad as isize;
                                    if y >= 0 && (y as usize) < h && xc >= 0 && (xc as usize) < w {
                                        acc += xs[((b * c + ch) * h + y as usize) * w + xc as usize]
                                            * ws[((oc * c + ch) * k + ki) * k + kj];
                                    }
                                }
                            }
                        }
                        let diff = (got.at(&[b, oc, i, j]) - acc).abs();
                        prop_assert!(diff < 1e-10, "at [{},{},{},{}]: {}", b, oc, i, j, diff);
                    }
                }
            }
        }
    }

    /// Elementwise map/zip/reduction parallel paths agree with a serial
    /// scalar loop even above the fan-out threshold.
    #[test]
    fn elementwise_parallel_matches_serial(seed in 0u64..200) {
        // comfortably above PAR_ELEMWISE_MIN so the pool engages when
        // more than one hardware thread is available
        let n = parallel::PAR_ELEMWISE_MIN + 4321;
        let data = randn_vec(n, seed);
        let t = Tensor::from_vec(data.clone(), &[n]);

        let mapped = t.map(|v| v * 2.0 + 1.0);
        for (got, want) in mapped.as_slice().iter().zip(&data) {
            prop_assert_eq!(*got, *want * 2.0 + 1.0);
        }

        let u = Tensor::from_vec(randn_vec(n, seed ^ 0xabcd), &[n]);
        let zipped = t.zip_broadcast(&u, |a, b| a * b);
        for ((got, a), b) in zipped.as_slice().iter().zip(&data).zip(u.as_slice()) {
            prop_assert_eq!(*got, *a * *b);
        }

        // parallel fold reorders additions: compare against a band-ordered
        // serial sum with tolerance
        let serial: f64 = data.iter().sum();
        let total = t.sum_all().scalar();
        prop_assert!((total - serial).abs() < 1e-9 * (n as f64));
    }
}

// --- cross-dtype equivalence: the f32 fast path against the f64 oracle ---
//
// The f64 instantiation is the bitwise reference; the f32 one is the serve
// fast path. They cannot agree bitwise, but the drift is bounded by the
// standard forward-error analysis of a length-r reduction: with unit
// roundoff u = f32::EPSILON / 2,
//
//   |fl(Σ a_i b_i) - Σ a_i b_i|  ≤  γ_{r+2} · Σ |a_i||b_i|,
//   γ_n = n·u / (1 - n·u)
//
// (the +2 absorbs the per-operand cast rounding). The tests compute the
// condition sum Σ|a||b| in f64 and assert the observed drift stays under a
// small multiple of that bound — principled, not a magic epsilon.

/// γ-style bound for a length-`r` f32 reduction with condition sum `cond`.
fn f32_reduction_bound(r: usize, cond: f64) -> f64 {
    let u = (f32::EPSILON as f64) / 2.0;
    let n = (r + 2) as f64;
    let gamma = n * u / (1.0 - n * u);
    // 4x headroom: blocked kernels reorder sums, which changes the error
    // term but not its order of magnitude
    4.0 * gamma * cond + 1e-12
}

fn to_f32_vec(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn f32_matmul_tracks_f64_oracle(
        m in 1usize..48,
        k in 1usize..160,
        n in 1usize..48,
        threads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a = randn_vec(m * k, seed);
        let b = randn_vec(k * n, seed ^ 0x77aa);
        let mut oracle = vec![0.0f64; m * n];
        matmul_naive(&a, &b, &mut oracle, m, k, n);

        let (a32, b32) = (to_f32_vec(&a), to_f32_vec(&b));
        let mut fast = vec![0.0f32; m * n];
        matmul_blocked(&a32, &b32, &mut fast, m, k, n, threads);

        for i in 0..m {
            for j in 0..n {
                let cond: f64 = (0..k)
                    .map(|p| (a[i * k + p] * b[p * n + j]).abs())
                    .sum();
                let diff = (fast[i * n + j] as f64 - oracle[i * n + j]).abs();
                let bound = f32_reduction_bound(k, cond);
                prop_assert!(
                    diff <= bound,
                    "[{},{}]: |{} - {}| = {diff:.3e} > {bound:.3e}",
                    i, j, fast[i * n + j], oracle[i * n + j]
                );
            }
        }
    }

    #[test]
    fn f32_conv2d_forward_tracks_f64_oracle(
        c in 1usize..4, o in 1usize..4,
        h in 3usize..9, w in 3usize..9,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let spec = Conv2dSpec { stride, pad };
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Tensor = Tensor::randn(&[2, c, h, w], &mut rng);
        let wt: Tensor = Tensor::randn(&[o, c, k, k], &mut rng);
        let mut scratch = ConvScratch::new();
        let oracle = conv2d_forward(&x, &wt, spec, &mut scratch);

        let x32: Tensor<f32> = x.cast();
        let w32: Tensor<f32> = wt.cast();
        let mut scratch32 = ConvScratch::new();
        let fast = conv2d_forward(&x32, &w32, spec, &mut scratch32);
        prop_assert_eq!(fast.dims(), oracle.dims());

        let (oh, ow) = spec.output_hw(h, w, k, k);
        let xs = x.as_slice();
        let ws = wt.as_slice();
        let red = c * k * k;
        for b in 0..2 {
            for oc in 0..o {
                for i in 0..oh {
                    for j in 0..ow {
                        // condition sum Σ|x||w| over this output's receptive field
                        let mut cond = 0.0f64;
                        for ch in 0..c {
                            for ki in 0..k {
                                for kj in 0..k {
                                    let y = (i * stride + ki) as isize - pad as isize;
                                    let xc = (j * stride + kj) as isize - pad as isize;
                                    if y >= 0 && (y as usize) < h && xc >= 0 && (xc as usize) < w {
                                        cond += (xs
                                            [((b * c + ch) * h + y as usize) * w + xc as usize]
                                            * ws[((oc * c + ch) * k + ki) * k + kj])
                                            .abs();
                                    }
                                }
                            }
                        }
                        let diff =
                            (fast.at(&[b, oc, i, j]) as f64 - oracle.at(&[b, oc, i, j])).abs();
                        let bound = f32_reduction_bound(red, cond);
                        prop_assert!(
                            diff <= bound,
                            "at [{},{},{},{}]: {diff:.3e} > {bound:.3e}", b, oc, i, j
                        );
                    }
                }
            }
        }
    }

    /// Fixed-block parallel reductions: `sum_all` in f32 stays within the
    /// γ-bound of the f64 oracle sum (and the f64 path itself is bitwise
    /// deterministic, covered elsewhere).
    #[test]
    fn f32_reductions_track_f64_oracle(seed in 0u64..200) {
        let n = parallel::PAR_ELEMWISE_MIN + 999;
        let data = randn_vec(n, seed);
        let t64 = Tensor::from_vec(data.clone(), &[n]);
        let t32: Tensor<f32> = t64.cast();

        let oracle = t64.sum_all().scalar();
        let fast = t32.sum_all().scalar() as f64;
        let cond: f64 = data.iter().map(|v| v.abs()).sum();
        let bound = f32_reduction_bound(n, cond);
        prop_assert!(
            (fast - oracle).abs() <= bound,
            "sum_all: |{fast} - {oracle}| > {bound:.3e}"
        );

        let mean_oracle = t64.mean_all().scalar();
        let mean_fast = t32.mean_all().scalar() as f64;
        prop_assert!(
            (mean_fast - mean_oracle).abs() <= bound / n as f64 + 1e-7,
            "mean_all: |{mean_fast} - {mean_oracle}|"
        );
    }
}

/// The explicit-width kernel entry points are what `YOLLO_THREADS` feeds
/// (via `parallel::num_threads`); width 1 must take the serial path and
/// agree with the reference, and widening the pool must not change bits.
/// (The override itself is exercised through the pure parser — setting the
/// process env var here would race other test threads.)
#[test]
fn yollo_threads_one_is_serial_and_correct() {
    assert_eq!(parallel::parse_thread_override(Some("1")), Some(1));
    let (m, k, n) = (70, 150, 65);
    let a = randn_vec(m * k, 42);
    let b = randn_vec(k * n, 43);
    let mut naive = vec![0.0; m * n];
    matmul_naive(&a, &b, &mut naive, m, k, n);
    let mut one = vec![0.0; m * n];
    matmul_blocked(&a, &b, &mut one, m, k, n, 1);
    let mut many = vec![0.0; m * n];
    matmul_blocked(&a, &b, &mut many, m, k, n, 4);
    assert!(max_abs_diff(&naive, &one) < 1e-10);
    // each row band is computed by the same serial kernel regardless of
    // the pool width, so thread count never changes the bits
    assert_eq!(one, many);
}
