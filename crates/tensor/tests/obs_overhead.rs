//! Guard: with the `obs` feature compiled out, the instrumented
//! [`Tensor::matmul`] entry point must not be measurably slower than
//! calling the underlying blocked kernel directly — every probe must have
//! compiled down to a no-op.
//!
//! Build/run with `cargo test -p yollo-tensor --no-default-features`; under
//! the default features this whole file is compiled out (timing the enabled
//! probes is the profiler's job, not a pass/fail gate).
#![cfg(not(feature = "obs"))]

use std::time::Instant;
use yollo_tensor::{matmul_blocked, Tensor};

/// 64×256×64 = 2^20 MACs, below `PAR_MATMUL_MIN_FLOPS` (2^21), so both the
/// instrumented path and the reference stay on the serial kernel and the
/// comparison never races the thread pool.
const M: usize = 64;
const K: usize = 256;
const N: usize = 64;

fn inputs() -> (Tensor, Tensor) {
    let a = Tensor::from_fn(&[M, K], |i| (i % 17) as f64 * 0.25 - 2.0);
    let b = Tensor::from_fn(&[K, N], |i| (i % 13) as f64 * 0.5 - 3.0);
    (a, b)
}

/// Best-of-`reps` wall time of `f` in nanoseconds, after `warmup` calls.
fn best_of(reps: usize, warmup: usize, mut f: impl FnMut() -> Tensor) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

#[test]
fn compiled_out_probes_add_no_matmul_overhead() {
    let (a, b) = inputs();

    let instr = best_of(30, 5, || a.matmul(&b));
    let reference = best_of(30, 5, || {
        let mut out = vec![0.0; M * N];
        matmul_blocked(a.as_slice(), b.as_slice(), &mut out, M, K, N, 1);
        Tensor::from_vec(out, &[M, N])
    });

    // identical math either way
    let via_api = a.matmul(&b);
    let mut direct = vec![0.0; M * N];
    matmul_blocked(a.as_slice(), b.as_slice(), &mut direct, M, K, N, 1);
    assert_eq!(via_api.as_slice(), &direct[..]);

    // <2% relative overhead, plus a 20µs absolute slack so scheduler noise
    // on a fast machine cannot flake the ratio
    let limit = reference + reference / 50 + 20_000;
    assert!(
        instr <= limit,
        "instrumented matmul too slow with obs compiled out: \
         {instr}ns vs reference {reference}ns (limit {limit}ns)"
    );
}

#[test]
fn compiled_out_obs_records_nothing() {
    let (a, b) = inputs();
    yollo_obs::set_enabled(true); // must be a no-op without the feature
    assert!(!yollo_obs::enabled());
    let _ = a.matmul(&b);
    let snap = yollo_obs::registry().snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(yollo_obs::drain_spans().is_empty());
}
