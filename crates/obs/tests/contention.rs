//! Ring-buffer drain under contention: many threads emitting spans while a
//! drainer runs concurrently must lose nothing unaccounted (ring overflow
//! is allowed but must be counted in `obs.spans.dropped`) and produce a
//! trace that is well-formed JSON with no interleaved or torn records.

#![cfg(feature = "enabled")]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 5_000;

#[test]
fn concurrent_spans_drain_to_well_formed_trace() {
    yollo_obs::set_enabled(true);
    let done = AtomicBool::new(false);
    let collected: Mutex<Vec<yollo_obs::SpanEvent>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let emitters: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    for i in 0..SPANS_PER_THREAD {
                        let _outer = yollo_obs::span_owned(format!("contention.{t}.{i}"));
                        let _inner = yollo_obs::span!("contention.inner");
                    }
                })
            })
            .collect();
        // drain concurrently with the emitters to stress take() vs push()
        let drainer = scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                let events = yollo_obs::drain_spans();
                if !events.is_empty() {
                    collected.lock().unwrap().extend(events);
                }
                std::thread::yield_now();
            }
        });
        for h in emitters {
            h.join().expect("emitter thread panicked");
        }
        done.store(true, Ordering::Relaxed);
        drainer.join().expect("drainer thread panicked");
    });
    let mut events = collected.into_inner().unwrap();
    events.extend(yollo_obs::drain_spans());
    let events: Vec<yollo_obs::SpanEvent> = events
        .into_iter()
        .filter(|e| e.name.starts_with("contention."))
        .collect();

    // Nothing lost *silently*: rings overwrite their oldest events when a
    // starved drainer lets them fill (by design — bounded memory), but every
    // overwrite must be accounted for in `obs.spans.dropped`. Collected
    // events plus the drop counter must equal exactly what was emitted.
    let dropped = yollo_obs::registry()
        .snapshot()
        .counter("obs.spans.dropped")
        .unwrap_or(0) as usize;
    assert_eq!(
        events.len() + dropped,
        2 * THREADS * SPANS_PER_THREAD,
        "collected + dropped must account for every emitted span ({dropped} dropped)"
    );

    // nothing duplicated: every collected outer name is a valid
    // (thread, index) pair and appears at most once
    let valid: HashSet<String> = (0..THREADS)
        .flat_map(|t| (0..SPANS_PER_THREAD).map(move |i| format!("contention.{t}.{i}")))
        .collect();
    let outer_names: Vec<&str> = events
        .iter()
        .filter(|e| e.name != "contention.inner")
        .map(|e| e.name.as_ref())
        .collect();
    let unique: HashSet<&str> = outer_names.iter().copied().collect();
    assert_eq!(unique.len(), outer_names.len(), "duplicated span records");
    for name in &outer_names {
        assert!(
            valid.contains(*name),
            "torn or corrupted span name {name:?}"
        );
    }
    let inner_count = events
        .iter()
        .filter(|e| e.name == "contention.inner")
        .count();
    assert!(
        inner_count <= THREADS * SPANS_PER_THREAD,
        "duplicated inner spans"
    );

    // no torn records: ids unique, parentage coherent and thread-local
    let mut by_id: HashMap<u64, &yollo_obs::SpanEvent> = HashMap::new();
    for e in &events {
        assert!(e.id > 0, "span id must be positive");
        assert!(e.tid > 0, "thread id must be positive");
        assert!(
            by_id.insert(e.id, e).is_none(),
            "duplicate span id {}",
            e.id
        );
    }
    for e in events.iter().filter(|e| e.name == "contention.inner") {
        // an inner's parent may itself have been overwritten, but only if
        // the rings actually overflowed
        let parent = match by_id.get(&e.parent) {
            Some(p) => p,
            None if dropped > 0 => continue,
            None => panic!("inner span's parent lost without a counted drop"),
        };
        assert!(
            parent.name != "contention.inner",
            "inner span parented by another inner span"
        );
        assert_eq!(parent.tid, e.tid, "parent must be on the same thread");
    }

    // the serialised trace parses as one JSON document with object events
    let dir = std::env::temp_dir().join("yollo_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    // pid-unique name: concurrent invocations must not clobber each other
    let path = dir.join(format!("trace_contention.{}.json", std::process::id()));
    yollo_obs::write_chrome_trace(&path, &events).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let arr = parsed.as_array().expect("top-level JSON array");
    assert_eq!(arr.len(), events.len());
    for ev in arr {
        assert!(ev["name"].is_string());
        assert_eq!(ev["ph"], "X");
        assert!(ev["ts"].is_number());
        assert!(ev["dur"].is_number());
        assert!(ev["tid"].is_number());
    }
    std::fs::remove_file(path).ok();
}
