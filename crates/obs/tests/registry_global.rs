//! Global registry lifecycle: record → snapshot → reset. This lives in its
//! own integration test (= its own process) and in one test function,
//! because `Registry::reset` zeroes every metric process-wide and would
//! race with any parallel test that records.

#![cfg(feature = "enabled")]

#[test]
fn snapshot_reflects_recordings_and_reset_zeroes_them() {
    yollo_obs::set_enabled(true);

    yollo_obs::counter!("lifecycle.calls").add(7);
    yollo_obs::gauge!("lifecycle.value").set(2.5);
    let h = yollo_obs::histogram!("lifecycle.latency_ns");
    h.record(1_000);
    h.record(3_000);

    let snap = yollo_obs::registry().snapshot();
    assert_eq!(snap.counter("lifecycle.calls"), Some(7));
    assert_eq!(snap.gauge("lifecycle.value"), Some(2.5));
    let hs = snap.histogram("lifecycle.latency_ns").expect("registered");
    assert_eq!(hs.count, 2);
    assert_eq!(hs.sum, 4_000);
    // the median observation is 1000; quantiles are bucket-mids, exact to
    // within a factor of two (1000 → bucket [512, 1024), mid 768)
    assert!(hs.p50 >= 500 && hs.p50 <= 2_000, "p50 = {}", hs.p50);
    assert!(snap.counter("lifecycle.absent").is_none());

    let json: serde_json::Value =
        serde_json::from_str(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(json["counters"]["lifecycle.calls"], 7);
    assert_eq!(json["histograms"]["lifecycle.latency_ns"]["count"], 2);

    yollo_obs::registry().reset();
    let snap = yollo_obs::registry().snapshot();
    assert_eq!(
        snap.counter("lifecycle.calls"),
        Some(0),
        "handles survive reset"
    );
    assert_eq!(snap.gauge("lifecycle.value"), Some(0.0));
    assert_eq!(snap.histogram("lifecycle.latency_ns").unwrap().count, 0);

    // handles stay usable after reset
    yollo_obs::counter!("lifecycle.calls").incr();
    assert_eq!(
        yollo_obs::registry().snapshot().counter("lifecycle.calls"),
        Some(1)
    );
}
