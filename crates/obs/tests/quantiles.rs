//! Histogram quantile correctness: ordering properties over arbitrary
//! samples, and exact nearest-rank answers on hand-computed samples at
//! log2-bucket boundaries.
//!
//! The contract under test (see `Histogram::quantile`): the `q`-quantile
//! is the representative value (geometric bucket middle) of the bucket
//! containing the nearest-rank element — rank `max(1, ceil(q * count))`
//! of the sorted sample.

#![cfg(feature = "enabled")]

use proptest::prelude::*;
use yollo_obs::Histogram;

/// The histogram's bucket index for `v` (0 and 1 share bucket 0).
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize
    }
}

/// The representative value of bucket `i`: the geometric middle of
/// `[2^i, 2^(i+1))`, i.e. `2^i + 2^(i-1)`, capped to stay in `u64`.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 63 {
        u64::MAX / 2 + 1
    } else {
        (1u64 << i) + (1u64 << (i - 1))
    }
}

/// The exact value `quantile(q)` must return for `sample`: the bucket
/// middle of the nearest-rank element.
fn expected_quantile(sample: &[u64], q: f64) -> u64 {
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    bucket_mid(bucket_of(sorted[target - 1]))
}

fn hist_of(sample: &[u64]) -> Histogram {
    yollo_obs::set_enabled(true);
    let h = Histogram::new();
    for &v in sample {
        h.record(v);
    }
    h
}

proptest! {
    /// p50 ≤ p95 ≤ p99 ≤ max for any sample — quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone(sample in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = hist_of(&sample);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        let p100 = h.quantile(1.0);
        prop_assert!(p50 <= p95, "p50={p50} > p95={p95}");
        prop_assert!(p95 <= p99, "p95={p95} > p99={p99}");
        prop_assert!(p99 <= p100, "p99={p99} > p100={p100}");
    }

    /// Every quantile equals the bucket middle of the nearest-rank
    /// element — the log2-bucket approximation is exactly characterised.
    #[test]
    fn quantiles_match_nearest_rank(
        sample in prop::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&sample);
        prop_assert_eq!(h.quantile(q), expected_quantile(&sample, q));
    }

    /// The bucket middle is within a factor of two of the true
    /// nearest-rank element (the histogram's accuracy guarantee).
    #[test]
    fn quantile_within_factor_two_of_true_value(
        sample in prop::collection::vec(1u64..u64::MAX / 2, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = hist_of(&sample);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let truth = sorted[target - 1];
        let got = h.quantile(q);
        prop_assert!(got <= truth.saturating_mul(2), "got={got} truth={truth}");
        prop_assert!(got >= truth / 2, "got={got} truth={truth}");
    }
}

#[test]
fn hand_computed_nearest_rank_at_bucket_boundaries() {
    // [1, 2, 3, 4] spans buckets 0 ({1}), 1 ({2, 3}) and 2 ({4}).
    let h = hist_of(&[1, 2, 3, 4]);
    // rank 1 → 1 → bucket 0 → mid 1
    assert_eq!(h.quantile(0.25), 1);
    // rank 2 → 2 → bucket 1 → mid 2 + 1 = 3
    assert_eq!(h.quantile(0.50), 3);
    // rank 3 → 3 → bucket 1 → mid 3
    assert_eq!(h.quantile(0.75), 3);
    // rank 4 → 4 → bucket 2 → mid 4 + 2 = 6
    assert_eq!(h.quantile(1.0), 6);
    // q = 0 still answers with the minimum's bucket (rank clamps to 1)
    assert_eq!(h.quantile(0.0), 1);

    // Adjacent values straddling the 2^10 boundary land in different
    // buckets: 1023 → bucket 9 (mid 768), 1024 → bucket 10 (mid 1536).
    let h = hist_of(&[1023, 1024]);
    assert_eq!(h.quantile(0.5), 768);
    assert_eq!(h.quantile(1.0), 1536);

    // 0 and 1 share bucket 0, whose representative is 1.
    let h = hist_of(&[0]);
    assert_eq!(h.quantile(0.5), 1);

    // The top bucket caps its representative inside u64.
    let h = hist_of(&[u64::MAX]);
    assert_eq!(h.quantile(1.0), u64::MAX / 2 + 1);

    // Empty histogram answers 0 for every quantile.
    let h = Histogram::new();
    assert_eq!(h.quantile(0.5), 0);
    assert_eq!(h.quantile(0.99), 0);
}
