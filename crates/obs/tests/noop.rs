//! Compiled-out behaviour: with the `enabled` feature off (build with
//! `--no-default-features`) every recording call must be an inert no-op —
//! no registration, no accumulation, no span events.

#![cfg(not(feature = "enabled"))]

#[test]
fn enabled_is_false_and_cannot_be_turned_on() {
    assert!(!yollo_obs::enabled());
    yollo_obs::set_enabled(true);
    assert!(!yollo_obs::enabled());
}

#[test]
fn metrics_do_not_record() {
    let c = yollo_obs::counter!("noop.counter");
    c.add(5);
    c.incr();
    assert_eq!(c.get(), 0);

    let g = yollo_obs::gauge!("noop.gauge");
    g.set(3.5);
    assert_eq!(g.get(), 0.0);

    let h = yollo_obs::histogram!("noop.hist_ns");
    h.record(123);
    {
        let _t = yollo_obs::time_hist!("noop.hist_ns");
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.quantile(0.5), 0);
}

#[test]
fn registry_hands_out_shared_noop_handles_and_empty_snapshots() {
    let a = yollo_obs::registry().counter("noop.a");
    let b = yollo_obs::registry().counter("noop.b");
    assert!(std::ptr::eq(a, b), "feature-off counters share one no-op");

    let snap = yollo_obs::registry().snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    yollo_obs::registry().reset();
}

#[test]
fn spans_record_nothing() {
    {
        let _a = yollo_obs::span!("noop.outer");
        let _b = yollo_obs::span_owned("noop.inner".to_owned());
        let _c = yollo_obs::span_dyn("noop.dyn");
    }
    assert!(yollo_obs::drain_spans().is_empty());
    assert_eq!(yollo_obs::now_ns(), 0);
}
