//! Ring-buffer overflow must surface in the trace file, not vanish.
//!
//! This lives in its own integration-test binary (own process) because
//! the drop accounting is global: any concurrent `write_chrome_trace`
//! call would consume the counter out from under the assertions.

#![cfg(feature = "enabled")]

use yollo_obs::{drain_spans, span_owned, take_dropped_spans, write_chrome_trace, RING_CAPACITY};

#[test]
fn overflow_drops_become_a_metadata_event() {
    yollo_obs::set_enabled(true);
    assert_eq!(take_dropped_spans(), 0, "fresh process starts clean");

    // Overfill this thread's ring by exactly 10 spans.
    for i in 0..RING_CAPACITY + 10 {
        drop(span_owned(format!("drop.meta.{i}")));
    }

    let events = drain_spans();
    assert_eq!(events.len(), RING_CAPACITY);

    let dir = std::env::temp_dir().join("yollo_obs_drop_meta");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    write_chrome_trace(&path, &events).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    let arr = parsed.as_array().expect("top-level array");
    let meta = arr
        .iter()
        .find(|v| v["ph"] == "M" && v["name"] == "yollo.spans_dropped")
        .expect("drop metadata event present");
    assert_eq!(meta["args"]["dropped"], 10);
    assert_eq!(arr.iter().filter(|v| v["ph"] == "X").count(), RING_CAPACITY);

    // The writer consumed the accounting: a second write is clean.
    assert_eq!(take_dropped_spans(), 0);
    let path2 = dir.join("trace_clean.json");
    write_chrome_trace(&path2, &[]).unwrap();
    let text2 = std::fs::read_to_string(&path2).unwrap();
    let parsed2: serde_json::Value = serde_json::from_str(&text2).unwrap();
    assert!(parsed2.as_array().unwrap().is_empty());

    std::fs::remove_file(path).ok();
    std::fs::remove_file(path2).ok();
}
