//! RAII trace spans, per-thread ring buffers and the Chrome-trace writer.
//!
//! Each thread records finished spans into its own ring buffer behind its
//! own mutex — pushes are uncontended; only [`drain_spans`] briefly locks
//! each buffer, so records are never torn even under heavy cross-thread
//! span traffic (see `tests/contention.rs`). Buffers are recycled when
//! threads exit, so short-lived worker threads (the tensor pool spawns
//! scoped workers per op) do not grow the buffer list without bound.

use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

#[cfg(feature = "enabled")]
use std::cell::RefCell;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Finished spans retained per thread buffer; when a buffer is full the
/// oldest events are overwritten (and `obs.spans.dropped` counts them).
pub const RING_CAPACITY: usize = 1 << 16;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static for `span!`, owned for dynamic names).
    pub name: Cow<'static, str>,
    /// Process-local thread id (assigned in first-span order, from 1).
    pub tid: u64,
    /// Unique span id (from 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Start time in nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[cfg(feature = "enabled")]
struct RingBuf {
    slots: Vec<SpanEvent>,
    /// Index of the oldest slot once the buffer has wrapped.
    head: usize,
}

#[cfg(feature = "enabled")]
struct Ring {
    inner: Mutex<RingBuf>,
}

#[cfg(feature = "enabled")]
impl Ring {
    fn new() -> Self {
        Ring {
            inner: Mutex::new(RingBuf {
                slots: Vec::new(),
                head: 0,
            }),
        }
    }

    fn push(&self, ev: SpanEvent) {
        let mut buf = self.inner.lock().expect("span ring poisoned");
        if buf.slots.len() < RING_CAPACITY {
            buf.slots.push(ev);
        } else {
            let head = buf.head;
            buf.slots[head] = ev;
            buf.head = (head + 1) % RING_CAPACITY;
            drop(buf);
            crate::counter!("obs.spans.dropped").incr();
        }
    }

    fn take(&self) -> Vec<SpanEvent> {
        let mut buf = self.inner.lock().expect("span ring poisoned");
        let head = buf.head;
        buf.head = 0;
        let mut slots = std::mem::take(&mut buf.slots);
        // restore chronological order after a wrap
        slots.rotate_left(head);
        slots
    }
}

#[cfg(feature = "enabled")]
struct Globals {
    /// Every ring ever created, for draining.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Rings whose thread has exited, available for reuse.
    free: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
}

#[cfg(feature = "enabled")]
fn globals() -> &'static Globals {
    static G: OnceLock<Globals> = OnceLock::new();
    G.get_or_init(|| Globals {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
        next_id: AtomicU64::new(0),
        epoch: Instant::now(),
    })
}

/// Monotonic nanoseconds since the process's trace epoch (the first call
/// into the span layer). Returns 0 when the `enabled` feature is off.
#[cfg(feature = "enabled")]
pub fn now_ns() -> u64 {
    globals().epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Monotonic nanoseconds since the trace epoch (0 with the feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

#[cfg(feature = "enabled")]
struct Local {
    ring: Arc<Ring>,
    tid: u64,
    /// Ids of the currently open spans on this thread (innermost last).
    stack: Vec<u64>,
}

#[cfg(feature = "enabled")]
impl Drop for Local {
    fn drop(&mut self) {
        // recycle the ring (its recorded events survive for draining)
        if let Ok(mut free) = globals().free.lock() {
            free.push(self.ring.clone());
        }
    }
}

#[cfg(feature = "enabled")]
thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

#[cfg(feature = "enabled")]
fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let g = globals();
            let ring = g
                .free
                .lock()
                .expect("span registry poisoned")
                .pop()
                .unwrap_or_else(|| {
                    let r = Arc::new(Ring::new());
                    g.rings
                        .lock()
                        .expect("span registry poisoned")
                        .push(r.clone());
                    r
                });
            Local {
                ring,
                tid: g.next_tid.fetch_add(1, Relaxed) + 1,
                stack: Vec::new(),
            }
        });
        f(local)
    })
}

#[cfg(feature = "enabled")]
struct SpanRec {
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    start_ns: u64,
}

/// An open scoped timer; dropping it records a [`SpanEvent`]. Spans are
/// strictly LIFO per thread (the natural shape of RAII guards), which is
/// what makes parent tracking a simple thread-local stack.
pub struct Span {
    #[cfg(feature = "enabled")]
    rec: Option<SpanRec>,
}

impl Span {
    #[cfg(feature = "enabled")]
    fn enter(name: Cow<'static, str>) -> Span {
        if !crate::enabled() {
            return Span { rec: None };
        }
        let g = globals();
        let id = g.next_id.fetch_add(1, Relaxed) + 1;
        let parent = with_local(|l| {
            let parent = l.stack.last().copied().unwrap_or(0);
            l.stack.push(id);
            parent
        });
        Span {
            rec: Some(SpanRec {
                name,
                id,
                parent,
                start_ns: now_ns(),
            }),
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[inline(always)]
    fn enter(_name: Cow<'static, str>) -> Span {
        Span {}
    }
}

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let end = now_ns();
            with_local(|l| {
                debug_assert_eq!(
                    l.stack.last().copied(),
                    Some(rec.id),
                    "spans must drop in LIFO order"
                );
                l.stack.pop();
                l.ring.push(SpanEvent {
                    name: rec.name,
                    tid: l.tid,
                    id: rec.id,
                    parent: rec.parent,
                    start_ns: rec.start_ns,
                    dur_ns: end.saturating_sub(rec.start_ns),
                });
            });
        }
    }
}

/// Opens a span with a static name (the [`crate::span!`] macro's body).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::enter(Cow::Borrowed(name))
}

/// Opens a span with an owned dynamic name.
#[inline]
pub fn span_owned(name: String) -> Span {
    Span::enter(Cow::Owned(name))
}

/// Opens a span with a borrowed dynamic name, cloning it only when
/// recording is actually on (hot paths with per-instance names).
#[inline]
pub fn span_dyn(name: &str) -> Span {
    if crate::enabled() {
        Span::enter(Cow::Owned(name.to_owned()))
    } else {
        Span::enter(Cow::Borrowed(""))
    }
}

/// Collects (and clears) every thread's recorded spans, sorted by start
/// time. Threads may keep recording concurrently; their new events land in
/// the next drain.
pub fn drain_spans() -> Vec<SpanEvent> {
    #[cfg(feature = "enabled")]
    {
        let rings: Vec<Arc<Ring>> = globals()
            .rings
            .lock()
            .expect("span registry poisoned")
            .clone();
        let mut out: Vec<SpanEvent> = rings.iter().flat_map(|r| r.take()).collect();
        out.sort_by_key(|e| (e.start_ns, e.id));
        out
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// The trace output path from `YOLLO_TRACE_PATH`, if set.
pub fn trace_path_from_env() -> Option<PathBuf> {
    std::env::var("YOLLO_TRACE_PATH").ok().map(PathBuf::from)
}

/// Writes events as a Chrome `trace_event` JSON array — one complete
/// `"ph":"X"` event object per line, with the surrounding brackets on
/// their own lines, so the file is simultaneously line-oriented and a
/// single valid JSON document Perfetto / `chrome://tracing` can open.
///
/// # Errors
/// Returns any I/O error.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[SpanEvent]) -> io::Result<()> {
    let mut f = BufWriter::new(File::create(path)?);
    writeln!(f, "[")?;
    for (i, e) in events.iter().enumerate() {
        let mut name = String::new();
        crate::push_json_escaped(&mut name, &e.name);
        let comma = if i + 1 == events.len() { "" } else { "," };
        writeln!(
            f,
            "{{\"name\":\"{}\",\"cat\":\"yollo\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}{}",
            name,
            e.tid,
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            e.id,
            e.parent,
            comma
        )?;
    }
    writeln!(f, "]")?;
    f.flush()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// Draining is global, so every drain-dependent check runs inside this
    /// one test (parallel tests would steal each other's events).
    #[test]
    fn span_recording_and_drain() {
        crate::set_enabled(true);

        // -- nesting records parentage and containment --
        {
            let _outer = crate::span!("test.span.outer");
            let _inner = crate::span!("test.span.inner");
        }
        let events = drain_spans();
        let inner = events
            .iter()
            .find(|e| e.name == "test.span.inner")
            .expect("inner span recorded");
        let outer = events
            .iter()
            .find(|e| e.name == "test.span.outer")
            .expect("outer span recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);

        // -- dynamic names --
        drop(span_owned(format!("test.span.dyn.{}", 7)));
        drop(span_dyn("test.span.dyn.borrowed"));
        let events = drain_spans();
        assert!(events.iter().any(|e| e.name == "test.span.dyn.7"));
        assert!(events.iter().any(|e| e.name == "test.span.dyn.borrowed"));

        // -- ring overflow keeps the newest events --
        std::thread::spawn(|| {
            for i in 0..RING_CAPACITY + 10 {
                drop(span_owned(format!("test.span.overflow.{i}")));
            }
        })
        .join()
        .expect("overflow thread panicked");
        let events = drain_spans();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test.span.overflow."))
            .collect();
        assert_eq!(mine.len(), RING_CAPACITY);
        let last = format!("test.span.overflow.{}", RING_CAPACITY + 9);
        assert!(mine.iter().any(|e| e.name == last.as_str()));
        assert!(!mine.iter().any(|e| e.name == "test.span.overflow.0"));
    }

    #[test]
    fn chrome_trace_roundtrips_as_json() {
        crate::set_enabled(true);
        let events = vec![
            SpanEvent {
                name: Cow::Borrowed("a \"quoted\" name"),
                tid: 1,
                id: 1,
                parent: 0,
                start_ns: 1000,
                dur_ns: 500,
            },
            SpanEvent {
                name: Cow::Borrowed("b"),
                tid: 2,
                id: 2,
                parent: 1,
                start_ns: 1200,
                dur_ns: 100,
            },
        ];
        let dir = std::env::temp_dir().join("yollo_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace_roundtrip.json");
        write_chrome_trace(&path, &events).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = parsed.as_array().expect("top-level array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["name"], "a \"quoted\" name");
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[1]["args"]["parent"], 1);
        // one event object per line between the brackets
        assert_eq!(text.lines().count(), 2 + events.len());
        std::fs::remove_file(path).ok();
    }
}
