//! RAII trace spans, per-thread ring buffers and the Chrome-trace writer.
//!
//! Each thread records finished spans into its own ring buffer behind its
//! own mutex — pushes are uncontended; only [`drain_spans`] briefly locks
//! each buffer, so records are never torn even under heavy cross-thread
//! span traffic (see `tests/contention.rs`). Buffers are recycled when
//! threads exit, so short-lived worker threads (the tensor pool spawns
//! scoped workers per op) do not grow the buffer list without bound.
//!
//! # Causal tracing
//!
//! Spans carry a **trace id** in addition to their own id and same-thread
//! parent. A span opened with no context starts a new trace (trace id ==
//! its own span id); nested RAII spans inherit the enclosing trace. To
//! link work across threads, hand a [`TraceContext`] (trace id + parent
//! span id) to the other side explicitly and open the remote span with
//! [`span_child`]. Long-lived logical spans that cannot be RAII guards
//! (a request living across many router ticks) allocate their context up
//! front with [`alloc_root`] / [`alloc_child`] and are recorded
//! retroactively with [`emit_span`] once their duration is known.

use std::borrow::Cow;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

#[cfg(feature = "enabled")]
use std::cell::RefCell;
#[cfg(feature = "enabled")]
use std::sync::atomic::AtomicU64;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering::Relaxed;
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Finished spans retained per thread buffer; when a buffer is full the
/// oldest events are overwritten (and `obs.spans.dropped` counts them).
pub const RING_CAPACITY: usize = 1 << 16;

/// A span's position in a causal tree, safe to hand across threads: the
/// trace it belongs to and the span that caused the work. `Copy` so it
/// can ride in messages, jobs and queue entries without ceremony. With
/// the `enabled` feature off (or recording off) every allocation returns
/// [`TraceContext::NONE`] and propagation is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Trace id (the root span's id), or 0 for "no trace".
    pub trace: u64,
    /// The causing span's id, or 0.
    pub span: u64,
}

impl TraceContext {
    /// The absent context: belongs to no trace, causes nothing.
    pub const NONE: TraceContext = TraceContext { trace: 0, span: 0 };

    /// True when this context carries no trace.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static for `span!`, owned for dynamic names).
    pub name: Cow<'static, str>,
    /// Process-local thread id (assigned in first-span order, from 1).
    pub tid: u64,
    /// Unique span id (from 1).
    pub id: u64,
    /// Id of the causing span (same-thread encloser or explicit remote
    /// parent), or 0 for roots.
    pub parent: u64,
    /// Id of the trace this span belongs to (== `id` for trace roots).
    pub trace: u64,
    /// Start time in nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key-value annotations (batch id, attempt number, …), emitted into
    /// the Chrome trace `args` object alongside the ids.
    pub args: Vec<(Cow<'static, str>, u64)>,
}

#[cfg(feature = "enabled")]
struct RingBuf {
    slots: Vec<SpanEvent>,
    /// Index of the oldest slot once the buffer has wrapped.
    head: usize,
}

#[cfg(feature = "enabled")]
struct Ring {
    inner: Mutex<RingBuf>,
    /// Events overwritten since the last [`take_dropped_spans`].
    dropped: AtomicU64,
}

#[cfg(feature = "enabled")]
impl Ring {
    fn new() -> Self {
        Ring {
            inner: Mutex::new(RingBuf {
                slots: Vec::new(),
                head: 0,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, ev: SpanEvent) {
        let mut buf = self.inner.lock().expect("span ring poisoned");
        if buf.slots.len() < RING_CAPACITY {
            buf.slots.push(ev);
        } else {
            let head = buf.head;
            buf.slots[head] = ev;
            buf.head = (head + 1) % RING_CAPACITY;
            drop(buf);
            self.dropped.fetch_add(1, Relaxed);
            crate::counter!("obs.spans.dropped").incr();
        }
    }

    fn take(&self) -> Vec<SpanEvent> {
        let mut buf = self.inner.lock().expect("span ring poisoned");
        let head = buf.head;
        buf.head = 0;
        let mut slots = std::mem::take(&mut buf.slots);
        // restore chronological order after a wrap
        slots.rotate_left(head);
        slots
    }
}

#[cfg(feature = "enabled")]
struct Globals {
    /// Every ring ever created, for draining.
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Rings whose thread has exited, available for reuse.
    free: Mutex<Vec<Arc<Ring>>>,
    next_tid: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
}

#[cfg(feature = "enabled")]
fn globals() -> &'static Globals {
    static G: OnceLock<Globals> = OnceLock::new();
    G.get_or_init(|| Globals {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
        next_id: AtomicU64::new(0),
        epoch: Instant::now(),
    })
}

/// Monotonic nanoseconds since the process's trace epoch (the first call
/// into the span layer). Returns 0 when the `enabled` feature is off.
#[cfg(feature = "enabled")]
pub fn now_ns() -> u64 {
    globals().epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Monotonic nanoseconds since the trace epoch (0 with the feature off).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

#[cfg(feature = "enabled")]
struct Local {
    ring: Arc<Ring>,
    tid: u64,
    /// `(span id, trace id)` of the currently open spans on this thread
    /// (innermost last).
    stack: Vec<(u64, u64)>,
}

#[cfg(feature = "enabled")]
impl Drop for Local {
    fn drop(&mut self) {
        // recycle the ring (its recorded events survive for draining)
        if let Ok(mut free) = globals().free.lock() {
            free.push(self.ring.clone());
        }
    }
}

#[cfg(feature = "enabled")]
thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

#[cfg(feature = "enabled")]
fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let g = globals();
            let ring = g
                .free
                .lock()
                .expect("span registry poisoned")
                .pop()
                .unwrap_or_else(|| {
                    let r = Arc::new(Ring::new());
                    g.rings
                        .lock()
                        .expect("span registry poisoned")
                        .push(r.clone());
                    r
                });
            Local {
                ring,
                tid: g.next_tid.fetch_add(1, Relaxed) + 1,
                stack: Vec::new(),
            }
        });
        f(local)
    })
}

/// Allocates a fresh span id and makes a root context for a new trace.
/// Use for logical spans recorded later with [`emit_span`]. Returns
/// [`TraceContext::NONE`] when recording is off.
pub fn alloc_root() -> TraceContext {
    #[cfg(feature = "enabled")]
    {
        if !crate::enabled() {
            return TraceContext::NONE;
        }
        let id = globals().next_id.fetch_add(1, Relaxed) + 1;
        TraceContext {
            trace: id,
            span: id,
        }
    }
    #[cfg(not(feature = "enabled"))]
    TraceContext::NONE
}

/// Allocates a fresh span id under `parent`'s trace (a new trace when
/// `parent` is [`TraceContext::NONE`]). Returns the child's own context —
/// hand it onwards, then record the span with [`emit_span`].
pub fn alloc_child(parent: TraceContext) -> TraceContext {
    #[cfg(feature = "enabled")]
    {
        if !crate::enabled() {
            return TraceContext::NONE;
        }
        let id = globals().next_id.fetch_add(1, Relaxed) + 1;
        TraceContext {
            trace: if parent.trace == 0 { id } else { parent.trace },
            span: id,
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = parent;
        TraceContext::NONE
    }
}

/// Records a logical span retroactively: `ctx` is its own pre-allocated
/// context ([`alloc_root`] / [`alloc_child`]), `parent_span` the causing
/// span's id (0 for roots), and `start_ns`/`dur_ns` its extent on the
/// [`now_ns`] clock. No-op when `ctx` is [`TraceContext::NONE`].
pub fn emit_span(
    name: impl Into<Cow<'static, str>>,
    ctx: TraceContext,
    parent_span: u64,
    start_ns: u64,
    dur_ns: u64,
    args: &[(&'static str, u64)],
) {
    #[cfg(feature = "enabled")]
    {
        if ctx.is_none() || !crate::enabled() {
            return;
        }
        let ev = SpanEvent {
            name: name.into(),
            tid: with_local(|l| l.tid),
            id: ctx.span,
            parent: parent_span,
            trace: ctx.trace,
            start_ns,
            dur_ns,
            args: args.iter().map(|&(k, v)| (Cow::Borrowed(k), v)).collect(),
        };
        with_local(|l| l.ring.push(ev));
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name.into(), ctx, parent_span, start_ns, dur_ns, args);
    }
}

#[cfg(feature = "enabled")]
struct SpanRec {
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    trace: u64,
    start_ns: u64,
    args: Vec<(Cow<'static, str>, u64)>,
}

/// An open scoped timer; dropping it records a [`SpanEvent`]. Spans are
/// strictly LIFO per thread (the natural shape of RAII guards), which is
/// what makes parent tracking a simple thread-local stack. Cross-thread
/// causality comes from opening with [`span_child`] instead.
pub struct Span {
    #[cfg(feature = "enabled")]
    rec: Option<SpanRec>,
}

impl Span {
    #[cfg(feature = "enabled")]
    fn enter(name: Cow<'static, str>, remote: Option<TraceContext>) -> Span {
        if !crate::enabled() {
            return Span { rec: None };
        }
        let g = globals();
        let id = g.next_id.fetch_add(1, Relaxed) + 1;
        let (parent, trace) = with_local(|l| {
            let (local_parent, local_trace) = l.stack.last().copied().unwrap_or((0, 0));
            // An explicit remote context wins over lexical nesting; a span
            // with neither starts a new trace rooted at itself.
            let (parent, trace) = match remote {
                Some(ctx) if !ctx.is_none() => (ctx.span, ctx.trace),
                _ if local_parent != 0 => (local_parent, local_trace),
                _ => (0, id),
            };
            l.stack.push((id, trace));
            (parent, trace)
        });
        Span {
            rec: Some(SpanRec {
                name,
                id,
                parent,
                trace,
                start_ns: now_ns(),
                args: Vec::new(),
            }),
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[inline(always)]
    fn enter(_name: Cow<'static, str>, _remote: Option<TraceContext>) -> Span {
        Span {}
    }

    /// This span's context (its trace and own id), for handing the causal
    /// link to other threads. [`TraceContext::NONE`] when recording is off.
    pub fn context(&self) -> TraceContext {
        #[cfg(feature = "enabled")]
        {
            match &self.rec {
                Some(rec) => TraceContext {
                    trace: rec.trace,
                    span: rec.id,
                },
                None => TraceContext::NONE,
            }
        }
        #[cfg(not(feature = "enabled"))]
        TraceContext::NONE
    }

    /// Attaches a key-value annotation, builder style:
    /// `span!("serve.batch").with_arg("size", n)`.
    #[must_use]
    pub fn with_arg(self, key: &'static str, value: u64) -> Span {
        #[cfg(feature = "enabled")]
        {
            let mut s = self;
            if let Some(rec) = &mut s.rec {
                rec.args.push((Cow::Borrowed(key), value));
            }
            s
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (key, value);
            self
        }
    }
}

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let end = now_ns();
            with_local(|l| {
                debug_assert_eq!(
                    l.stack.last().map(|&(id, _)| id),
                    Some(rec.id),
                    "spans must drop in LIFO order"
                );
                l.stack.pop();
                l.ring.push(SpanEvent {
                    name: rec.name,
                    tid: l.tid,
                    id: rec.id,
                    parent: rec.parent,
                    trace: rec.trace,
                    start_ns: rec.start_ns,
                    dur_ns: end.saturating_sub(rec.start_ns),
                    args: rec.args,
                });
            });
        }
    }
}

/// Opens a span with a static name (the [`crate::span!`] macro's body).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::enter(Cow::Borrowed(name), None)
}

/// Opens a span with an owned dynamic name.
#[inline]
pub fn span_owned(name: String) -> Span {
    Span::enter(Cow::Owned(name), None)
}

/// Opens a span with a borrowed dynamic name, cloning it only when
/// recording is actually on (hot paths with per-instance names).
#[inline]
pub fn span_dyn(name: &str) -> Span {
    if crate::enabled() {
        Span::enter(Cow::Owned(name.to_owned()), None)
    } else {
        Span::enter(Cow::Borrowed(""), None)
    }
}

/// Opens a span causally linked under `ctx` — the cross-thread form of
/// nesting. The span joins `ctx`'s trace with `ctx.span` as its parent
/// regardless of what is open on this thread.
#[inline]
pub fn span_child(name: &'static str, ctx: TraceContext) -> Span {
    Span::enter(Cow::Borrowed(name), Some(ctx))
}

/// Collects (and clears) every thread's recorded spans, sorted by start
/// time. Threads may keep recording concurrently; their new events land in
/// the next drain.
pub fn drain_spans() -> Vec<SpanEvent> {
    #[cfg(feature = "enabled")]
    {
        let rings: Vec<Arc<Ring>> = globals()
            .rings
            .lock()
            .expect("span registry poisoned")
            .clone();
        let mut out: Vec<SpanEvent> = rings.iter().flat_map(|r| r.take()).collect();
        out.sort_by_key(|e| (e.start_ns, e.id));
        out
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Total spans overwritten in full ring buffers since the last call
/// (summed across threads, reset to zero). 0 with the feature off.
pub fn take_dropped_spans() -> u64 {
    #[cfg(feature = "enabled")]
    {
        globals()
            .rings
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|r| r.dropped.swap(0, Relaxed))
            .sum()
    }
    #[cfg(not(feature = "enabled"))]
    0
}

/// The trace output path from `YOLLO_TRACE_PATH`, if set.
pub fn trace_path_from_env() -> Option<PathBuf> {
    std::env::var("YOLLO_TRACE_PATH").ok().map(PathBuf::from)
}

/// Writes events as a Chrome `trace_event` JSON array — one complete
/// `"ph":"X"` event object per line, with the surrounding brackets on
/// their own lines, so the file is simultaneously line-oriented and a
/// single valid JSON document Perfetto / `chrome://tracing` can open.
/// Every event's `args` carries its span id, parent span id and trace id
/// (plus any [`Span::with_arg`] annotations), so causal trees can be
/// reassembled from the file alone.
///
/// If ring buffers overwrote spans since the last accounting
/// ([`take_dropped_spans`]), a `"ph":"M"` metadata event named
/// `yollo.spans_dropped` records the count instead of losing it silently.
///
/// # Errors
/// Returns any I/O error.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[SpanEvent]) -> io::Result<()> {
    let dropped = take_dropped_spans();
    let mut f = BufWriter::new(File::create(path)?);
    writeln!(f, "[")?;
    let total = events.len() + usize::from(dropped > 0);
    for (i, e) in events.iter().enumerate() {
        let mut name = String::new();
        crate::push_json_escaped(&mut name, &e.name);
        let mut args = format!(
            "{{\"id\":{},\"parent\":{},\"trace\":{}",
            e.id, e.parent, e.trace
        );
        for (k, v) in &e.args {
            args.push_str(",\"");
            crate::push_json_escaped(&mut args, k);
            args.push_str("\":");
            args.push_str(&v.to_string());
        }
        args.push('}');
        let comma = if i + 1 == total { "" } else { "," };
        writeln!(
            f,
            "{{\"name\":\"{}\",\"cat\":\"yollo\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}{}",
            name,
            e.tid,
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            args,
            comma
        )?;
    }
    if dropped > 0 {
        writeln!(
            f,
            "{{\"name\":\"yollo.spans_dropped\",\"cat\":\"yollo\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"dropped\":{dropped}}}}}"
        )?;
    }
    writeln!(f, "]")?;
    f.flush()
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// Draining is global, so every drain-dependent check runs inside this
    /// one test (parallel tests would steal each other's events).
    #[test]
    fn span_recording_and_drain() {
        crate::set_enabled(true);

        // -- nesting records parentage, trace membership and containment --
        {
            let _outer = crate::span!("test.span.outer");
            let _inner = crate::span!("test.span.inner");
        }
        let events = drain_spans();
        let inner = events
            .iter()
            .find(|e| e.name == "test.span.inner")
            .expect("inner span recorded");
        let outer = events
            .iter()
            .find(|e| e.name == "test.span.outer")
            .expect("outer span recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.trace, outer.id, "root span roots its own trace");
        assert_eq!(inner.trace, outer.trace, "nesting inherits the trace");
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);

        // -- dynamic names --
        drop(span_owned(format!("test.span.dyn.{}", 7)));
        drop(span_dyn("test.span.dyn.borrowed"));
        let events = drain_spans();
        assert!(events.iter().any(|e| e.name == "test.span.dyn.7"));
        assert!(events.iter().any(|e| e.name == "test.span.dyn.borrowed"));

        // -- explicit contexts link spans across threads --
        let ctx = {
            let root = crate::span!("test.span.remote_root").with_arg("answer", 42);
            root.context()
        };
        assert!(!ctx.is_none());
        std::thread::spawn(move || {
            let _child = span_child("test.span.remote_child", ctx);
        })
        .join()
        .expect("remote child thread panicked");
        let events = drain_spans();
        let root = events
            .iter()
            .find(|e| e.name == "test.span.remote_root")
            .expect("remote root recorded");
        let child = events
            .iter()
            .find(|e| e.name == "test.span.remote_child")
            .expect("remote child recorded");
        assert_eq!(root.id, ctx.span);
        assert_eq!(root.trace, ctx.trace);
        assert_eq!(child.parent, root.id, "explicit context sets parentage");
        assert_eq!(child.trace, root.trace, "explicit context joins the trace");
        assert_ne!(child.tid, root.tid, "causality crossed threads");
        assert_eq!(root.args, vec![(Cow::Borrowed("answer"), 42)]);

        // -- logical spans: alloc up front, emit retroactively --
        let req = alloc_root();
        let attempt = alloc_child(req);
        assert_eq!(req.trace, req.span);
        assert_eq!(attempt.trace, req.trace);
        assert_ne!(attempt.span, req.span);
        emit_span(
            "test.span.logical_attempt",
            attempt,
            req.span,
            500,
            100,
            &[],
        );
        emit_span(
            "test.span.logical_req",
            req,
            0,
            400,
            300,
            &[("attempts", 1)],
        );
        let events = drain_spans();
        let lr = events
            .iter()
            .find(|e| e.name == "test.span.logical_req")
            .expect("logical root recorded");
        let la = events
            .iter()
            .find(|e| e.name == "test.span.logical_attempt")
            .expect("logical attempt recorded");
        assert_eq!(lr.id, req.span);
        assert_eq!(lr.parent, 0);
        assert_eq!((lr.start_ns, lr.dur_ns), (400, 300));
        assert_eq!(lr.args, vec![(Cow::Borrowed("attempts"), 1)]);
        assert_eq!(la.parent, lr.id);
        assert_eq!(la.trace, lr.trace);

        // -- ring overflow keeps the newest events --
        // (the drop-counter → metadata-event path is asserted in
        // tests/drop_metadata.rs, which owns its process and so cannot
        // race other tests for the global drop accounting)
        std::thread::spawn(|| {
            for i in 0..RING_CAPACITY + 10 {
                drop(span_owned(format!("test.span.overflow.{i}")));
            }
        })
        .join()
        .expect("overflow thread panicked");
        let events = drain_spans();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test.span.overflow."))
            .collect();
        assert_eq!(mine.len(), RING_CAPACITY);
        let last = format!("test.span.overflow.{}", RING_CAPACITY + 9);
        assert!(mine.iter().any(|e| e.name == last.as_str()));
        assert!(!mine.iter().any(|e| e.name == "test.span.overflow.0"));
    }

    #[test]
    fn disabled_recording_yields_none_contexts() {
        // runtime-off allocations must be free and inert; flip the global
        // switch only around the checks to avoid starving parallel tests
        crate::set_enabled(false);
        let root = alloc_root();
        let child = alloc_child(root);
        crate::set_enabled(true);
        assert!(root.is_none());
        assert!(child.is_none());
        emit_span("test.span.disabled", TraceContext::NONE, 0, 0, 1, &[]);
    }

    #[test]
    fn chrome_trace_roundtrips_as_json() {
        crate::set_enabled(true);
        let events = vec![
            SpanEvent {
                name: Cow::Borrowed("a \"quoted\" name"),
                tid: 1,
                id: 1,
                parent: 0,
                trace: 1,
                start_ns: 1000,
                dur_ns: 500,
                args: Vec::new(),
            },
            SpanEvent {
                name: Cow::Borrowed("b"),
                tid: 2,
                id: 2,
                parent: 1,
                trace: 1,
                start_ns: 1200,
                dur_ns: 100,
                args: vec![(Cow::Borrowed("batch"), 7)],
            },
        ];
        let dir = std::env::temp_dir().join("yollo_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace_roundtrip.json");
        write_chrome_trace(&path, &events).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = parsed.as_array().expect("top-level array");
        let spans: Vec<_> = arr.iter().filter(|v| v["ph"] == "X").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0]["name"], "a \"quoted\" name");
        assert_eq!(spans[1]["args"]["parent"], 1);
        assert_eq!(spans[1]["args"]["trace"], 1);
        assert_eq!(spans[1]["args"]["batch"], 7);
        // one event object per line between the brackets (a concurrent
        // test may have contributed a drop-metadata line)
        assert_eq!(text.lines().count(), 2 + arr.len());
        std::fs::remove_file(path).ok();
    }
}
