//! Slowest-trace exemplar retention.
//!
//! Aggregates (histograms) say *that* the tail is slow; exemplars say
//! *why*: [`TraceExemplars`] watches drained [`SpanEvent`]s, reassembles
//! them into traces by trace id, and keeps the K complete traces whose
//! root span ran longest — each with its full causal tree, ready to be
//! written out with [`crate::write_chrome_trace`] or summarised in a
//! bench report.
//!
//! A trace is **complete** once its root span (the event whose `id`
//! equals its `trace`) has been observed; roots are recorded last in
//! both the RAII and the retroactive [`crate::emit_span`] styles, so by
//! then every child the trace will ever have is already drained or in
//! the same batch.

use crate::span::SpanEvent;
use std::collections::BTreeMap;

/// One retained trace: its id, root span and full event list.
#[derive(Debug, Clone)]
pub struct TraceExemplar {
    /// The trace id (== the root span's id).
    pub trace: u64,
    /// The root span's name.
    pub root_name: String,
    /// The root span's duration — the trace's end-to-end latency.
    pub dur_ns: u64,
    /// Every event of the trace, in `(start_ns, id)` order.
    pub events: Vec<SpanEvent>,
}

/// Traces still waiting for their root before eviction. Bounds memory
/// when a workload abandons traces (e.g. spans lost to ring overflow).
const PENDING_TRACE_CAP: usize = 4096;

/// Retains the slowest-K complete traces seen across [`observe`] calls.
///
/// [`observe`]: TraceExemplars::observe
#[derive(Debug)]
pub struct TraceExemplars {
    k: usize,
    /// Incomplete traces, keyed by trace id (insertion-ordered enough:
    /// trace ids are allocated monotonically, so the smallest key is the
    /// oldest trace — that is what gets evicted at the cap).
    pending: BTreeMap<u64, Vec<SpanEvent>>,
    /// Complete traces, sorted slowest-first, at most `k` long.
    slowest: Vec<TraceExemplar>,
    /// Complete traces seen (retained or not).
    completed: u64,
}

impl TraceExemplars {
    /// An empty retainer keeping at most `k` traces (`k == 0` keeps none
    /// but still counts completions).
    pub fn new(k: usize) -> Self {
        TraceExemplars {
            k,
            pending: BTreeMap::new(),
            slowest: Vec::new(),
            completed: 0,
        }
    }

    /// Feeds a batch of drained events (any order, any mix of traces).
    /// Untraced events (`trace == 0`) are ignored.
    pub fn observe(&mut self, events: &[SpanEvent]) {
        for ev in events {
            if ev.trace == 0 {
                continue;
            }
            self.pending.entry(ev.trace).or_default().push(ev.clone());
        }
        // Promote every trace whose root arrived.
        let done: Vec<u64> = self
            .pending
            .iter()
            .filter(|(&trace, evs)| evs.iter().any(|e| e.id == trace))
            .map(|(&trace, _)| trace)
            .collect();
        for trace in done {
            let mut evs = self.pending.remove(&trace).expect("pending trace");
            evs.sort_by_key(|e| (e.start_ns, e.id));
            let root = evs.iter().find(|e| e.id == trace).expect("root present");
            let exemplar = TraceExemplar {
                trace,
                root_name: root.name.to_string(),
                dur_ns: root.dur_ns,
                events: evs,
            };
            self.completed += 1;
            self.insert(exemplar);
        }
        // Evict the oldest incomplete traces past the cap — their roots
        // were likely lost to ring overflow and will never arrive.
        while self.pending.len() > PENDING_TRACE_CAP {
            let oldest = *self.pending.keys().next().expect("nonempty pending");
            self.pending.remove(&oldest);
        }
    }

    fn insert(&mut self, ex: TraceExemplar) {
        if self.k == 0 {
            return;
        }
        // Slowest first; ties broken by trace id so retention is
        // deterministic for identically seeded runs.
        let pos = self.slowest.partition_point(|e| {
            (e.dur_ns, std::cmp::Reverse(e.trace)) > (ex.dur_ns, std::cmp::Reverse(ex.trace))
        });
        self.slowest.insert(pos, ex);
        self.slowest.truncate(self.k);
    }

    /// The retained traces, slowest first.
    pub fn slowest(&self) -> &[TraceExemplar] {
        &self.slowest
    }

    /// Complete traces observed in total (retained or not).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Traces observed but still missing their root span.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(name: &str, id: u64, parent: u64, trace: u64, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name: Cow::Owned(name.to_owned()),
            tid: 1,
            id,
            parent,
            trace,
            start_ns,
            dur_ns,
            args: Vec::new(),
        }
    }

    #[test]
    fn retains_slowest_k_complete_traces() {
        let mut x = TraceExemplars::new(2);
        // three traces with root durations 300, 100, 200; children first
        x.observe(&[
            ev("child", 2, 1, 1, 10, 5),
            ev("child", 12, 11, 11, 10, 5),
            ev("child", 22, 21, 21, 10, 5),
        ]);
        assert_eq!(x.completed(), 0);
        assert_eq!(x.pending(), 3);
        x.observe(&[
            ev("root", 1, 0, 1, 0, 300),
            ev("root", 11, 0, 11, 0, 100),
            ev("root", 21, 0, 21, 0, 200),
        ]);
        assert_eq!(x.completed(), 3);
        assert_eq!(x.pending(), 0);
        let names: Vec<u64> = x.slowest().iter().map(|e| e.dur_ns).collect();
        assert_eq!(names, vec![300, 200], "slowest two retained, in order");
        assert_eq!(x.slowest()[0].trace, 1);
        assert_eq!(x.slowest()[0].events.len(), 2);
        assert_eq!(x.slowest()[0].root_name, "root");
    }

    #[test]
    fn incomplete_traces_never_surface() {
        let mut x = TraceExemplars::new(4);
        x.observe(&[ev("child", 2, 1, 1, 0, 50)]);
        assert!(x.slowest().is_empty());
        assert_eq!(x.pending(), 1);
        // untraced events are ignored entirely
        x.observe(&[ev("untraced", 3, 0, 0, 0, 50)]);
        assert_eq!(x.pending(), 1);
    }

    #[test]
    fn duration_ties_break_by_trace_id() {
        let mut x = TraceExemplars::new(2);
        x.observe(&[
            ev("b", 20, 0, 20, 0, 100),
            ev("a", 10, 0, 10, 0, 100),
            ev("c", 30, 0, 30, 0, 100),
        ]);
        let traces: Vec<u64> = x.slowest().iter().map(|e| e.trace).collect();
        assert_eq!(traces, vec![10, 20], "equal durations keep earliest traces");
    }
}
