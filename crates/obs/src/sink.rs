//! Metric sinks: where registry [`Snapshot`]s go.

use crate::{registry, Snapshot};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for metric snapshots, labelled by a step/tick number.
pub trait MetricsSink {
    /// Delivers one snapshot.
    ///
    /// # Errors
    /// Returns any I/O error of the underlying destination.
    fn emit(&mut self, step: u64, snapshot: &Snapshot) -> io::Result<()>;
}

/// Appends snapshots to a file as JSONL: one
/// `{"step":N,"metrics":{...}}` object per line, flushed per emit so a
/// killed run keeps every line written so far.
#[derive(Debug)]
pub struct JsonlFileSink {
    out: BufWriter<File>,
}

impl JsonlFileSink {
    /// Creates (truncates) `path`.
    ///
    /// # Errors
    /// Returns any file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlFileSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl MetricsSink for JsonlFileSink {
    fn emit(&mut self, step: u64, snapshot: &Snapshot) -> io::Result<()> {
        writeln!(
            self.out,
            "{{\"step\":{step},\"metrics\":{}}}",
            snapshot.to_json()
        )?;
        self.out.flush()
    }
}

/// Keeps snapshots in memory (tests, programmatic inspection).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every `(step, snapshot)` emitted, in order.
    pub snapshots: Vec<(u64, Snapshot)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl MetricsSink for MemorySink {
    fn emit(&mut self, step: u64, snapshot: &Snapshot) -> io::Result<()> {
        self.snapshots.push((step, snapshot.clone()));
        Ok(())
    }
}

/// Periodically snapshots the global registry into a sink: call
/// [`PeriodicSnapshotter::tick`] once per unit of work (e.g. per training
/// iteration) and every `every`-th tick emits a snapshot labelled with the
/// tick count.
#[derive(Debug)]
pub struct PeriodicSnapshotter<S: MetricsSink> {
    every: u64,
    ticks: u64,
    sink: S,
}

impl<S: MetricsSink> PeriodicSnapshotter<S> {
    /// Emits every `every` ticks.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn new(every: u64, sink: S) -> Self {
        assert!(every > 0, "snapshot period must be positive");
        PeriodicSnapshotter {
            every,
            ticks: 0,
            sink,
        }
    }

    /// Counts one unit of work; returns whether a snapshot was emitted.
    ///
    /// # Errors
    /// Returns the sink's I/O error.
    pub fn tick(&mut self) -> io::Result<bool> {
        self.ticks += 1;
        if self.ticks.is_multiple_of(self.every) {
            self.sink.emit(self.ticks, &registry().snapshot())?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Emits a final snapshot (unless the last tick just did) and returns
    /// the sink.
    ///
    /// # Errors
    /// Returns the sink's I/O error.
    pub fn finish(mut self) -> io::Result<S> {
        if !self.ticks.is_multiple_of(self.every) || self.ticks == 0 {
            self.sink.emit(self.ticks, &registry().snapshot())?;
        }
        Ok(self.sink)
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_records_every_emit() {
        let mut sink = MemorySink::new();
        let snap = Snapshot::default();
        sink.emit(1, &snap).unwrap();
        sink.emit(2, &snap).unwrap();
        assert_eq!(sink.snapshots.len(), 2);
        assert_eq!(sink.snapshots[1].0, 2);
    }

    #[test]
    fn periodic_snapshotter_cadence_and_finish() {
        let mut snap = PeriodicSnapshotter::new(3, MemorySink::new());
        let mut emitted = 0;
        for _ in 0..7 {
            if snap.tick().unwrap() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 2); // ticks 3 and 6
        assert_eq!(snap.sink().snapshots.len(), 2);
        let sink = snap.finish().unwrap(); // tick 7 not yet emitted
        assert_eq!(sink.snapshots.len(), 3);
        assert_eq!(sink.snapshots.last().unwrap().0, 7);
    }

    #[test]
    fn jsonl_file_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("yollo_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics_sink.jsonl");
        let mut sink = JsonlFileSink::create(&path).unwrap();
        let snap = Snapshot {
            counters: vec![("a.calls".to_owned(), 4)],
            gauges: vec![],
            histograms: vec![],
        };
        sink.emit(10, &snap).unwrap();
        sink.emit(20, &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, step) in lines.iter().zip([10, 20]) {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
            assert_eq!(v["step"], step);
            assert_eq!(v["metrics"]["counters"]["a.calls"], 4);
        }
        std::fs::remove_file(path).ok();
    }
}
