//! Telemetry for the YOLLO stack: cheap atomic metrics, RAII trace spans
//! and pluggable sinks — with zero dependencies, so every crate from the
//! tensor substrate up can afford to be on its build path.
//!
//! # Pieces
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) live in a global
//!   [`Registry`] and are updated with relaxed atomics. The [`counter!`],
//!   [`gauge!`] and [`histogram!`] macros cache the `&'static` handle per
//!   call site in a `OnceLock`, so after the first hit the fast path is one
//!   atomic load plus one atomic RMW — no locks, no allocation. Histograms
//!   use 64 log2-scaled buckets (one per power of two), sized for
//!   nanosecond latencies.
//! - **Spans** ([`span!`], [`Span`]) are RAII scoped timers. Dropping a
//!   span records a [`SpanEvent`] (name, thread id, start, duration,
//!   parent span) into a per-thread ring buffer; each thread locks only
//!   its own — uncontended — buffer. [`drain_spans`] collects every
//!   thread's events and [`write_chrome_trace`] writes them in Chrome
//!   `trace_event` JSON (one event per line; the whole file is a valid
//!   JSON array) loadable in Perfetto / `chrome://tracing`.
//! - **Traces** causally link spans across threads: a [`TraceContext`]
//!   (trace id + parent span id) is handed across explicitly and opened
//!   with [`span_child`], or pre-allocated ([`alloc_root`] /
//!   [`alloc_child`]) and recorded retroactively with [`emit_span`] for
//!   long-lived logical spans. [`TraceExemplars`] retains the slowest-K
//!   complete traces for tail-latency forensics.
//! - **Sinks** ([`MetricsSink`], [`JsonlFileSink`], [`MemorySink`],
//!   [`PeriodicSnapshotter`]) turn registry [`Snapshot`]s into JSONL for
//!   long training runs.
//!
//! # Switching it off
//!
//! Two independent switches:
//!
//! - **Runtime**: the `YOLLO_OBS` environment variable; `off`, `0` or
//!   `false` disables all recording (checked once, cached — see
//!   [`enabled`] / [`set_enabled`]).
//! - **Compile time**: build this crate without the `enabled` feature
//!   (`default-features = false`) and every recording call compiles to an
//!   `#[inline]` no-op; `yollo-tensor` re-exports this as its `obs`
//!   feature, and its `obs_overhead` test guards that instrumented kernels
//!   stay within noise of uninstrumented ones.
//!
//! # Metric naming convention
//!
//! Names are dot-separated lowercase paths:
//! `<crate or subsystem>.<component>.<metric>`.
//!
//! - **Counters** count events or summed quantities and end in a plural
//!   noun: `tensor.matmul.calls`, `tensor.matmul.flops`,
//!   `tensor.graph.bytes`, `train.steps.skipped`, `serve.requests`,
//!   `serve.cache.hits`.
//! - **Gauges** hold the last written value and are named for the value
//!   itself: `train.grad_norm`, `train.loss.total`,
//!   `tensor.pool.last_fanout`.
//! - **Histograms** record distributions and carry an explicit unit
//!   suffix (`_ns` for durations, none for dimensionless counts):
//!   `tensor.matmul_ns`, `model.encoder_ns`, `infer.batch_ns`,
//!   `serve.request_ns`, `serve.batch_size`.
//! - **Spans** reuse the same dotted style without a unit suffix
//!   (durations are implicit): `model.forward`, `rel2att.2`,
//!   `optim.adam.step`, `serve.batch`.
//!
//! Per-instance names (e.g. one per Rel2Att layer) put the instance index
//! last: `rel2att.0`, `rel2att.1`, …

mod metrics;
mod sink;
mod span;
mod trace;

pub use metrics::{
    registry, Counter, Gauge, HistTimer, Histogram, HistogramSnapshot, Registry, Snapshot,
    HIST_BUCKETS,
};
pub use sink::{JsonlFileSink, MemorySink, MetricsSink, PeriodicSnapshotter};
pub use span::{
    alloc_child, alloc_root, drain_spans, emit_span, now_ns, span, span_child, span_dyn,
    span_owned, take_dropped_spans, trace_path_from_env, write_chrome_trace, Span, SpanEvent,
    TraceContext, RING_CAPACITY,
};
pub use trace::{TraceExemplar, TraceExemplars};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialised, 1 = on, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether recording is on: the `enabled` cargo feature is compiled in and
/// the `YOLLO_OBS` environment variable is not `off`/`0`/`false`. The env
/// var is read once and cached; use [`set_enabled`] to override later.
#[cfg(feature = "enabled")]
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("YOLLO_OBS").as_deref(),
                Ok("off") | Ok("0") | Ok("false")
            );
            STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Always `false` when the `enabled` feature is compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Overrides the runtime switch (tests, profiling binaries). Has no effect
/// when the `enabled` feature is compiled out.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes and
/// control characters).
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// raw JSON cannot represent).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A process-wide counter handle, cached per call site: the first use
/// registers `$name` in the global [`Registry`]; later uses are one atomic
/// load away from the `&'static` [`Counter`].
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __YOLLO_OBS_CELL: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__YOLLO_OBS_CELL.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A process-wide gauge handle, cached per call site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __YOLLO_OBS_CELL: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__YOLLO_OBS_CELL.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A process-wide histogram handle, cached per call site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __YOLLO_OBS_CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__YOLLO_OBS_CELL.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// RAII scoped timer emitting a [`SpanEvent`] on drop; `$name` must be a
/// `&'static str`. For dynamic names use [`span_dyn`] / [`span_owned`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// RAII timer recording its scope's duration into the named histogram on
/// drop (no trace event; pair with [`span!`] when both are wanted).
#[macro_export]
macro_rules! time_hist {
    ($name:expr) => {
        $crate::HistTimer::new($crate::histogram!($name))
    };
}
