//! Atomic metric primitives and the global registry.
//!
//! All updates are relaxed atomic operations on `&'static` handles; the
//! registry mutex is touched only at first registration and at snapshot
//! time, so the steady-state fast path is lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

#[cfg(feature = "enabled")]
use std::time::Instant;

/// Number of log2-scaled histogram buckets (one per power of two of the
/// recorded value — covers the full `u64` nanosecond range).
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing event/quantity counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`. A relaxed `fetch_add` when recording is on; an inlined
    /// no-op when the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.value.fetch_add(n, Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one.
    #[inline(always)]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A fresh gauge at `0.0`.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Stores `v` (relaxed; no-op when the `enabled` feature is off).
    #[inline(always)]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.bits.store(v.to_bits(), Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Last stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Relaxed);
    }
}

/// A log2-bucketed distribution, sized for nanosecond latencies: bucket
/// `i` holds values whose integer log2 is `i`, so quantiles are exact to
/// within a factor of two across the whole `u64` range at 64×8 bytes of
/// storage per histogram.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Index of the bucket holding `v` (0 and 1 share bucket 0).
#[inline]
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        v.ilog2() as usize
    }
}

/// Representative value of bucket `i`: the geometric middle of `[2^i,
/// 2^(i+1))`, capped to stay in `u64`.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 63 {
        u64::MAX / 2 + 1
    } else {
        (1u64 << i) + (1u64 << (i - 1))
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation (three relaxed `fetch_add`s; an inlined
    /// no-op when the `enabled` feature is compiled out).
    #[inline(always)]
    pub fn record(&self, value: u64) {
        #[cfg(feature = "enabled")]
        if crate::enabled() {
            self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(value, Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// Records a duration in nanoseconds.
    #[inline(always)]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the representative value
    /// of the bucket the nearest-rank quantile falls in — exact to within
    /// a factor of two. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Relaxed);
            if cum >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(HIST_BUCKETS - 1)
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

/// RAII timer recording its lifetime into a [`Histogram`] on drop
/// (nanoseconds). Constructed via the [`crate::time_hist!`] macro.
pub struct HistTimer {
    #[cfg(feature = "enabled")]
    inner: Option<(&'static Histogram, Instant)>,
}

impl HistTimer {
    /// Starts the timer (a unit value when recording is off).
    #[inline(always)]
    pub fn new(hist: &'static Histogram) -> Self {
        #[cfg(feature = "enabled")]
        {
            HistTimer {
                inner: crate::enabled().then(|| (hist, Instant::now())),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = hist;
            HistTimer {}
        }
    }
}

#[cfg(feature = "enabled")]
impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((hist, t0)) = self.inner.take() {
            hist.record_duration(t0.elapsed());
        }
    }
}

/// The process-wide metric registry. Handles are `&'static` (registered
/// metrics live for the process); the maps are only locked on first
/// registration, [`Registry::snapshot`] and [`Registry::reset`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(Registry::default)
}

impl Registry {
    /// The counter registered as `name` (registering it on first use).
    /// With the `enabled` feature off this returns a shared no-op handle
    /// without touching the registry.
    pub fn counter(&self, name: &str) -> &'static Counter {
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            static NOOP: Counter = Counter::new();
            &NOOP
        }
        #[cfg(feature = "enabled")]
        {
            let mut map = self.counters.lock().expect("metric registry poisoned");
            if let Some(c) = map.get(name) {
                return c;
            }
            let leaked: &'static Counter = Box::leak(Box::default());
            map.insert(name.to_owned(), leaked);
            leaked
        }
    }

    /// The gauge registered as `name` (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            static NOOP: Gauge = Gauge::new();
            &NOOP
        }
        #[cfg(feature = "enabled")]
        {
            let mut map = self.gauges.lock().expect("metric registry poisoned");
            if let Some(g) = map.get(name) {
                return g;
            }
            let leaked: &'static Gauge = Box::leak(Box::default());
            map.insert(name.to_owned(), leaked);
            leaked
        }
    }

    /// The histogram registered as `name` (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            static NOOP: OnceLock<Histogram> = OnceLock::new();
            NOOP.get_or_init(Histogram::new)
        }
        #[cfg(feature = "enabled")]
        {
            let mut map = self.histograms.lock().expect("metric registry poisoned");
            if let Some(h) = map.get(name) {
                return h;
            }
            let leaked: &'static Histogram = Box::leak(Box::default());
            map.insert(name.to_owned(), leaked);
            leaked
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(n, h)| HistogramSnapshot {
                name: n.clone(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric (handles stay valid). Profiling
    /// binaries use this to separate phases, e.g. training vs inference.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// Aggregated view of one histogram inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Mean observed value.
    pub mean: f64,
    /// Median (bucket-resolution, see [`Histogram::quantile`]).
    pub p50: u64,
    /// 95th percentile (bucket-resolution).
    pub p95: u64,
    /// 99th percentile (bucket-resolution).
    pub p99: u64,
}

/// A point-in-time copy of the registry, name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(String, f64)>,
    /// One aggregate per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The snapshotted total of counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The snapshotted value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The snapshotted aggregate of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serialises the snapshot as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{..}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::push_json_escaped(&mut out, name);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::push_json_escaped(&mut out, name);
            out.push_str(&format!("\":{}", crate::json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::push_json_escaped(&mut out, &h.name);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                crate::json_f64(h.mean),
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        crate::set_enabled(true);
        let c = registry().counter("test.metrics.counter_accumulates");
        let before = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before + 4);
    }

    #[test]
    fn macro_returns_same_handle_as_registry() {
        crate::set_enabled(true);
        let a = crate::counter!("test.metrics.same_handle");
        let b = registry().counter("test.metrics.same_handle");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_is_last_value_wins() {
        crate::set_enabled(true);
        let g = registry().gauge("test.metrics.gauge");
        g.set(1.25);
        g.set(-7.5);
        assert_eq!(g.get(), -7.5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        crate::set_enabled(true);
        let h = Histogram::new();
        // 90 small values (~100) and 10 large ones (~100_000)
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 100 + 10 * 100_000);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        // bucket-resolution: within a factor of two of the true value
        assert!((64..256).contains(&p50), "p50 = {p50}");
        assert!((65_536..262_144).contains(&p95), "p95 = {p95}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn snapshot_json_is_parseable_and_escaped() {
        crate::set_enabled(true);
        let snap = Snapshot {
            counters: vec![("weird \"name\"\n".to_owned(), 3)],
            gauges: vec![("g".to_owned(), f64::NAN)],
            histograms: vec![HistogramSnapshot {
                name: "h_ns".to_owned(),
                count: 2,
                sum: 10,
                mean: 5.0,
                p50: 6,
                p95: 6,
                p99: 6,
            }],
        };
        let parsed: serde_json::Value = serde_json::from_str(&snap.to_json()).expect("valid JSON");
        assert_eq!(parsed["counters"]["weird \"name\"\n"], 3);
        assert!(
            parsed["gauges"]["g"].is_null(),
            "NaN must serialise as null"
        );
        assert_eq!(parsed["histograms"]["h_ns"]["count"], 2);
    }
}
