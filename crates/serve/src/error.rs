use std::error::Error;
use std::fmt;

use yollo_core::QueryTooLong;

/// Typed failure modes of the serving stack.
///
/// Every accepted request terminates in exactly one `Ok` prediction or one
/// of these errors — the server never drops a response on the floor, even
/// when a worker panics mid-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full: the request was shed at admission, before
    /// any work was done on it (load-shedding backpressure).
    Overloaded {
        /// Requests currently admitted but not yet answered.
        inflight: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query tokenises to more tokens than the model accepts. Rejected
    /// outright — the server never silently truncates a query.
    QueryTooLong {
        /// Tokens in the offending query.
        tokens: usize,
        /// The maximum the model accepts.
        max_tokens: usize,
    },
    /// The scene's dimensions differ from the model's input size, so it
    /// cannot join a batch.
    SceneMismatch {
        /// The offending scene's `(width, height)`.
        got: (usize, usize),
        /// The configured `(width, height)`.
        want: (usize, usize),
    },
    /// The worker processing this request's batch failed (e.g. panicked);
    /// the whole batch is answered with this error.
    WorkerFailed {
        /// Human-readable failure description.
        detail: String,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request's deadline expired before a worker answered it. Expired
    /// requests are answered immediately at batch-formation time (or by the
    /// router watching a hung replica) — they never occupy batch slots and
    /// are never left waiting forever.
    DeadlineExceeded {
        /// How long the request waited before expiring.
        waited_ns: u64,
        /// The absolute deadline that passed.
        deadline_ns: u64,
    },
    /// Every replica behind the router is unhealthy and the response cache
    /// could not answer the request (degraded-mode miss).
    Unavailable {
        /// Replicas behind the router, all of them unhealthy.
        replicas: usize,
    },
}

impl ServeError {
    /// True for failures a router may safely retry on another replica:
    /// the request never produced an answer and is not the client's fault.
    /// Worker failures and shed requests qualify; validation errors,
    /// expired deadlines and shutdown do not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::WorkerFailed { .. } | ServeError::Overloaded { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { inflight, capacity } => {
                write!(f, "overloaded: {inflight}/{capacity} requests in flight")
            }
            ServeError::QueryTooLong { tokens, max_tokens } => {
                write!(f, "query has {tokens} tokens, limit is {max_tokens}")
            }
            ServeError::SceneMismatch { got, want } => write!(
                f,
                "scene is {}x{}, server expects {}x{}",
                got.0, got.1, want.0, want.1
            ),
            ServeError::WorkerFailed { detail } => write!(f, "worker failed: {detail}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline exceeded after {waited_ns} ns (deadline at {deadline_ns} ns)"
            ),
            ServeError::Unavailable { replicas } => {
                write!(f, "all {replicas} replicas unhealthy and not cached")
            }
        }
    }
}

impl Error for ServeError {}

impl From<QueryTooLong> for ServeError {
    fn from(e: QueryTooLong) -> Self {
        ServeError::QueryTooLong {
            tokens: e.tokens,
            max_tokens: e.max_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            inflight: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        let e: ServeError = QueryTooLong {
            tokens: 20,
            max_tokens: 16,
        }
        .into();
        assert_eq!(
            e,
            ServeError::QueryTooLong {
                tokens: 20,
                max_tokens: 16
            }
        );
        let e = ServeError::DeadlineExceeded {
            waited_ns: 500,
            deadline_ns: 1_500,
        };
        assert!(e.to_string().contains("500 ns"));
        assert!(ServeError::Unavailable { replicas: 3 }
            .to_string()
            .contains("3 replicas"));
    }

    #[test]
    fn only_transport_level_failures_are_retryable() {
        assert!(ServeError::WorkerFailed {
            detail: "boom".into()
        }
        .is_retryable());
        assert!(ServeError::Overloaded {
            inflight: 8,
            capacity: 8
        }
        .is_retryable());
        assert!(!ServeError::ShuttingDown.is_retryable());
        assert!(!ServeError::DeadlineExceeded {
            waited_ns: 1,
            deadline_ns: 1
        }
        .is_retryable());
        assert!(!ServeError::QueryTooLong {
            tokens: 9,
            max_tokens: 8
        }
        .is_retryable());
        assert!(!ServeError::Unavailable { replicas: 2 }.is_retryable());
    }
}
