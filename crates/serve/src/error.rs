use std::error::Error;
use std::fmt;

use yollo_core::QueryTooLong;

/// Typed failure modes of the serving stack.
///
/// Every accepted request terminates in exactly one `Ok` prediction or one
/// of these errors — the server never drops a response on the floor, even
/// when a worker panics mid-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full: the request was shed at admission, before
    /// any work was done on it (load-shedding backpressure).
    Overloaded {
        /// Requests currently admitted but not yet answered.
        inflight: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query tokenises to more tokens than the model accepts. Rejected
    /// outright — the server never silently truncates a query.
    QueryTooLong {
        /// Tokens in the offending query.
        tokens: usize,
        /// The maximum the model accepts.
        max_tokens: usize,
    },
    /// The scene's dimensions differ from the model's input size, so it
    /// cannot join a batch.
    SceneMismatch {
        /// The offending scene's `(width, height)`.
        got: (usize, usize),
        /// The configured `(width, height)`.
        want: (usize, usize),
    },
    /// The worker processing this request's batch failed (e.g. panicked);
    /// the whole batch is answered with this error.
    WorkerFailed {
        /// Human-readable failure description.
        detail: String,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { inflight, capacity } => {
                write!(f, "overloaded: {inflight}/{capacity} requests in flight")
            }
            ServeError::QueryTooLong { tokens, max_tokens } => {
                write!(f, "query has {tokens} tokens, limit is {max_tokens}")
            }
            ServeError::SceneMismatch { got, want } => write!(
                f,
                "scene is {}x{}, server expects {}x{}",
                got.0, got.1, want.0, want.1
            ),
            ServeError::WorkerFailed { detail } => write!(f, "worker failed: {detail}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl Error for ServeError {}

impl From<QueryTooLong> for ServeError {
    fn from(e: QueryTooLong) -> Self {
        ServeError::QueryTooLong {
            tokens: e.tokens,
            max_tokens: e.max_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            inflight: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("8/8"));
        let e: ServeError = QueryTooLong {
            tokens: 20,
            max_tokens: 16,
        }
        .into();
        assert_eq!(
            e,
            ServeError::QueryTooLong {
                tokens: 20,
                max_tokens: 16
            }
        );
    }
}
