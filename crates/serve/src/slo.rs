//! Per-request flight records and SLO accounting for the router tier.
//!
//! A [`FlightRecord`] is the router's own account of one request: where it
//! was routed, how many attempts it took, which batch served it, and how
//! its latency splits into queue wait vs model service. The records are
//! *reconcilable* against the [`RouterEvent`] fingerprint
//! ([`reconcile_flights`]) — the two are produced by different code paths,
//! so agreement is evidence neither is lying — and aggregate into an
//! [`SloReport`] (availability, deadline-miss rate, hedge economics,
//! retry amplification, latency percentiles split into queue vs service).
//!
//! [`validate_request_chains`] checks the *trace* side of the same story:
//! every request trace must form a causally complete span tree from
//! admission to terminal outcome.

use std::collections::BTreeMap;

use yollo_obs::SpanEvent;

use crate::router::{Priority, RouterEvent, RouterEventKind, NO_REQUEST};

/// How a request's flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// Delivered a prediction.
    Ok,
    /// Delivered a terminal error (not a deadline expiry).
    Error,
    /// The end-to-end deadline passed first.
    DeadlineExceeded,
    /// Shed at admission (class capacity).
    Shed,
    /// Answered from a replica cache in degraded mode.
    DegradedHit,
    /// Every replica down and nothing cached.
    Unavailable,
}

impl FlightOutcome {
    /// Stable numeric code, used as the `outcome` span arg.
    pub fn code(self) -> u64 {
        match self {
            FlightOutcome::Ok => 0,
            FlightOutcome::Error => 1,
            FlightOutcome::DeadlineExceeded => 2,
            FlightOutcome::Shed => 3,
            FlightOutcome::DegradedHit => 4,
            FlightOutcome::Unavailable => 5,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FlightOutcome::Ok => "ok",
            FlightOutcome::Error => "error",
            FlightOutcome::DeadlineExceeded => "deadline_exceeded",
            FlightOutcome::Shed => "shed",
            FlightOutcome::DegradedHit => "degraded_hit",
            FlightOutcome::Unavailable => "unavailable",
        }
    }
}

/// The router's account of one request, assembled as the request moves
/// through admission → attempts → batch → terminal response. All times
/// are on the router's clock (deterministic under a virtual clock).
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Router request sequence number (matches [`RouterEvent::seq`]).
    pub seq: u64,
    /// Trace id of the request's span tree (0 when tracing is off).
    pub trace: u64,
    /// Priority class.
    pub class: Priority,
    /// Whether the request entered the pending table (vs being answered
    /// or rejected at admission).
    pub accepted: bool,
    /// The first replica an attempt was dispatched to.
    pub first_replica: Option<usize>,
    /// The replica whose answer was delivered.
    pub served_by: Option<usize>,
    /// Dispatch attempts made (excluding hedges).
    pub attempts: usize,
    /// Whether a hedged duplicate was dispatched.
    pub hedged: bool,
    /// Whether the hedge's answer won.
    pub hedge_won: bool,
    /// Replica-local id of the batch that served the request (0 = none).
    pub batch_id: u64,
    /// Admission time.
    pub admitted_ns: u64,
    /// Admission → terminal response.
    pub total_ns: u64,
    /// Time the winning attempt spent queued in the replica's batcher.
    pub queue_ns: u64,
    /// Model service time of the batch that served the request (under a
    /// virtual clock this is the [`crate::ServiceModel`] cost).
    pub service_ns: u64,
    /// How the flight ended.
    pub outcome: FlightOutcome,
}

/// Exact nearest-rank percentiles of one latency component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Percentiles {
    /// Nearest-rank percentiles of `samples` (all zeros when empty).
    pub fn of(samples: &mut [u64]) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_unstable();
        let rank = |q: f64| {
            let n = samples.len();
            let r = ((q * n as f64).ceil() as usize).clamp(1, n);
            samples[r - 1]
        };
        Percentiles {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        }
    }
}

/// Service-level accounting aggregated from [`FlightRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Flights recorded (valid submissions, accepted or not).
    pub submitted: u64,
    /// Flights that entered the pending table.
    pub accepted: u64,
    /// Shed at admission.
    pub shed: u64,
    /// Answered [`crate::ServeError::Unavailable`].
    pub unavailable: u64,
    /// Answered from a cache in degraded mode.
    pub degraded_hits: u64,
    /// Terminal `Ok` deliveries.
    pub delivered_ok: u64,
    /// Terminal error deliveries (excluding deadline expiries).
    pub delivered_err: u64,
    /// Terminal deadline expiries.
    pub deadline_exceeded: u64,
    /// `(ok + degraded) / (accepted + degraded)` — the fraction of
    /// non-shed load that got an answer (same formula as
    /// [`crate::RouterStats::availability`]).
    pub availability: f64,
    /// `deadline_exceeded / accepted`.
    pub deadline_miss_rate: f64,
    /// Flights that dispatched a hedged duplicate.
    pub hedges: u64,
    /// Flights whose hedge answered first.
    pub hedge_wins: u64,
    /// `hedge_wins / hedges` (0 when no hedges).
    pub hedge_win_rate: f64,
    /// Dispatch attempts summed over accepted flights.
    pub total_attempts: u64,
    /// `total_attempts / accepted` — 1.0 means no retries at all.
    pub retry_amplification: f64,
    /// End-to-end latency percentiles of answered flights.
    pub total: Percentiles,
    /// Queue-wait percentiles of `Ok` flights (admission → batch flush).
    pub queue: Percentiles,
    /// Service-time percentiles of `Ok` flights (batch flush → answer).
    pub service: Percentiles,
}

impl SloReport {
    /// Aggregates `flights` into a report.
    pub fn from_flights(flights: &[FlightRecord]) -> SloReport {
        let mut r = SloReport {
            submitted: flights.len() as u64,
            ..SloReport::default()
        };
        let mut total = Vec::new();
        let mut queue = Vec::new();
        let mut service = Vec::new();
        for f in flights {
            if f.accepted {
                r.accepted += 1;
                r.total_attempts += f.attempts as u64;
            }
            if f.hedged {
                r.hedges += 1;
            }
            if f.hedge_won {
                r.hedge_wins += 1;
            }
            match f.outcome {
                FlightOutcome::Ok => {
                    r.delivered_ok += 1;
                    total.push(f.total_ns);
                    queue.push(f.queue_ns);
                    service.push(f.service_ns);
                }
                FlightOutcome::Error => {
                    r.delivered_err += 1;
                    total.push(f.total_ns);
                }
                FlightOutcome::DeadlineExceeded => {
                    r.deadline_exceeded += 1;
                    total.push(f.total_ns);
                }
                FlightOutcome::Shed => r.shed += 1,
                FlightOutcome::DegradedHit => r.degraded_hits += 1,
                FlightOutcome::Unavailable => r.unavailable += 1,
            }
        }
        let answered = r.delivered_ok + r.degraded_hits;
        let offered = r.accepted + r.degraded_hits;
        r.availability = answered as f64 / offered.max(1) as f64;
        r.deadline_miss_rate = r.deadline_exceeded as f64 / r.accepted.max(1) as f64;
        r.hedge_win_rate = r.hedge_wins as f64 / r.hedges.max(1) as f64;
        r.retry_amplification = r.total_attempts as f64 / r.accepted.max(1) as f64;
        r.total = Percentiles::of(&mut total);
        r.queue = Percentiles::of(&mut queue);
        r.service = Percentiles::of(&mut service);
        r
    }
}

/// Checks every flight record against the [`RouterEvent`] log: attempt
/// counts must match `Routed` events, hedging must match `Hedged` events,
/// and each flight's outcome must match its single terminal event.
///
/// # Errors
/// A human-readable description of the first disagreement.
pub fn reconcile_flights(flights: &[FlightRecord], events: &[RouterEvent]) -> Result<(), String> {
    #[derive(Default)]
    struct PerSeq {
        routed: usize,
        hedged: usize,
        terminals: Vec<&'static str>,
    }
    let mut by_seq: BTreeMap<u64, PerSeq> = BTreeMap::new();
    for ev in events {
        if ev.seq == NO_REQUEST {
            continue;
        }
        let slot = by_seq.entry(ev.seq).or_default();
        match ev.kind {
            RouterEventKind::Routed { .. } => slot.routed += 1,
            RouterEventKind::Hedged { .. } => slot.hedged += 1,
            RouterEventKind::Delivered { ok, .. } => {
                slot.terminals.push(if ok { "ok" } else { "error" })
            }
            RouterEventKind::DeadlineExceeded => slot.terminals.push("deadline_exceeded"),
            RouterEventKind::Shed => slot.terminals.push("shed"),
            RouterEventKind::DegradedHit => slot.terminals.push("degraded_hit"),
            RouterEventKind::Unavailable => slot.terminals.push("unavailable"),
            RouterEventKind::CircuitOpened { .. }
            | RouterEventKind::CircuitClosed { .. }
            | RouterEventKind::ProbeFailed { .. } => {}
        }
    }
    let mut seen = 0usize;
    for f in flights {
        let Some(slot) = by_seq.get(&f.seq) else {
            return Err(format!("flight seq {} has no events", f.seq));
        };
        seen += 1;
        if slot.terminals.len() != 1 {
            return Err(format!(
                "flight seq {} has {} terminal events: {:?}",
                f.seq,
                slot.terminals.len(),
                slot.terminals
            ));
        }
        if slot.terminals[0] != f.outcome.name() {
            return Err(format!(
                "flight seq {}: outcome {} but terminal event {}",
                f.seq,
                f.outcome.name(),
                slot.terminals[0]
            ));
        }
        if slot.routed != f.attempts {
            return Err(format!(
                "flight seq {}: {} attempts but {} Routed events",
                f.seq, f.attempts, slot.routed
            ));
        }
        if (slot.hedged > 0) != f.hedged {
            return Err(format!(
                "flight seq {}: hedged={} but {} Hedged events",
                f.seq, f.hedged, slot.hedged
            ));
        }
    }
    if seen != by_seq.len() {
        return Err(format!(
            "{} request seqs in the event log but {} flight records",
            by_seq.len(),
            seen
        ));
    }
    Ok(())
}

/// Summary of one validated pass over a span dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainSummary {
    /// Traces rooted at `router.request`.
    pub router_requests: usize,
    /// Traces rooted at `serve.request` (direct submits).
    pub direct_requests: usize,
    /// Total spans across those traces.
    pub spans: usize,
}

/// Validates that every request trace in `spans` is causally complete:
/// each trace has exactly one root (`router.request` or `serve.request`),
/// every other span's parent resolves inside the same trace, the root's
/// `attempts` arg matches the number of `router.attempt` spans, and an
/// `Ok` outcome served by a batch has `serve.queued` / `serve.exec` spans
/// under it.
///
/// # Errors
/// A human-readable description of the first broken chain.
pub fn validate_request_chains(spans: &[SpanEvent]) -> Result<ChainSummary, String> {
    let arg = |e: &SpanEvent, key: &str| -> Option<u64> {
        e.args.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    };
    let mut by_trace: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for e in spans {
        if e.trace != 0 {
            by_trace.entry(e.trace).or_default().push(e);
        }
    }
    let mut summary = ChainSummary::default();
    for (trace, evs) in &by_trace {
        let roots: Vec<&&SpanEvent> = evs.iter().filter(|e| e.id == *trace).collect();
        let Some(root) = roots.first() else {
            // A trace without its root (e.g. a bare `serve.batch` span or
            // spans lost to ring overflow) is not a request chain; only
            // request roots are validated.
            continue;
        };
        if roots.len() != 1 {
            return Err(format!("trace {trace} has {} roots", roots.len()));
        }
        let is_request = root.name == "router.request" || root.name == "serve.request";
        if !is_request {
            continue;
        }
        // Causal completeness: every non-root parent resolves in-trace.
        let ids: std::collections::BTreeSet<u64> = evs.iter().map(|e| e.id).collect();
        for e in evs {
            if e.id != *trace && !ids.contains(&e.parent) {
                return Err(format!(
                    "trace {trace}: span {} ({}) has dangling parent {}",
                    e.id, e.name, e.parent
                ));
            }
        }
        summary.spans += evs.len();
        if root.name == "serve.request" {
            summary.direct_requests += 1;
            continue;
        }
        summary.router_requests += 1;
        let attempts = evs.iter().filter(|e| e.name == "router.attempt").count() as u64;
        let declared = arg(root, "attempts").unwrap_or(0);
        if attempts != declared {
            return Err(format!(
                "trace {trace}: root declares {declared} attempts, {attempts} attempt spans"
            ));
        }
        let outcome = arg(root, "outcome").unwrap_or(u64::MAX);
        let batch = arg(root, "batch").unwrap_or(0);
        if outcome == FlightOutcome::Ok.code() && batch != 0 {
            let queued = evs.iter().any(|e| e.name == "serve.queued");
            let exec = evs.iter().any(|e| e.name == "serve.exec");
            if !queued || !exec {
                return Err(format!(
                    "trace {trace}: ok outcome via batch {batch} but queued/exec spans missing"
                ));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(seq: u64, outcome: FlightOutcome, attempts: usize, accepted: bool) -> FlightRecord {
        FlightRecord {
            seq,
            trace: 0,
            class: Priority::Standard,
            accepted,
            first_replica: Some(0),
            served_by: Some(0),
            attempts,
            hedged: false,
            hedge_won: false,
            batch_id: 1,
            admitted_ns: 0,
            total_ns: 100,
            queue_ns: 60,
            service_ns: 40,
            outcome,
        }
    }

    fn ev(seq: u64, kind: RouterEventKind) -> RouterEvent {
        RouterEvent {
            at_ns: 0,
            seq,
            kind,
        }
    }

    #[test]
    fn reconcile_accepts_a_consistent_log() {
        let flights = vec![
            flight(0, FlightOutcome::Ok, 1, true),
            flight(1, FlightOutcome::Shed, 0, false),
        ];
        let events = vec![
            ev(
                0,
                RouterEventKind::Routed {
                    replica: 0,
                    attempt: 1,
                },
            ),
            ev(
                0,
                RouterEventKind::Delivered {
                    replica: 0,
                    ok: true,
                },
            ),
            ev(1, RouterEventKind::Shed),
        ];
        reconcile_flights(&flights, &events).expect("consistent");
    }

    #[test]
    fn reconcile_rejects_attempt_miscounts_and_wrong_outcomes() {
        let flights = vec![flight(0, FlightOutcome::Ok, 2, true)];
        let events = vec![
            ev(
                0,
                RouterEventKind::Routed {
                    replica: 0,
                    attempt: 1,
                },
            ),
            ev(
                0,
                RouterEventKind::Delivered {
                    replica: 0,
                    ok: true,
                },
            ),
        ];
        let err = reconcile_flights(&flights, &events).unwrap_err();
        assert!(err.contains("2 attempts"), "{err}");

        let flights = vec![flight(0, FlightOutcome::Error, 1, true)];
        let err = reconcile_flights(&flights, &events).unwrap_err();
        assert!(err.contains("terminal event"), "{err}");
    }

    #[test]
    fn slo_report_aggregates() {
        let mut flights = vec![
            flight(0, FlightOutcome::Ok, 1, true),
            flight(1, FlightOutcome::Ok, 2, true),
            flight(2, FlightOutcome::DeadlineExceeded, 1, true),
            flight(3, FlightOutcome::Shed, 0, false),
        ];
        flights[1].total_ns = 300;
        let r = SloReport::from_flights(&flights);
        assert_eq!(r.submitted, 4);
        assert_eq!(r.accepted, 3);
        assert_eq!(r.shed, 1);
        assert_eq!(r.delivered_ok, 2);
        assert_eq!(r.deadline_exceeded, 1);
        assert!((r.availability - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.deadline_miss_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.retry_amplification - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.total.p50, 100);
        assert_eq!(r.total.p99, 300);
        assert_eq!(r.queue.p50, 60);
        assert_eq!(r.service.p50, 40);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s = vec![10, 20, 30, 40];
        let p = Percentiles::of(&mut s);
        // ceil(0.5*4)=2 → 20; ceil(0.95*4)=4 → 40; ceil(0.99*4)=4 → 40
        assert_eq!(
            p,
            Percentiles {
                p50: 20,
                p95: 40,
                p99: 40
            }
        );
        assert_eq!(Percentiles::of(&mut Vec::new()), Percentiles::default());
    }
}
