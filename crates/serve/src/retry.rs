//! Retry policy: exponential back-off with deterministic jitter.
//!
//! The router retries retryable failures ([`crate::ServeError::is_retryable`]
//! — worker failures and shed requests) on a fallback replica after a
//! jittered exponential back-off. Jitter comes from a seeded xorshift
//! generator, not the OS entropy pool, so a chaos schedule replays
//! bit-identically: the same seed and the same failure sequence produce
//! the same back-off nanoseconds on every run.

use yollo_obs::histogram;

/// A tiny xorshift64* generator for back-off jitter. Deterministic and
/// cheap; never used for anything cryptographic.
#[derive(Debug, Clone)]
pub struct JitterRng(u64);

impl JitterRng {
    /// Seeds the generator (0 is remapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        JitterRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// When and how often to retry a failed attempt.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (1 = never retry).
    pub max_attempts: usize,
    /// Back-off before the first retry; doubles per further attempt.
    pub base_backoff_ns: u64,
    /// Upper bound on any single back-off.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100_000,   // 0.1 ms
            max_backoff_ns: 10_000_000, // 10 ms
        }
    }
}

impl RetryPolicy {
    /// The jittered back-off before attempt number `attempt` (2-based: the
    /// first retry is attempt 2). Equal-jitter scheme: half the
    /// exponential window is fixed, half uniformly random, so retries
    /// neither synchronise into bursts nor exceed the window.
    pub fn backoff_ns(&self, attempt: usize, rng: &mut JitterRng) -> u64 {
        let exp = attempt.saturating_sub(2).min(32) as u32;
        let window = self
            .base_backoff_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ns)
            .max(1);
        let half = window / 2;
        let jitter = (rng.unit_f64() * (window - half) as f64) as u64;
        let backoff = half + jitter;
        histogram!("retry.backoff_ns").record(backoff);
        backoff
    }

    /// True when a request that has made `attempts` attempts may try again.
    pub fn may_retry(&self, attempts: usize) -> bool {
        attempts < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds_and_replays() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 1_000,
            max_backoff_ns: 3_000,
        };
        let mut a = JitterRng::new(7);
        let mut b = JitterRng::new(7);
        for attempt in 2..=6 {
            let window = (1_000u64 << (attempt - 2)).min(3_000);
            let x = policy.backoff_ns(attempt, &mut a);
            assert!(
                (window / 2..=window).contains(&x),
                "attempt {attempt}: {x} outside [{}, {window}]",
                window / 2
            );
            assert_eq!(x, policy.backoff_ns(attempt, &mut b), "seeded replay");
        }
        let mut c = JitterRng::new(8);
        let diverged = (2..=6).any(|at| {
            let mut a2 = JitterRng::new(7);
            policy.backoff_ns(at, &mut c) != policy.backoff_ns(at, &mut a2)
        });
        assert!(diverged, "different seeds must jitter differently");
    }

    #[test]
    fn attempt_budget_is_total_attempts() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(policy.may_retry(1));
        assert!(policy.may_retry(2));
        assert!(!policy.may_retry(3));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = JitterRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
