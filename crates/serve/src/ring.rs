//! Consistent-hash ring for scene-affinity routing.
//!
//! The router keys every request by its scene's content hash, so all
//! traffic for one scene lands on one replica and that replica's LRU
//! response cache stays hot. A [`HashRing`] places `vnodes` points per
//! replica on a `u64` ring; a key routes to the replica owning the first
//! point at or after the key (wrapping). Because each replica's points
//! depend only on its own id, **removing a replica moves exactly the keys
//! it owned and nothing else** (the minimal-disruption invariant the
//! property tests pin down), and failover order is simply "next distinct
//! replica around the ring" — deterministic, bounded remap.

/// SplitMix64: a tiny, well-mixed hash for ring points and routing keys.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over replica ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, replica_id)` pairs.
    points: Vec<(u64, usize)>,
    ids: Vec<usize>,
    vnodes: usize,
}

impl HashRing {
    /// A ring over replicas `0..replicas`, each with `vnodes` points.
    ///
    /// # Panics
    /// Panics if `replicas` or `vnodes` is 0.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        HashRing::with_ids(&(0..replicas).collect::<Vec<_>>(), vnodes)
    }

    /// A ring over an explicit replica-id set (ids need not be dense —
    /// rebuilding with one id removed leaves every other id's points, and
    /// therefore every other key's route, untouched).
    ///
    /// # Panics
    /// Panics if `ids` is empty, contains duplicates, or `vnodes` is 0.
    pub fn with_ids(ids: &[usize], vnodes: usize) -> Self {
        assert!(!ids.is_empty(), "ring needs at least one replica");
        assert!(vnodes > 0, "ring needs at least one vnode per replica");
        let mut points = Vec::with_capacity(ids.len() * vnodes);
        for &id in ids {
            for v in 0..vnodes {
                // Point position depends only on (id, v): stable under
                // membership changes.
                let point = splitmix64((id as u64) << 32 | v as u64);
                points.push((point, id));
            }
        }
        points.sort_unstable();
        for w in points.windows(2) {
            assert!(
                w[0].0 != w[1].0 || w[0].1 != w[1].1,
                "duplicate replica id {} on the ring",
                w[0].1
            );
        }
        HashRing {
            points,
            ids: ids.to_vec(),
            vnodes,
        }
    }

    /// Replica ids on the ring, in construction order.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// Replicas on the ring.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the ring has no replicas (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Index of the first ring point at or after `key` (wrapping).
    fn first_point(&self, key: u64) -> usize {
        let hashed = splitmix64(key);
        match self.points.binary_search_by(|&(p, _)| p.cmp(&hashed)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The replica owning `key`.
    pub fn route(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1
    }

    /// Every replica in failover-preference order for `key`: the owner
    /// first, then each further distinct replica as it appears around the
    /// ring. Contains every replica exactly once.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let start = self.first_point(key);
        let mut order = Vec::with_capacity(self.ids.len());
        for off in 0..self.points.len() {
            let (_, id) = self.points[(start + off) % self.points.len()];
            if !order.contains(&id) {
                order.push(id);
                if order.len() == self.ids.len() {
                    break;
                }
            }
        }
        order
    }

    /// The first replica in preference order for which `healthy` holds, if
    /// any.
    pub fn route_healthy(&self, key: u64, mut healthy: impl FnMut(usize) -> bool) -> Option<usize> {
        let start = self.first_point(key);
        let mut seen = Vec::with_capacity(self.ids.len());
        for off in 0..self.points.len() {
            let (_, id) = self.points[(start + off) % self.points.len()];
            if seen.contains(&id) {
                continue;
            }
            if healthy(id) {
                return Some(id);
            }
            seen.push(id);
            if seen.len() == self.ids.len() {
                return None;
            }
        }
        None
    }

    /// Points per replica (as configured).
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_and_preference_covers_all_replicas() {
        let ring = HashRing::new(4, 32);
        for key in 0..256u64 {
            let owner = ring.route(key);
            assert!(owner < 4);
            let pref = ring.preference(key);
            assert_eq!(pref[0], owner, "preference starts at the owner");
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "each replica exactly once");
        }
    }

    #[test]
    fn route_healthy_skips_unhealthy_replicas_in_preference_order() {
        let ring = HashRing::new(3, 16);
        let key = 42;
        let pref = ring.preference(key);
        assert_eq!(
            ring.route_healthy(key, |r| r != pref[0]),
            Some(pref[1]),
            "first fallback is the next distinct replica on the ring"
        );
        assert_eq!(ring.route_healthy(key, |_| false), None);
    }

    #[test]
    fn identical_construction_yields_identical_rings() {
        let a = HashRing::new(5, 64);
        let b = HashRing::new(5, 64);
        assert_eq!(a.points, b.points);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_ring_is_rejected() {
        let _ = HashRing::with_ids(&[], 8);
    }
}
