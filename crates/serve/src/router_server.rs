//! The threaded router front: [`RouterServer`] puts the [`crate::Router`]
//! policies — scene-affinity routing, circuit breaking, deadlines and
//! jittered retries — in front of a pool of real [`Server`] replicas.
//!
//! Where [`crate::Router`] is the deterministic single-threaded form used
//! by the chaos tests, `RouterServer` is the production shape: each
//! replica is a full [`Server`] (its own worker threads, batcher and
//! response cache), calls are synchronous and may be issued from many
//! client threads at once, and back-offs are real sleeps. Hedging is
//! deliberately left to the deterministic form — a synchronous caller has
//! nothing useful to do with a second outstanding copy.
//!
//! Both router forms are **observably identical**: they record the same
//! `router.*` counters and histograms (including the per-class series in
//! [`crate::router`]) and emit the same `router.request` /
//! `router.attempt` span shapes, so dashboards and trace tooling built
//! against one work against the other.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use yollo_core::{scene_hash, ReplicaFaultPlan};
use yollo_obs::{alloc_child, alloc_root, counter, emit_span, histogram, TraceContext};
use yollo_synthref::Scene;
use yollo_text::Vocab;

use crate::error::ServeError;
use crate::health::HealthState;
use crate::retry::JitterRng;
use crate::ring::HashRing;
use crate::router::{
    FaultedModel, Priority, RouterConfig, CLASS_DEADLINE, CLASS_REQUEST_NS, CLASS_RETRIES,
    CLASS_SHED,
};
use crate::server::{GroundingModel, ServeConfig, ServeResult, Server};
use crate::slo::FlightOutcome;

/// Aggregate counters of a [`RouterServer`]'s lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterServerStats {
    /// Calls offered.
    pub calls: u64,
    /// Calls answered with a prediction.
    pub ok: u64,
    /// Calls answered with an error.
    pub failed: u64,
    /// Calls that hit their deadline.
    pub deadline_exceeded: u64,
    /// Retry attempts made.
    pub retries: u64,
    /// Calls shed at admission (class capacity).
    pub shed: u64,
    /// Calls shed because no replica would admit them.
    pub unavailable: u64,
}

struct AtomicStats {
    calls: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
    unavailable: AtomicU64,
}

/// Decrements a class-inflight slot on every exit path.
struct ClassSlot<'a> {
    counts: &'a [AtomicUsize; 3],
    ci: usize,
}

impl Drop for ClassSlot<'_> {
    fn drop(&mut self) {
        self.counts[self.ci].fetch_sub(1, Ordering::SeqCst);
    }
}

/// A health-checked, retrying router over threaded [`Server`] replicas.
pub struct RouterServer {
    cfg: RouterConfig,
    replicas: Vec<Server>,
    plans: Vec<Arc<Mutex<ReplicaFaultPlan>>>,
    ring: HashRing,
    health: Vec<Mutex<HealthState>>,
    rng: Mutex<JitterRng>,
    started: Instant,
    stats: AtomicStats,
    class_inflight: [AtomicUsize; 3],
    next_seq: AtomicU64,
}

impl RouterServer {
    /// Starts `cfg.replicas` independent [`Server`]s; `factory(i)` builds
    /// a model for replica `i` (called once per worker thread of that
    /// replica). Every replica starts with an empty fault plan.
    pub fn start<M, F>(cfg: RouterConfig, serve_cfg: ServeConfig, vocab: Vocab, factory: F) -> Self
    where
        M: GroundingModel,
        F: Fn(usize) -> M + Send + Sync + 'static,
    {
        assert!(cfg.replicas > 0, "router needs at least one replica");
        let factory = Arc::new(factory);
        let mut replicas = Vec::with_capacity(cfg.replicas);
        let mut plans = Vec::with_capacity(cfg.replicas);
        for i in 0..cfg.replicas {
            let plan = Arc::new(Mutex::new(ReplicaFaultPlan::new()));
            let factory = Arc::clone(&factory);
            let worker_plan = Arc::clone(&plan);
            replicas.push(Server::start(serve_cfg.clone(), vocab.clone(), move || {
                FaultedModel::new(factory(i), Arc::clone(&worker_plan))
            }));
            plans.push(plan);
        }
        let ring = HashRing::new(cfg.replicas, cfg.vnodes);
        let health = (0..cfg.replicas)
            .map(|_| Mutex::new(HealthState::new(cfg.health.clone())))
            .collect();
        let rng = Mutex::new(JitterRng::new(cfg.seed));
        RouterServer {
            cfg,
            replicas,
            plans,
            ring,
            health,
            rng,
            started: Instant::now(),
            stats: AtomicStats {
                calls: AtomicU64::new(0),
                ok: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                deadline_exceeded: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                unavailable: AtomicU64::new(0),
            },
            class_inflight: [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            next_seq: AtomicU64::new(0),
        }
    }

    /// Replaces replica `r`'s fault plan (all of its workers see the new
    /// plan on their next batch).
    pub fn set_fault_plan(&self, replica: usize, plan: ReplicaFaultPlan) {
        *self.plans[replica].lock().expect("fault plan") = plan;
    }

    /// Replicas behind this router.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> RouterServerStats {
        RouterServerStats {
            calls: self.stats.calls.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.stats.deadline_exceeded.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            unavailable: self.stats.unavailable.load(Ordering::Relaxed),
        }
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn record_outcome(&self, replica: usize, ok: bool) {
        let now = self.now_ns();
        let mut h = self.health[replica].lock().expect("health state");
        if ok {
            h.record_success(now);
        } else {
            h.record_failure(now);
        }
    }

    /// Picks the first admissible replica in preference order for `key`,
    /// preferring replicas not in `tried`.
    fn pick(&self, key: u64, tried: &[usize]) -> Option<usize> {
        let now = self.now_ns();
        let fresh = self.ring.route_healthy(key, |r| {
            !tried.contains(&r) && self.health[r].lock().expect("health state").allow(now)
        });
        fresh.or_else(|| {
            if tried.is_empty() {
                None
            } else {
                self.ring.route_healthy(key, |r| {
                    self.health[r].lock().expect("health state").allow(now)
                })
            }
        })
    }

    /// Emits the `router.request` root span of one call (same shape as the
    /// deterministic [`crate::Router`]'s).
    #[allow(clippy::too_many_arguments)]
    fn emit_root(
        ctx: TraceContext,
        started_real_ns: u64,
        seq: u64,
        ci: usize,
        attempts: usize,
        outcome: FlightOutcome,
        replica_plus1: u64,
        batch: u64,
    ) {
        if ctx.is_none() {
            return;
        }
        let end = yollo_obs::now_ns();
        emit_span(
            "router.request",
            ctx,
            0,
            started_real_ns,
            end.saturating_sub(started_real_ns),
            &[
                ("seq", seq),
                ("class", ci as u64),
                ("attempts", attempts as u64),
                ("outcome", outcome.code()),
                ("replica", replica_plus1),
                ("batch", batch),
            ],
        );
    }

    /// Emits one resolved attempt span (same shape as the deterministic
    /// router's).
    fn emit_attempt(
        ctx: TraceContext,
        parent_span: u64,
        started_real_ns: u64,
        replica: usize,
        attempt: usize,
        status: (&'static str, u64),
    ) {
        if ctx.is_none() {
            return;
        }
        let end = yollo_obs::now_ns();
        emit_span(
            "router.attempt",
            ctx,
            parent_span,
            started_real_ns,
            end.saturating_sub(started_real_ns),
            &[
                ("replica", replica as u64),
                ("attempt", attempt as u64),
                status,
            ],
        );
    }

    /// Records a terminal latency into the global and per-class request
    /// histograms (metric parity with the deterministic router).
    fn record_request_ns(&self, ci: usize, start: Instant) {
        let waited = start.elapsed().as_nanos() as u64;
        histogram!("router.request_ns").record(waited);
        yollo_obs::registry()
            .histogram(CLASS_REQUEST_NS[ci])
            .record(waited);
    }

    /// [`RouterServer::call`] with [`Priority::Standard`].
    pub fn call(&self, scene: &Scene, query: &str) -> ServeResult {
        self.call_with_class(scene, query, Priority::Standard)
    }

    /// Grounds one request: admits against the class's inflight cap,
    /// routes by scene affinity, enforces the configured deadline, and
    /// retries retryable failures on fallback replicas with jittered
    /// back-off. Exactly one terminal result. (Unlike the deterministic
    /// [`crate::Router`] there is no hedging and no degraded cache-only
    /// mode — a synchronous caller has nothing useful to do with a second
    /// outstanding copy, and replica caches are not reachable once a
    /// replica stops admitting.)
    pub fn call_with_class(&self, scene: &Scene, query: &str, class: Priority) -> ServeResult {
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        counter!("router.requests").incr();
        let ci = class.index();
        let ctx = alloc_root();
        let started_real_ns = yollo_obs::now_ns();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);

        // Per-class admission cap — same shedding policy (and metrics) as
        // the deterministic router.
        let inflight = self.class_inflight[ci].fetch_add(1, Ordering::SeqCst);
        if inflight >= self.cfg.class_capacity[ci] {
            self.class_inflight[ci].fetch_sub(1, Ordering::SeqCst);
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            counter!("router.shed").incr();
            yollo_obs::registry().counter(CLASS_SHED[ci]).incr();
            Self::emit_root(ctx, started_real_ns, seq, ci, 0, FlightOutcome::Shed, 0, 0);
            return Err(ServeError::Overloaded {
                inflight,
                capacity: self.cfg.class_capacity[ci],
            });
        }
        let _slot = ClassSlot {
            counts: &self.class_inflight,
            ci,
        };

        let key = scene_hash(scene);
        let start = Instant::now();
        let deadline =
            (self.cfg.deadline_ns > 0).then(|| start + Duration::from_nanos(self.cfg.deadline_ns));
        let mut attempts = 0usize;
        let mut tried: Vec<usize> = Vec::new();
        loop {
            let Some(replica) = self.pick(key, &tried) else {
                self.stats.unavailable.fetch_add(1, Ordering::Relaxed);
                counter!("router.unavailable").incr();
                Self::emit_root(
                    ctx,
                    started_real_ns,
                    seq,
                    ci,
                    attempts,
                    FlightOutcome::Unavailable,
                    0,
                    0,
                );
                return Err(ServeError::Unavailable {
                    replicas: self.replicas.len(),
                });
            };
            attempts += 1;
            if !tried.contains(&replica) {
                tried.push(replica);
            }
            counter!("router.dispatches").incr();
            let actx = alloc_child(ctx);
            let attempt_real_ns = yollo_obs::now_ns();
            let mut batch_id = 0u64;
            let outcome = match self.replicas[replica].submit_traced(scene, query, actx) {
                Err(e) => Err(e),
                Ok(resp) => match deadline {
                    None => {
                        let (result, meta) = resp.wait_with_meta();
                        batch_id = meta.batch_id;
                        result
                    }
                    Some(d) => {
                        let remaining = d.saturating_duration_since(Instant::now());
                        match resp.wait_for_with_meta(remaining) {
                            Some((result, meta)) => {
                                batch_id = meta.batch_id;
                                result
                            }
                            None => {
                                // The replica holds the request past its
                                // deadline: answer the caller ourselves and
                                // mark the replica.
                                Self::emit_attempt(
                                    actx,
                                    ctx.span,
                                    attempt_real_ns,
                                    replica,
                                    attempts,
                                    ("abandoned", 1),
                                );
                                self.record_outcome(replica, false);
                                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                counter!("router.deadline_exceeded").incr();
                                yollo_obs::registry().counter(CLASS_DEADLINE[ci]).incr();
                                self.record_request_ns(ci, start);
                                Self::emit_root(
                                    ctx,
                                    started_real_ns,
                                    seq,
                                    ci,
                                    attempts,
                                    FlightOutcome::DeadlineExceeded,
                                    0,
                                    0,
                                );
                                let waited = start.elapsed().as_nanos() as u64;
                                return Err(ServeError::DeadlineExceeded {
                                    waited_ns: waited,
                                    deadline_ns: self.cfg.deadline_ns,
                                });
                            }
                        }
                    }
                },
            };
            match outcome {
                Ok(pred) => {
                    Self::emit_attempt(
                        actx,
                        ctx.span,
                        attempt_real_ns,
                        replica,
                        attempts,
                        ("ok", 1),
                    );
                    self.record_outcome(replica, true);
                    self.stats.ok.fetch_add(1, Ordering::Relaxed);
                    counter!("router.delivered").incr();
                    self.record_request_ns(ci, start);
                    Self::emit_root(
                        ctx,
                        started_real_ns,
                        seq,
                        ci,
                        attempts,
                        FlightOutcome::Ok,
                        replica as u64 + 1,
                        batch_id,
                    );
                    return Ok(pred);
                }
                Err(e) => {
                    Self::emit_attempt(
                        actx,
                        ctx.span,
                        attempt_real_ns,
                        replica,
                        attempts,
                        ("ok", 0),
                    );
                    self.record_outcome(replica, false);
                    counter!("router.replica_failures").incr();
                    let may_retry = e.is_retryable() && self.cfg.retry.may_retry(attempts);
                    let backoff = Duration::from_nanos(
                        self.cfg
                            .retry
                            .backoff_ns(attempts + 1, &mut self.rng.lock().expect("jitter rng")),
                    );
                    let in_budget = match deadline {
                        None => true,
                        Some(d) => Instant::now() + backoff < d,
                    };
                    if may_retry && in_budget {
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        counter!("router.retries").incr();
                        yollo_obs::registry().counter(CLASS_RETRIES[ci]).incr();
                        std::thread::sleep(backoff);
                        continue;
                    }
                    self.stats.failed.fetch_add(1, Ordering::Relaxed);
                    counter!("router.failed").incr();
                    self.record_request_ns(ci, start);
                    Self::emit_root(
                        ctx,
                        started_real_ns,
                        seq,
                        ci,
                        attempts,
                        FlightOutcome::Error,
                        replica as u64 + 1,
                        batch_id,
                    );
                    return Err(e);
                }
            }
        }
    }

    /// Shuts every replica down (pending requests are still answered).
    pub fn shutdown(&mut self) {
        for r in &mut self.replicas {
            r.shutdown();
        }
    }
}
