//! The serving engine: admission → dynamic batcher → model → responses.
//!
//! Two drivers share the same admission and batch-execution logic:
//!
//! * [`ServerCore`] — single-threaded and inline, driven by explicit
//!   [`ServerCore::tick`] calls against any [`Clock`]. This is the
//!   deterministic form used by the virtual-clock tests and the
//!   [`crate::Simulation`] harness.
//! * [`Server`] — the production form: a worker pool blocking on a
//!   condvar, flushing batches as deadlines expire or batches fill.
//!
//! Every accepted request is answered exactly once — with a prediction, or
//! with [`ServeError::WorkerFailed`] if the worker processing its batch
//! panicked (the panic is caught; the pool keeps serving).

use std::mem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use yollo_core::{
    encode_query_strict, scene_hash, stack_images, GroundingPrediction, RequestKey, Yollo,
    YolloConfig,
};
use yollo_obs::{alloc_child, alloc_root, counter, emit_span, histogram, TraceContext};
use yollo_synthref::Scene;
use yollo_tensor::Tensor;
use yollo_text::Vocab;

use crate::batcher::{Batch, BatchBoundary, Batcher};
use crate::cache::LruCache;
use crate::clock::{Clock, NoopWaker, SystemClock, Waker};
use crate::error::ServeError;

/// The result of one grounding request.
pub type ServeResult = Result<GroundingPrediction, ServeError>;

/// Anything that can ground a padded batch. [`Yollo`] is the real
/// implementation; tests substitute deterministic or faulty stubs.
pub trait GroundingModel {
    /// Grounds `queries.len()` samples; `images` is `[B, C, H, W]`.
    fn predict_batch(&self, images: Tensor, queries: &[Vec<usize>]) -> Vec<GroundingPrediction>;
}

impl GroundingModel for Yollo {
    fn predict_batch(&self, images: Tensor, queries: &[Vec<usize>]) -> Vec<GroundingPrediction> {
        Yollo::predict_batch(self, images, queries)
    }
}

/// Numeric precision the serving backend runs the model at.
///
/// `F64` is the bitwise-reference path (identical to training numerics);
/// `F32` casts the weights once at startup and each batch's pixels at
/// entry, trading a bounded accuracy delta for kernel throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeDtype {
    /// Full-precision reference path.
    F64,
    /// Single-precision fast path.
    F32,
}

impl ServeDtype {
    /// Parses `"f64"` / `"f32"` (case-insensitive).
    pub fn parse(s: &str) -> Option<ServeDtype> {
        match s.to_ascii_lowercase().as_str() {
            "f64" => Some(ServeDtype::F64),
            "f32" => Some(ServeDtype::F32),
            _ => None,
        }
    }

    /// The canonical lowercase name (`"f64"` / `"f32"`).
    pub fn name(self) -> &'static str {
        match self {
            ServeDtype::F64 => "f64",
            ServeDtype::F32 => "f32",
        }
    }
}

/// A [`Yollo`] model held at a serving precision. The [`GroundingModel`]
/// boundary stays `f64`: the `F32` arm casts the incoming batch to `f32`,
/// runs the single-precision kernels, and the predictions come back as
/// `f64` coordinates either way.
pub enum YolloBackend {
    /// The reference model, weights as trained.
    F64(Yollo),
    /// The model with weights cast once to `f32` at construction.
    F32(Yollo<f32>),
}

impl YolloBackend {
    /// Wraps `model` at the requested precision (`F32` casts the weights
    /// once, up front).
    pub fn new(model: Yollo, dtype: ServeDtype) -> Self {
        match dtype {
            ServeDtype::F64 => YolloBackend::F64(model),
            ServeDtype::F32 => YolloBackend::F32(model.cast()),
        }
    }

    /// The precision this backend runs at.
    pub fn dtype(&self) -> ServeDtype {
        match self {
            YolloBackend::F64(_) => ServeDtype::F64,
            YolloBackend::F32(_) => ServeDtype::F32,
        }
    }
}

impl GroundingModel for YolloBackend {
    fn predict_batch(&self, images: Tensor, queries: &[Vec<usize>]) -> Vec<GroundingPrediction> {
        match self {
            YolloBackend::F64(m) => m.predict_batch(images, queries),
            YolloBackend::F32(m) => m.predict_batch(images.cast::<f32>(), queries),
        }
    }
}

/// Tunables of the serving stack.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch as soon as this many requests are pending.
    pub max_batch: usize,
    /// Flush a partial batch once its oldest request has waited this long.
    pub max_wait_ns: u64,
    /// Maximum accepted-but-unanswered requests before shedding
    /// ([`ServeError::Overloaded`]).
    pub queue_capacity: usize,
    /// LRU response-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum query length in tokens; longer queries are rejected, never
    /// truncated.
    pub max_tokens: usize,
    /// Rendered scene channels.
    pub in_channels: usize,
    /// Expected scene width.
    pub image_width: usize,
    /// Expected scene height.
    pub image_height: usize,
    /// Worker threads in the [`Server`] pool (ignored by [`ServerCore`]).
    pub workers: usize,
    /// Per-request deadline, measured from admission: once it passes, the
    /// request is answered [`ServeError::DeadlineExceeded`] at batch
    /// formation instead of occupying a batch slot. 0 disables deadlines.
    pub default_deadline_ns: u64,
    /// Recycle (rebuild via the model factory) a [`Server`] worker's model
    /// after this many *consecutive* failed batches, so one poisoned model
    /// cannot fail every batch it takes. 0 disables recycling; ignored by
    /// [`ServerCore`].
    pub recycle_after: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let model = YolloConfig::default();
        ServeConfig {
            max_batch: 8,
            max_wait_ns: 2_000_000, // 2 ms
            queue_capacity: 64,
            cache_capacity: 128,
            max_tokens: model.max_query_len,
            in_channels: model.in_channels,
            image_width: model.image_width,
            image_height: model.image_height,
            workers: 2,
            default_deadline_ns: 0,
            recycle_after: 3,
        }
    }
}

impl ServeConfig {
    /// A config whose input contract (image size, channels, query length)
    /// matches `model`.
    pub fn for_model(model: &YolloConfig) -> Self {
        ServeConfig {
            max_tokens: model.max_query_len,
            in_channels: model.in_channels,
            image_width: model.image_width,
            image_height: model.image_height,
            ..ServeConfig::default()
        }
    }
}

/// Where a response came from, for per-request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseSource {
    /// Answered from the response cache at admission.
    Cache,
    /// Answered by a worker running the request's batch.
    Batch,
    /// Answered at batch formation because the deadline passed.
    Expired,
    /// Answered by the router itself (degraded hit, router-side deadline,
    /// unavailability).
    Router,
}

/// Per-response accounting delivered alongside the result: which batch
/// served the request (0 = none) and how its latency splits into queue
/// wait vs model service, on the serving clock (deterministic under a
/// [`crate::VirtualClock`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseMeta {
    /// Where the answer came from.
    pub source: ResponseSource,
    /// The replica-local id of the batch that served the request, or 0
    /// when no batch ran ([`ResponseSource::Cache`] / `Expired` /
    /// `Router`).
    pub batch_id: u64,
    /// Time spent queued before the batch flushed (admission → flush).
    pub queue_ns: u64,
    /// Time spent in the model (flush → batch completion).
    pub service_ns: u64,
}

impl ResponseMeta {
    /// Meta for a response the caller answered itself, outside any batch.
    pub(crate) fn out_of_band(source: ResponseSource) -> Self {
        ResponseMeta {
            source,
            batch_id: 0,
            queue_ns: 0,
            service_ns: 0,
        }
    }
}

/// What travels on a response channel: the result plus its accounting.
pub(crate) struct Delivery {
    pub(crate) result: ServeResult,
    pub(crate) meta: ResponseMeta,
}

/// One admitted request travelling through the batcher.
struct Job {
    image: Vec<f64>,
    ids: Vec<usize>,
    key: RequestKey,
    tx: Sender<Delivery>,
    enqueued_ns: u64,
    deadline_ns: u64,
    /// Parent context for this job's queue/exec child spans: the request
    /// root for direct submits, the router's attempt span otherwise.
    ctx: TraceContext,
    /// Nonzero when the server owns the request's trace root (direct
    /// submits): the `serve.request` span is emitted at answer time.
    root: TraceContext,
    /// Admission time on the obs trace clock (real time, for span
    /// emission; `enqueued_ns` stays on the serving clock).
    enq_real_ns: u64,
}

/// A handle to one request's eventual result.
pub struct Response {
    rx: Receiver<Delivery>,
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Response { .. }")
    }
}

impl Response {
    /// Wraps a raw receiver (the router answers some requests itself —
    /// degraded cache hits, deadline expiries — through the same handle).
    pub(crate) fn from_rx(rx: Receiver<Delivery>) -> Self {
        Response { rx }
    }

    fn closed() -> Delivery {
        Delivery {
            result: Err(ServeError::WorkerFailed {
                detail: "response channel closed".to_owned(),
            }),
            meta: ResponseMeta::out_of_band(ResponseSource::Batch),
        }
    }

    /// Blocks until the result arrives.
    pub fn wait(self) -> ServeResult {
        self.wait_with_meta().0
    }

    /// Blocks until the result arrives; also returns its accounting.
    pub fn wait_with_meta(self) -> (ServeResult, ResponseMeta) {
        let d = self.rx.recv().unwrap_or_else(|_| Response::closed());
        (d.result, d.meta)
    }

    /// Blocks until the result arrives or `timeout` passes; `None` on
    /// timeout (the request stays in flight — the server will still answer
    /// into the abandoned channel).
    pub fn wait_for(&self, timeout: Duration) -> Option<ServeResult> {
        self.wait_for_with_meta(timeout).map(|(res, _)| res)
    }

    /// [`Response::wait_for`], also returning the accounting on arrival.
    pub fn wait_for_with_meta(&self, timeout: Duration) -> Option<(ServeResult, ResponseMeta)> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => Some((d.result, d.meta)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                let d = Response::closed();
                Some((d.result, d.meta))
            }
        }
    }

    /// The result if it is already available (cache hits are immediate).
    pub fn try_now(&self) -> Option<ServeResult> {
        self.try_now_with_meta().map(|(res, _)| res)
    }

    /// [`Response::try_now`], also returning the accounting.
    pub fn try_now_with_meta(&self) -> Option<(ServeResult, ResponseMeta)> {
        self.rx.try_recv().ok().map(|d| (d.result, d.meta))
    }
}

/// Mutable serving state shared by both drivers (and guarded by a mutex in
/// the threaded one).
struct ServeState {
    batcher: Batcher<Job>,
    cache: LruCache<RequestKey, GroundingPrediction>,
    inflight: usize,
    boundaries: Vec<BatchBoundary>,
    shutdown: bool,
}

impl ServeState {
    fn new(cfg: &ServeConfig) -> Self {
        ServeState {
            batcher: Batcher::new(cfg.max_batch, cfg.max_wait_ns),
            cache: LruCache::new(cfg.cache_capacity),
            inflight: 0,
            boundaries: Vec::new(),
            shutdown: false,
        }
    }
}

/// Emits the `serve.request` trace root for a request whose trace the
/// server owns (direct submits; router-owned requests get their root from
/// the router). No-op when `root` is [`TraceContext::NONE`].
fn emit_request_root(root: TraceContext, enq_real_ns: u64, args: &[(&'static str, u64)]) {
    if !root.is_none() {
        let now = yollo_obs::now_ns();
        emit_span(
            "serve.request",
            root,
            0,
            enq_real_ns,
            now.saturating_sub(enq_real_ns),
            args,
        );
    }
}

/// Validates and enqueues one request at time `now_ns`. On a cache hit the
/// response is already resolved and nothing is enqueued. `deadline_ns` is
/// the request's absolute expiry (`u64::MAX` = derive from the config's
/// `default_deadline_ns`, or no deadline if that is 0). `parent` is the
/// caller's trace context (the router's attempt span); when it is
/// [`TraceContext::NONE`] the server roots a fresh trace for the request.
/// Returns the response handle and whether the push filled the batch.
#[allow(clippy::too_many_arguments)]
fn admit(
    cfg: &ServeConfig,
    vocab: &Vocab,
    state: &mut ServeState,
    now_ns: u64,
    scene: &Scene,
    query: &str,
    deadline_ns: u64,
    parent: TraceContext,
) -> Result<(Response, bool), ServeError> {
    counter!("serve.requests").incr();
    if state.shutdown {
        return Err(ServeError::ShuttingDown);
    }
    if (scene.width, scene.height) != (cfg.image_width, cfg.image_height) {
        return Err(ServeError::SceneMismatch {
            got: (scene.width, scene.height),
            want: (cfg.image_width, cfg.image_height),
        });
    }
    let ids = encode_query_strict(vocab, query, cfg.max_tokens)?;
    let enq_real_ns = yollo_obs::now_ns();
    let root = if parent.is_none() {
        alloc_root()
    } else {
        TraceContext::NONE
    };
    let ctx = if root.is_none() { parent } else { root };
    let key = RequestKey::new(scene, query);
    let (tx, rx) = channel();
    if let Some(pred) = state.cache.get(&key) {
        counter!("serve.cache.hits").incr();
        counter!("serve.responses").incr();
        let _ = tx.send(Delivery {
            result: Ok(pred.clone()),
            meta: ResponseMeta::out_of_band(ResponseSource::Cache),
        });
        emit_request_root(root, enq_real_ns, &[("cache", 1)]);
        return Ok((Response { rx }, false));
    }
    counter!("serve.cache.misses").incr();
    if state.inflight >= cfg.queue_capacity {
        counter!("serve.shed").incr();
        return Err(ServeError::Overloaded {
            inflight: state.inflight,
            capacity: cfg.queue_capacity,
        });
    }
    state.inflight += 1;
    let deadline_ns = if deadline_ns != u64::MAX {
        deadline_ns
    } else if cfg.default_deadline_ns > 0 {
        now_ns.saturating_add(cfg.default_deadline_ns)
    } else {
        u64::MAX
    };
    let image = scene.render().into_vec();
    let full = state.batcher.push_with_deadline(
        Job {
            image,
            ids,
            key,
            tx,
            enqueued_ns: now_ns,
            deadline_ns,
            ctx,
            root,
            enq_real_ns,
        },
        now_ns,
        deadline_ns,
    );
    Ok((Response { rx }, full))
}

/// Answers every queued job whose deadline has passed with
/// [`ServeError::DeadlineExceeded`], freeing its queue slot. Returns how
/// many expired.
fn expire_jobs(state: &mut ServeState, now_ns: u64) -> usize {
    let expired = state.batcher.take_expired(now_ns);
    let n = expired.len();
    for job in expired {
        counter!("serve.deadline_exceeded").incr();
        counter!("serve.responses").incr();
        state.inflight -= 1;
        let waited_ns = now_ns.saturating_sub(job.enqueued_ns);
        emit_request_root(job.root, job.enq_real_ns, &[("expired", 1)]);
        let _ = job.tx.send(Delivery {
            result: Err(ServeError::DeadlineExceeded {
                waited_ns,
                deadline_ns: job.deadline_ns,
            }),
            meta: ResponseMeta {
                source: ResponseSource::Expired,
                batch_id: 0,
                queue_ns: waited_ns,
                service_ns: 0,
            },
        });
    }
    n
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_owned()
    }
}

/// What running one batch produced: the answer for every job, plus the
/// cache entries to insert (empty when the worker failed — failures are
/// never cached).
struct BatchOutcome {
    responses: Vec<(Sender<Delivery>, Delivery)>,
    inserts: Vec<(RequestKey, GroundingPrediction)>,
    size: usize,
    failed: bool,
}

impl BatchOutcome {
    /// Delivers every response. Call only after the serving state
    /// (inflight count, cache) reflects this batch, so that a client
    /// observing its answer also observes the freed queue slot.
    fn deliver(self) {
        for (tx, delivery) in self.responses {
            counter!("serve.responses").incr();
            let _ = tx.send(delivery);
        }
    }
}

/// Emits the per-job `serve.queued` / `serve.exec` child spans under the
/// job's context, covering admission → flush and flush → completion on
/// the obs trace clock.
fn emit_job_spans(job: &Job, batch_id: u64, flush_real_ns: u64, finish_real_ns: u64) {
    if job.ctx.is_none() {
        return;
    }
    let queued = alloc_child(job.ctx);
    emit_span(
        "serve.queued",
        queued,
        job.ctx.span,
        job.enq_real_ns,
        flush_real_ns.saturating_sub(job.enq_real_ns),
        &[("batch", batch_id)],
    );
    let exec = alloc_child(job.ctx);
    emit_span(
        "serve.exec",
        exec,
        job.ctx.span,
        flush_real_ns,
        finish_real_ns.saturating_sub(flush_real_ns),
        &[("batch", batch_id)],
    );
}

/// Runs the model on a flushed batch. The caller applies the outcome to
/// the serving state and then delivers the responses.
fn run_batch<M: GroundingModel + ?Sized>(
    model: &M,
    cfg: &ServeConfig,
    clock: &dyn Clock,
    batch: Batch<Job>,
) -> BatchOutcome {
    counter!("serve.batches").incr();
    histogram!("serve.batch_size").record(batch.items.len() as u64);
    let _span = yollo_obs::span!("serve.batch")
        .with_arg("batch", batch.id)
        .with_arg("size", batch.items.len() as u64);
    let started = clock.now_ns();
    let flush_real = yollo_obs::now_ns();
    let batch_id = batch.id;
    let flushed_at = batch.flushed_at_ns;
    let mut jobs = batch.items;
    let rows: Vec<Vec<f64>> = jobs.iter_mut().map(|j| mem::take(&mut j.image)).collect();
    let images = stack_images(&rows, cfg.in_channels, cfg.image_height, cfg.image_width);
    let queries: Vec<Vec<usize>> = jobs.iter().map(|j| j.ids.clone()).collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| model.predict_batch(images, &queries)));
    let finished = clock.now_ns();
    let finish_real = yollo_obs::now_ns();
    histogram!("serve.batch_ns").record(finished.saturating_sub(started));
    let size = jobs.len();
    let service_ns = finished.saturating_sub(flushed_at);
    for job in &jobs {
        histogram!("serve.request_ns").record(finished.saturating_sub(job.enqueued_ns));
        histogram!("serve.queue_ns").record(flushed_at.saturating_sub(job.enqueued_ns));
        histogram!("serve.service_ns").record(service_ns);
        emit_job_spans(job, batch_id, flush_real, finish_real);
    }
    let meta_of = |job: &Job| ResponseMeta {
        source: ResponseSource::Batch,
        batch_id,
        queue_ns: flushed_at.saturating_sub(job.enqueued_ns),
        service_ns,
    };
    let detail = match outcome {
        Ok(preds) if preds.len() == jobs.len() => {
            let mut responses = Vec::with_capacity(size);
            let mut inserts = Vec::with_capacity(size);
            for (job, pred) in jobs.into_iter().zip(preds) {
                let meta = meta_of(&job);
                emit_request_root(job.root, job.enq_real_ns, &[("batch", batch_id)]);
                inserts.push((job.key, pred.clone()));
                responses.push((
                    job.tx,
                    Delivery {
                        result: Ok(pred),
                        meta,
                    },
                ));
            }
            return BatchOutcome {
                responses,
                inserts,
                size,
                failed: false,
            };
        }
        Ok(preds) => format!(
            "model returned {} predictions for {} requests",
            preds.len(),
            jobs.len()
        ),
        Err(payload) => panic_message(payload),
    };
    counter!("serve.worker_panics").incr();
    let responses = jobs
        .into_iter()
        .map(|job| {
            let meta = meta_of(&job);
            emit_request_root(
                job.root,
                job.enq_real_ns,
                &[("batch", batch_id), ("failed", 1)],
            );
            let err = ServeError::WorkerFailed {
                detail: detail.clone(),
            };
            (
                job.tx,
                Delivery {
                    result: Err(err),
                    meta,
                },
            )
        })
        .collect();
    BatchOutcome {
        responses,
        inserts: Vec::new(),
        size,
        failed: true,
    }
}

/// The deterministic, single-threaded serving engine.
///
/// Nothing happens between calls: [`ServerCore::submit`] only admits and
/// enqueues, [`ServerCore::tick`] flushes and executes whatever batches are
/// due at the current clock reading. With a [`crate::VirtualClock`] the
/// whole flush schedule is an exact function of the submitted arrival
/// script — run it twice, get identical [`BatchBoundary`] sequences.
pub struct ServerCore<M: GroundingModel> {
    model: M,
    vocab: Vocab,
    cfg: ServeConfig,
    clock: Arc<dyn Clock>,
    waker: Arc<dyn Waker>,
    state: ServeState,
}

impl<M: GroundingModel> ServerCore<M> {
    /// A core on the system clock (no wake-ups observed).
    pub fn new(model: M, vocab: Vocab, cfg: ServeConfig) -> Self {
        ServerCore::with_clock(
            model,
            vocab,
            cfg,
            Arc::new(SystemClock::new()),
            Arc::new(NoopWaker),
        )
    }

    /// A core on an explicit clock and waker — the test entry point.
    pub fn with_clock(
        model: M,
        vocab: Vocab,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        waker: Arc<dyn Waker>,
    ) -> Self {
        let state = ServeState::new(&cfg);
        ServerCore {
            model,
            vocab,
            cfg,
            clock,
            waker,
            state,
        }
    }

    /// Admits one request at the current clock reading. The waker fires
    /// when the push filled a batch or armed a fresh deadline.
    pub fn submit(&mut self, scene: &Scene, query: &str) -> Result<Response, ServeError> {
        self.submit_with_deadline(scene, query, u64::MAX)
    }

    /// Admits one request that expires at the absolute time `deadline_ns`
    /// (on this core's clock); `u64::MAX` falls back to the config's
    /// `default_deadline_ns`. The router uses this to propagate one
    /// end-to-end deadline through retries on different replicas.
    pub fn submit_with_deadline(
        &mut self,
        scene: &Scene,
        query: &str,
        deadline_ns: u64,
    ) -> Result<Response, ServeError> {
        self.submit_traced(scene, query, deadline_ns, TraceContext::NONE)
    }

    /// [`ServerCore::submit_with_deadline`] under an explicit trace
    /// context: the request's queue and execution spans become children of
    /// `parent` (the router's attempt span) instead of rooting a fresh
    /// trace.
    pub fn submit_traced(
        &mut self,
        scene: &Scene,
        query: &str,
        deadline_ns: u64,
        parent: TraceContext,
    ) -> Result<Response, ServeError> {
        let now = self.clock.now_ns();
        let (resp, full) = admit(
            &self.cfg,
            &self.vocab,
            &mut self.state,
            now,
            scene,
            query,
            deadline_ns,
            parent,
        )?;
        if full || self.state.batcher.len() == 1 {
            self.waker.wake();
        }
        Ok(resp)
    }

    /// Answers every queued request whose deadline has passed
    /// ([`ServeError::DeadlineExceeded`]) without letting it occupy a batch
    /// slot. Returns how many expired. [`ServerCore::tick`] calls this
    /// automatically; it is public for drivers that interleave their own
    /// scheduling (the router).
    pub fn expire(&mut self) -> usize {
        let now = self.clock.now_ns();
        expire_jobs(&mut self.state, now)
    }

    /// Flushes and executes every batch due at the current clock reading.
    /// Returns how many batches ran.
    pub fn tick(&mut self) -> usize {
        let mut ran = 0;
        while self.tick_one() > 0 {
            ran += 1;
        }
        ran
    }

    /// Expires overdue requests, then flushes and executes **at most one**
    /// due batch. Returns how many batches ran (0 or 1). The router uses
    /// this to charge per-batch service time between batches.
    pub fn tick_one(&mut self) -> usize {
        let now = self.clock.now_ns();
        expire_jobs(&mut self.state, now);
        match self.state.batcher.poll(now) {
            Some(batch) => {
                self.finish(batch);
                1
            }
            None => 0,
        }
    }

    /// Forces out all pending requests regardless of deadlines (drain /
    /// shutdown); already-expired requests are still answered
    /// `DeadlineExceeded` rather than fed to the model. Returns how many
    /// batches ran.
    pub fn drain(&mut self) -> usize {
        let mut ran = 0;
        let now = self.clock.now_ns();
        expire_jobs(&mut self.state, now);
        while let Some(batch) = self.state.batcher.flush_all(now) {
            self.finish(batch);
            ran += 1;
        }
        ran
    }

    /// Looks up the response cache without admitting anything (the router's
    /// cache-only degraded mode when every replica is unhealthy). A hit
    /// bumps recency, exactly like an admitted hit.
    pub fn cache_lookup(&mut self, scene: &Scene, query: &str) -> Option<GroundingPrediction> {
        let key = RequestKey::new(scene, query);
        self.state.cache.get(&key).cloned()
    }

    fn finish(&mut self, batch: Batch<Job>) {
        let size = batch.items.len();
        self.state.boundaries.push(BatchBoundary {
            at_ns: batch.flushed_at_ns,
            size,
            reason: batch.reason,
            batch_id: batch.id,
        });
        let mut outcome = run_batch(&self.model, &self.cfg, self.clock.as_ref(), batch);
        for (k, v) in mem::take(&mut outcome.inserts) {
            self.state.cache.insert(k, v);
        }
        self.state.inflight -= size;
        outcome.deliver();
    }

    /// Every flush so far, in order — the determinism fingerprint.
    pub fn boundaries(&self) -> &[BatchBoundary] {
        &self.state.boundaries
    }

    /// The id of the most recently flushed batch (0 before any flush).
    pub fn last_batch_id(&self) -> u64 {
        self.state
            .boundaries
            .last()
            .map(|b| b.batch_id)
            .unwrap_or(0)
    }

    /// Accepted-but-unanswered requests.
    pub fn inflight(&self) -> usize {
        self.state.inflight
    }

    /// When the oldest pending request must flush, if anything is pending.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.state.batcher.next_deadline_ns()
    }

    /// The content hash the cache uses for `scene` (exposed for tests).
    pub fn scene_key(scene: &Scene) -> u64 {
        scene_hash(scene)
    }

    /// This core's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// This core's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Entries currently held by the response cache.
    pub fn cache_len(&self) -> usize {
        self.state.cache.len()
    }
}

struct Shared {
    cfg: ServeConfig,
    vocab: Vocab,
    clock: Arc<dyn Clock>,
    state: Mutex<ServeState>,
    cond: Condvar,
}

/// The threaded production server: a pool of workers each owning its own
/// model instance (models are not `Send`, so each worker builds one from
/// the factory on its own thread).
///
/// Dropping the server shuts it down: pending requests are force-flushed
/// and answered, then the workers exit.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Starts `cfg.workers` workers on the system clock. `factory` is
    /// called once per worker thread to build that worker's model.
    pub fn start<M, F>(cfg: ServeConfig, vocab: Vocab, factory: F) -> Self
    where
        M: GroundingModel,
        F: Fn() -> M + Send + Sync + 'static,
    {
        Server::start_with_clock(cfg, vocab, Arc::new(SystemClock::new()), factory)
    }

    /// Starts the pool on an explicit clock (tests use short real waits or
    /// batch-size-triggered flushes with a virtual clock).
    pub fn start_with_clock<M, F>(
        cfg: ServeConfig,
        vocab: Vocab,
        clock: Arc<dyn Clock>,
        factory: F,
    ) -> Self
    where
        M: GroundingModel,
        F: Fn() -> M + Send + Sync + 'static,
    {
        let n = cfg.workers.max(1);
        let state = ServeState::new(&cfg);
        let shared = Arc::new(Shared {
            cfg,
            vocab,
            clock,
            state: Mutex::new(state),
            cond: Condvar::new(),
        });
        let factory = Arc::new(factory);
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                thread::Builder::new()
                    .name(format!("yollo-serve-{i}"))
                    .spawn(move || worker_loop(&shared, factory.as_ref()))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Admits one request; the worker pool answers it asynchronously.
    pub fn submit(&self, scene: &Scene, query: &str) -> Result<Response, ServeError> {
        self.submit_traced(scene, query, TraceContext::NONE)
    }

    /// [`Server::submit`] under an explicit trace context (the router's
    /// attempt span); [`TraceContext::NONE`] roots a fresh trace.
    pub fn submit_traced(
        &self,
        scene: &Scene,
        query: &str,
        parent: TraceContext,
    ) -> Result<Response, ServeError> {
        let now = self.shared.clock.now_ns();
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        let (resp, _full) = admit(
            &self.shared.cfg,
            &self.shared.vocab,
            &mut st,
            now,
            scene,
            query,
            u64::MAX,
            parent,
        )?;
        drop(st);
        self.shared.cond.notify_one();
        Ok(resp)
    }

    /// Accepted-but-unanswered requests right now.
    pub fn inflight(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .inflight
    }

    /// Every flush so far, in order.
    pub fn boundaries(&self) -> Vec<BatchBoundary> {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .boundaries
            .clone()
    }

    /// Stops accepting requests, force-flushes the queue (every pending
    /// request is still answered) and joins the workers.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("serve state poisoned");
            st.shutdown = true;
        }
        self.shared.cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M, F>(shared: &Shared, factory: &F)
where
    M: GroundingModel,
    F: Fn() -> M,
{
    // Cap timed waits so progress does not depend on the clock being the
    // wall clock (a virtual clock advances between waits, not during them).
    const MAX_WAIT: Duration = Duration::from_millis(1);
    let mut model = factory();
    let mut consecutive_failures = 0usize;
    let mut st = shared.state.lock().expect("serve state poisoned");
    loop {
        let now = shared.clock.now_ns();
        expire_jobs(&mut st, now);
        let due = st.batcher.poll(now).or_else(|| {
            if st.shutdown {
                st.batcher.flush_all(now)
            } else {
                None
            }
        });
        if let Some(batch) = due {
            st.boundaries.push(BatchBoundary {
                at_ns: batch.flushed_at_ns,
                size: batch.items.len(),
                reason: batch.reason,
                batch_id: batch.id,
            });
            drop(st);
            let mut outcome = run_batch(&model, &shared.cfg, shared.clock.as_ref(), batch);
            if outcome.failed {
                consecutive_failures += 1;
                histogram!("serve.worker.consecutive_failures").record(consecutive_failures as u64);
                // A model that poisons every batch it takes is replaced
                // rather than left to fail forever: rebuild it from the
                // factory once the streak reaches the configured limit.
                if shared.cfg.recycle_after > 0 && consecutive_failures >= shared.cfg.recycle_after
                {
                    counter!("serve.worker_recycles").incr();
                    model = factory();
                    consecutive_failures = 0;
                }
            } else if outcome.size > 0 {
                consecutive_failures = 0;
            }
            // More work may have queued while the model ran.
            shared.cond.notify_one();
            st = shared.state.lock().expect("serve state poisoned");
            for (k, v) in mem::take(&mut outcome.inserts) {
                st.cache.insert(k, v);
            }
            st.inflight -= outcome.size;
            drop(st);
            // State reflects the batch before anyone sees an answer.
            outcome.deliver();
            st = shared.state.lock().expect("serve state poisoned");
            continue;
        }
        if st.shutdown {
            return;
        }
        st = match st.batcher.next_deadline_ns() {
            None => shared.cond.wait(st).expect("serve state poisoned"),
            Some(deadline) => {
                let remaining = Duration::from_nanos(deadline.saturating_sub(now).max(1));
                shared
                    .cond
                    .wait_timeout(st, remaining.min(MAX_WAIT))
                    .expect("serve state poisoned")
                    .0
            }
        };
    }
}
