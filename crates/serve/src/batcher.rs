//! The dynamic-batching state machine.
//!
//! [`Batcher`] is pure and synchronous: it owns pending items and answers
//! two questions — "is a batch due at time `t`?" and "when is the next
//! deadline?". It never sleeps, spawns, or reads a clock; callers feed it
//! timestamps from a [`crate::Clock`]. That makes the exact flush schedule
//! a deterministic function of the arrival script, which the virtual-clock
//! tests and the 100-run determinism harness rely on.
//!
//! Flush policy: a batch is emitted as soon as **either**
//! * `max_batch` items are pending (reason [`FlushReason::Full`]), or
//! * the oldest pending item has waited `max_wait_ns` (reason
//!   [`FlushReason::Deadline`]).
//!
//! Items may also carry a per-request expiry deadline
//! ([`Batcher::push_with_deadline`]). Callers drain expired items with
//! [`Batcher::take_expired`] *before* polling, so a request whose deadline
//! passed is answered immediately (`ServeError::DeadlineExceeded` upstream)
//! and never occupies a batch slot — a hung worker cannot strand admitted
//! requests until shutdown.

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// `max_batch` items were pending.
    Full,
    /// The oldest pending item reached its `max_wait_ns` deadline.
    Deadline,
    /// The caller forced a flush (shutdown / drain).
    Forced,
}

/// A flushed batch of items plus its provenance.
#[derive(Debug)]
pub struct Batch<T> {
    /// The items, in arrival order.
    pub items: Vec<T>,
    /// Why the batch was emitted.
    pub reason: FlushReason,
    /// Clock reading at which the flush happened.
    pub flushed_at_ns: u64,
    /// This batcher's flush ordinal (1-based): deterministic under a
    /// virtual clock, so flight records and trace args can name the batch
    /// a request rode in.
    pub id: u64,
}

/// A compact record of one flush, for determinism checks and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchBoundary {
    /// Clock reading at which the flush happened.
    pub at_ns: u64,
    /// Number of items in the batch.
    pub size: usize,
    /// Why the batch was emitted.
    pub reason: FlushReason,
    /// The batcher's flush ordinal (1-based, matches [`Batch::id`]).
    pub batch_id: u64,
}

#[derive(Debug)]
struct Pending<T> {
    item: T,
    enqueued_ns: u64,
    deadline_ns: u64,
}

/// The batching state machine. See the module docs for the flush policy.
#[derive(Debug)]
pub struct Batcher<T> {
    max_batch: usize,
    max_wait_ns: u64,
    pending: Vec<Pending<T>>,
    next_batch_id: u64,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `max_batch` items or `max_wait_ns` of waiting,
    /// whichever comes first.
    ///
    /// # Panics
    /// Panics if `max_batch` is 0.
    pub fn new(max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        Batcher {
            max_batch,
            max_wait_ns,
            pending: Vec::new(),
            next_batch_id: 1,
        }
    }

    /// Items currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues an item at time `now_ns` with no expiry deadline. Returns
    /// `true` when the batch is now full and should be flushed immediately.
    pub fn push(&mut self, item: T, now_ns: u64) -> bool {
        self.push_with_deadline(item, now_ns, u64::MAX)
    }

    /// Enqueues an item at time `now_ns` that expires at the absolute time
    /// `deadline_ns`: once `now >= deadline_ns` the item is returned by
    /// [`Batcher::take_expired`] instead of joining a batch. Returns `true`
    /// when the batch is now full and should be flushed immediately.
    pub fn push_with_deadline(&mut self, item: T, now_ns: u64, deadline_ns: u64) -> bool {
        self.pending.push(Pending {
            item,
            enqueued_ns: now_ns,
            deadline_ns,
        });
        self.pending.len() >= self.max_batch
    }

    /// The next time anything is due: the oldest item's flush deadline or
    /// the earliest per-item expiry, whichever comes first. `None` when
    /// nothing is pending. With a full batch the deadline is effectively
    /// "now" — [`Batcher::poll`] flushes regardless of time.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        let flush = self
            .pending
            .first()
            .map(|p| p.enqueued_ns.saturating_add(self.max_wait_ns))?;
        let expiry = self.pending.iter().map(|p| p.deadline_ns).min().unwrap();
        Some(flush.min(expiry))
    }

    /// Removes and returns every item whose expiry deadline has passed
    /// (`now_ns >= deadline_ns`), preserving the arrival order of the rest.
    /// Call this before [`Batcher::poll`] at the same instant so expired
    /// items never occupy batch slots.
    pub fn take_expired(&mut self, now_ns: u64) -> Vec<T> {
        if self.pending.iter().all(|p| now_ns < p.deadline_ns) {
            return Vec::new();
        }
        let mut expired = Vec::new();
        let mut kept = Vec::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            if now_ns >= p.deadline_ns {
                expired.push(p.item);
            } else {
                kept.push(p);
            }
        }
        self.pending = kept;
        expired
    }

    /// Flushes a batch if one is due at `now_ns`: full batches always, a
    /// partial batch only once the oldest item's deadline has passed.
    pub fn poll(&mut self, now_ns: u64) -> Option<Batch<T>> {
        if self.pending.is_empty() {
            return None;
        }
        if self.pending.len() >= self.max_batch {
            return Some(self.take(self.max_batch, FlushReason::Full, now_ns));
        }
        match self.next_deadline_ns() {
            Some(deadline) if now_ns >= deadline => {
                let n = self.pending.len();
                Some(self.take(n, FlushReason::Deadline, now_ns))
            }
            _ => None,
        }
    }

    /// Unconditionally flushes all pending items (shutdown / drain),
    /// or `None` when empty.
    pub fn flush_all(&mut self, now_ns: u64) -> Option<Batch<T>> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len();
        Some(self.take(n, FlushReason::Forced, now_ns))
    }

    fn take(&mut self, n: usize, reason: FlushReason, now_ns: u64) -> Batch<T> {
        let items = self.pending.drain(..n).map(|p| p.item).collect();
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        Batch {
            items,
            reason,
            flushed_at_ns: now_ns,
            id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_flushes_before_the_deadline() {
        let mut b = Batcher::new(4, 1_000);
        assert!(!b.push("a", 0));
        assert_eq!(b.next_deadline_ns(), Some(1_000));
        assert!(b.poll(999).is_none(), "999 ns is before the deadline");
        let batch = b.poll(1_000).expect("deadline reached");
        assert_eq!(batch.items, vec!["a"]);
        assert_eq!(batch.reason, FlushReason::Deadline);
        assert_eq!(batch.flushed_at_ns, 1_000);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_tracks_the_oldest_item() {
        let mut b = Batcher::new(4, 1_000);
        b.push("a", 100);
        b.push("b", 900);
        // The deadline belongs to "a", not "b".
        assert_eq!(b.next_deadline_ns(), Some(1_100));
        let batch = b.poll(1_100).unwrap();
        assert_eq!(batch.items, vec!["a", "b"]);
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let mut b = Batcher::new(2, 1_000_000);
        assert!(!b.push(1, 0));
        assert!(b.push(2, 0), "second push reaches max_batch");
        let batch = b.poll(0).unwrap();
        assert_eq!(batch.reason, FlushReason::Full);
        assert_eq!(batch.items, vec![1, 2]);
    }

    #[test]
    fn overfull_queue_flushes_in_max_batch_chunks() {
        let mut b = Batcher::new(2, 1_000);
        for i in 0..5 {
            b.push(i, 0);
        }
        assert_eq!(b.poll(0).unwrap().items, vec![0, 1]);
        assert_eq!(b.poll(0).unwrap().items, vec![2, 3]);
        assert!(b.poll(0).is_none(), "remainder waits for its deadline");
        assert_eq!(b.poll(1_000).unwrap().items, vec![4]);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut b = Batcher::new(8, 1_000);
        b.push("x", 0);
        b.push("y", 1);
        let batch = b.flush_all(5).unwrap();
        assert_eq!(batch.reason, FlushReason::Forced);
        assert_eq!(batch.items, vec!["x", "y"]);
        assert!(b.flush_all(5).is_none());
    }

    #[test]
    fn batch_ids_are_monotone_from_one() {
        let mut b = Batcher::new(2, 1_000);
        for i in 0..5 {
            b.push(i, 0);
        }
        assert_eq!(b.poll(0).unwrap().id, 1);
        assert_eq!(b.poll(0).unwrap().id, 2);
        assert_eq!(b.flush_all(1_000).unwrap().id, 3);
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn zero_max_batch_is_rejected() {
        let _ = Batcher::<u8>::new(0, 1);
    }

    #[test]
    fn expired_items_leave_the_queue_exactly_at_their_deadline() {
        let mut b = Batcher::new(4, 10_000);
        b.push_with_deadline("a", 0, 500);
        b.push("b", 0); // no expiry
        b.push_with_deadline("c", 0, 900);
        assert!(b.take_expired(499).is_empty(), "499 ns: nothing expired");
        assert_eq!(b.take_expired(500), vec!["a"], "500 ns: exactly 'a'");
        assert_eq!(b.len(), 2, "survivors stay queued in order");
        assert_eq!(b.take_expired(2_000), vec!["c"]);
        let batch = b.poll(10_000).expect("flush deadline for 'b'");
        assert_eq!(batch.items, vec!["b"]);
    }

    #[test]
    fn next_deadline_is_min_of_flush_and_expiry() {
        let mut b = Batcher::new(4, 1_000);
        b.push("a", 0);
        assert_eq!(b.next_deadline_ns(), Some(1_000), "flush deadline only");
        b.push_with_deadline("b", 100, 700);
        assert_eq!(b.next_deadline_ns(), Some(700), "expiry is sooner");
        assert_eq!(b.take_expired(700), vec!["b"]);
        assert_eq!(b.next_deadline_ns(), Some(1_000), "back to flush");
    }

    #[test]
    fn expired_items_never_occupy_batch_slots() {
        let mut b = Batcher::new(2, 10_000);
        b.push_with_deadline(1, 0, 100);
        b.push(2, 0);
        b.push(3, 0);
        // At t = 100 item 1 is expired; draining it first means the full
        // batch is formed from live items only.
        assert_eq!(b.take_expired(100), vec![1]);
        let batch = b.poll(100).expect("two live items fill the batch");
        assert_eq!(batch.items, vec![2, 3]);
        assert_eq!(batch.reason, FlushReason::Full);
    }
}
