//! The dynamic-batching state machine.
//!
//! [`Batcher`] is pure and synchronous: it owns pending items and answers
//! two questions — "is a batch due at time `t`?" and "when is the next
//! deadline?". It never sleeps, spawns, or reads a clock; callers feed it
//! timestamps from a [`crate::Clock`]. That makes the exact flush schedule
//! a deterministic function of the arrival script, which the virtual-clock
//! tests and the 100-run determinism harness rely on.
//!
//! Flush policy: a batch is emitted as soon as **either**
//! * `max_batch` items are pending (reason [`FlushReason::Full`]), or
//! * the oldest pending item has waited `max_wait_ns` (reason
//!   [`FlushReason::Deadline`]).

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// `max_batch` items were pending.
    Full,
    /// The oldest pending item reached its `max_wait_ns` deadline.
    Deadline,
    /// The caller forced a flush (shutdown / drain).
    Forced,
}

/// A flushed batch of items plus its provenance.
#[derive(Debug)]
pub struct Batch<T> {
    /// The items, in arrival order.
    pub items: Vec<T>,
    /// Why the batch was emitted.
    pub reason: FlushReason,
    /// Clock reading at which the flush happened.
    pub flushed_at_ns: u64,
}

/// A compact record of one flush, for determinism checks and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchBoundary {
    /// Clock reading at which the flush happened.
    pub at_ns: u64,
    /// Number of items in the batch.
    pub size: usize,
    /// Why the batch was emitted.
    pub reason: FlushReason,
}

#[derive(Debug)]
struct Pending<T> {
    item: T,
    enqueued_ns: u64,
}

/// The batching state machine. See the module docs for the flush policy.
#[derive(Debug)]
pub struct Batcher<T> {
    max_batch: usize,
    max_wait_ns: u64,
    pending: Vec<Pending<T>>,
}

impl<T> Batcher<T> {
    /// A batcher flushing at `max_batch` items or `max_wait_ns` of waiting,
    /// whichever comes first.
    ///
    /// # Panics
    /// Panics if `max_batch` is 0.
    pub fn new(max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        Batcher {
            max_batch,
            max_wait_ns,
            pending: Vec::new(),
        }
    }

    /// Items currently pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues an item at time `now_ns`. Returns `true` when the batch is
    /// now full and should be flushed immediately.
    pub fn push(&mut self, item: T, now_ns: u64) -> bool {
        self.pending.push(Pending {
            item,
            enqueued_ns: now_ns,
        });
        self.pending.len() >= self.max_batch
    }

    /// The absolute time at which the oldest pending item must be flushed,
    /// or `None` when nothing is pending. With a full batch the deadline is
    /// effectively "now" — [`Batcher::poll`] flushes regardless of time.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.pending
            .first()
            .map(|p| p.enqueued_ns.saturating_add(self.max_wait_ns))
    }

    /// Flushes a batch if one is due at `now_ns`: full batches always, a
    /// partial batch only once the oldest item's deadline has passed.
    pub fn poll(&mut self, now_ns: u64) -> Option<Batch<T>> {
        if self.pending.is_empty() {
            return None;
        }
        if self.pending.len() >= self.max_batch {
            return Some(self.take(self.max_batch, FlushReason::Full, now_ns));
        }
        match self.next_deadline_ns() {
            Some(deadline) if now_ns >= deadline => {
                let n = self.pending.len();
                Some(self.take(n, FlushReason::Deadline, now_ns))
            }
            _ => None,
        }
    }

    /// Unconditionally flushes all pending items (shutdown / drain),
    /// or `None` when empty.
    pub fn flush_all(&mut self, now_ns: u64) -> Option<Batch<T>> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len();
        Some(self.take(n, FlushReason::Forced, now_ns))
    }

    fn take(&mut self, n: usize, reason: FlushReason, now_ns: u64) -> Batch<T> {
        let items = self.pending.drain(..n).map(|p| p.item).collect();
        Batch {
            items,
            reason,
            flushed_at_ns: now_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_flushes_before_the_deadline() {
        let mut b = Batcher::new(4, 1_000);
        assert!(!b.push("a", 0));
        assert_eq!(b.next_deadline_ns(), Some(1_000));
        assert!(b.poll(999).is_none(), "999 ns is before the deadline");
        let batch = b.poll(1_000).expect("deadline reached");
        assert_eq!(batch.items, vec!["a"]);
        assert_eq!(batch.reason, FlushReason::Deadline);
        assert_eq!(batch.flushed_at_ns, 1_000);
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_tracks_the_oldest_item() {
        let mut b = Batcher::new(4, 1_000);
        b.push("a", 100);
        b.push("b", 900);
        // The deadline belongs to "a", not "b".
        assert_eq!(b.next_deadline_ns(), Some(1_100));
        let batch = b.poll(1_100).unwrap();
        assert_eq!(batch.items, vec!["a", "b"]);
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let mut b = Batcher::new(2, 1_000_000);
        assert!(!b.push(1, 0));
        assert!(b.push(2, 0), "second push reaches max_batch");
        let batch = b.poll(0).unwrap();
        assert_eq!(batch.reason, FlushReason::Full);
        assert_eq!(batch.items, vec![1, 2]);
    }

    #[test]
    fn overfull_queue_flushes_in_max_batch_chunks() {
        let mut b = Batcher::new(2, 1_000);
        for i in 0..5 {
            b.push(i, 0);
        }
        assert_eq!(b.poll(0).unwrap().items, vec![0, 1]);
        assert_eq!(b.poll(0).unwrap().items, vec![2, 3]);
        assert!(b.poll(0).is_none(), "remainder waits for its deadline");
        assert_eq!(b.poll(1_000).unwrap().items, vec![4]);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut b = Batcher::new(8, 1_000);
        b.push("x", 0);
        b.push("y", 1);
        let batch = b.flush_all(5).unwrap();
        assert_eq!(batch.reason, FlushReason::Forced);
        assert_eq!(batch.items, vec!["x", "y"]);
        assert!(b.flush_all(5).is_none());
    }

    #[test]
    #[should_panic(expected = "max_batch must be at least 1")]
    fn zero_max_batch_is_rejected() {
        let _ = Batcher::<u8>::new(0, 1);
    }
}
