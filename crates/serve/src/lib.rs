//! `yollo-serve` — a dynamic-batching inference server for YOLLO.
//!
//! Visual grounding is one forward pass per request (the paper's whole
//! point), which makes serving throughput a batching problem: single
//! requests waste the batched forward pass, but waiting forever for a full
//! batch wastes latency. This crate implements the standard dynamic
//! batching compromise — flush at `max_batch` requests **or** after the
//! oldest request has waited `max_wait`, whichever comes first — plus the
//! operational trimmings a server needs:
//!
//! * **bounded admission**: at most `queue_capacity` requests in flight;
//!   beyond that, requests are shed with [`ServeError::Overloaded`] rather
//!   than queued without bound;
//! * **strict input validation**: queries longer than `max_tokens` are
//!   rejected ([`ServeError::QueryTooLong`]), never silently truncated;
//! * **response caching**: an [`LruCache`] keyed by
//!   [`yollo_core::RequestKey`] (scene content hash + normalised query)
//!   answers repeats without touching the model;
//! * **fault isolation**: a worker panic fails its batch with
//!   [`ServeError::WorkerFailed`] — every accepted request is answered
//!   exactly once, and the pool keeps serving.
//!
//! The scheduler is built against [`Clock`]/[`Waker`] traits, so the exact
//! flush schedule is testable with a [`VirtualClock`] and no sleeps:
//! [`ServerCore`] is the deterministic single-threaded driver,
//! [`Simulation`] replays arrival scripts through it, and [`Server`] is
//! the threaded production pool on the same state machine.
//!
//! On top of single-server serving sits the **resilient router tier**: a
//! consistent-hash ring ([`HashRing`]) keeps each scene's traffic on one
//! replica, per-replica circuit breakers ([`HealthState`]) take failing
//! replicas out of rotation, and requests carry end-to-end deadlines with
//! jittered retries ([`RetryPolicy`]) and optional hedging. [`Router`] is
//! the deterministic form (chaos-testable under a [`VirtualClock`] with
//! [`yollo_core::ReplicaFaultPlan`] fault injection, replayed by
//! [`RouterSim`]); [`RouterServer`] is the threaded production form over
//! real [`Server`] replicas.
//!
//! ```no_run
//! use yollo_core::{Yollo, YolloConfig};
//! use yollo_serve::{ServeConfig, Server};
//! use yollo_synthref::{SceneBuilder, ShapeKind, ColorName};
//!
//! let cfg = YolloConfig::default();
//! let model = Yollo::new(cfg.clone(), 42);
//! let vocab = model.vocab().clone();
//! let server = Server::start(ServeConfig::for_model(&cfg), vocab, move || {
//!     Yollo::new(cfg.clone(), 42)
//! });
//! let scene = SceneBuilder::new(72, 48)
//!     .object(ShapeKind::Circle, ColorName::Red, 10.0, 10.0, 12.0, 12.0)
//!     .build();
//! let answer = server.submit(&scene, "the red circle").unwrap().wait();
//! println!("{:?}", answer.map(|p| p.bbox));
//! ```

mod batcher;
mod cache;
mod clock;
mod error;
mod health;
mod retry;
mod ring;
mod router;
mod router_server;
mod server;
mod sim;
mod slo;

pub use batcher::{Batch, BatchBoundary, Batcher, FlushReason};
pub use cache::LruCache;
pub use clock::{Clock, CountingWaker, NoopWaker, SystemClock, VirtualClock, Waker};
pub use error::ServeError;
pub use health::{CircuitState, HealthConfig, HealthState};
pub use retry::{JitterRng, RetryPolicy};
pub use ring::HashRing;
pub use router::{
    FaultedModel, Priority, Router, RouterArrival, RouterConfig, RouterEvent, RouterEventKind,
    RouterReport, RouterSim, RouterStats, ServiceModel, NO_REQUEST,
};
pub use router_server::RouterServer;
pub use server::{
    GroundingModel, Response, ResponseMeta, ResponseSource, ServeConfig, ServeDtype, ServeResult,
    Server, ServerCore, YolloBackend,
};
pub use sim::{Arrival, SimReport, Simulation};
pub use slo::{
    reconcile_flights, validate_request_chains, ChainSummary, FlightOutcome, FlightRecord,
    Percentiles, SloReport,
};
