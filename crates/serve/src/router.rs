//! The resilient multi-replica router tier.
//!
//! [`Router`] fronts N [`ServerCore`] replicas and composes the crate's
//! resilience machinery into one deterministic scheduler:
//!
//! * **scene-affinity routing** — requests are keyed by scene content hash
//!   on a consistent-hash [`HashRing`], so each scene's traffic (and its
//!   cached responses) stays on one replica, with "next distinct replica
//!   around the ring" as the bounded-remap failover order;
//! * **health** — every replica has a [`HealthState`] circuit breaker fed
//!   by request outcomes and heartbeat probes; open circuits are skipped
//!   at routing time;
//! * **deadlines** — every request carries one absolute deadline from
//!   admission through batcher, worker, retries and hedges; when it passes
//!   the client gets [`ServeError::DeadlineExceeded`] even if a replica is
//!   hung and will never answer;
//! * **retries** — retryable failures ([`ServeError::is_retryable`]) are
//!   re-dispatched to a fallback replica after a jittered back-off
//!   ([`RetryPolicy`]), within the attempt budget and the deadline;
//! * **hedging** — [`Priority::Interactive`] requests optionally dispatch
//!   a duplicate to the next replica when the primary is slow; first
//!   answer wins, the loser is discarded;
//! * **degradation** — per-priority-class admission caps shed the least
//!   important traffic first, and when *every* circuit is open the router
//!   still answers whatever the replica response caches hold (cache-only
//!   degraded mode) before shedding with [`ServeError::Unavailable`].
//!
//! Everything runs on the caller's [`Clock`] with no threads and no
//! sleeps; replica misbehavior is injected through
//! [`yollo_core::ReplicaFaultPlan`] (crash / hang / slow / flap) and the
//! whole chaos schedule replays bit-identically — the [`RouterEvent`] log
//! is the run's fingerprint. [`RouterSim`] drives arrival scripts the same
//! way [`crate::Simulation`] does for a single core.

use std::collections::HashMap;
use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use yollo_core::{encode_query_strict, scene_hash, GroundingPrediction, ReplicaFaultPlan};
use yollo_obs::{alloc_child, alloc_root, counter, emit_span, histogram, TraceContext};
use yollo_synthref::Scene;
use yollo_tensor::Tensor;
use yollo_text::Vocab;

use crate::clock::{Clock, NoopWaker, VirtualClock};
use crate::error::ServeError;
use crate::health::{CircuitState, HealthConfig, HealthState};
use crate::retry::{JitterRng, RetryPolicy};
use crate::ring::HashRing;
use crate::server::{
    Delivery, GroundingModel, Response, ResponseMeta, ResponseSource, ServeConfig, ServeResult,
    ServerCore,
};
use crate::slo::{FlightOutcome, FlightRecord, SloReport};

/// Per-class metric names, indexed by [`Priority::index`]. Both router
/// drivers (deterministic [`Router`] and threaded
/// [`crate::RouterServer`]) record the same names — the metric-parity
/// contract tested in `tests/trace.rs`.
pub(crate) const CLASS_SHED: [&str; 3] = [
    "router.interactive.shed",
    "router.standard.shed",
    "router.bulk.shed",
];
/// Per-class retry counters (see [`CLASS_SHED`]).
pub(crate) const CLASS_RETRIES: [&str; 3] = [
    "router.interactive.retries",
    "router.standard.retries",
    "router.bulk.retries",
];
/// Per-class deadline-expiry counters (see [`CLASS_SHED`]).
pub(crate) const CLASS_DEADLINE: [&str; 3] = [
    "router.interactive.deadline_exceeded",
    "router.standard.deadline_exceeded",
    "router.bulk.deadline_exceeded",
];
/// Per-class end-to-end latency histograms (see [`CLASS_SHED`]).
pub(crate) const CLASS_REQUEST_NS: [&str; 3] = [
    "router.interactive.request_ns",
    "router.standard.request_ns",
    "router.bulk.request_ns",
];

/// Marks replica-level [`RouterEvent`]s that belong to no request.
pub const NO_REQUEST: u64 = u64::MAX;

/// Traffic priority classes, in descending importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Tail-latency-sensitive traffic; eligible for hedged dispatch.
    Interactive,
    /// The default class.
    Standard,
    /// Throughput traffic; first to be shed under overload.
    Bulk,
}

impl Priority {
    /// Dense index for per-class tables.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Bulk => 2,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Bulk => "bulk",
        }
    }
}

/// Virtual-time batch service cost, used by the deterministic scheduler to
/// model replica occupancy (a slow replica's queue backs up; a fast one
/// drains). All zeros (the default) makes batches instantaneous.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceModel {
    /// Fixed cost per batch.
    pub base_ns: u64,
    /// Marginal cost per batched request.
    pub per_item_ns: u64,
}

/// Tunables of the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Server replicas behind the router.
    pub replicas: usize,
    /// Ring points per replica (more = better balance).
    pub vnodes: usize,
    /// End-to-end per-request deadline from router admission (0 = none).
    pub deadline_ns: u64,
    /// Retry budget and back-off shape.
    pub retry: RetryPolicy,
    /// Hedge [`Priority::Interactive`] requests after this long without an
    /// answer (0 disables hedging).
    pub hedge_delay_ns: u64,
    /// Circuit-breaker tuning, applied to every replica.
    pub health: HealthConfig,
    /// Router-level inflight cap per priority class
    /// (`[interactive, standard, bulk]`); beyond it, that class is shed.
    pub class_capacity: [usize; 3],
    /// Seed for back-off jitter (deterministic per seed).
    pub seed: u64,
    /// Virtual-time service cost model for replica batches.
    pub service: ServiceModel,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            vnodes: 64,
            deadline_ns: 50_000_000, // 50 ms
            retry: RetryPolicy::default(),
            hedge_delay_ns: 0,
            health: HealthConfig::default(),
            class_capacity: [32, 64, 32],
            seed: 0x5EED,
            service: ServiceModel::default(),
        }
    }
}

/// What happened, when, to which request — the deterministic fingerprint
/// of a router run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterEvent {
    /// Clock reading of the event.
    pub at_ns: u64,
    /// Request sequence number, or [`NO_REQUEST`] for replica-level
    /// events.
    pub seq: u64,
    /// What happened.
    pub kind: RouterEventKind,
}

/// The event alphabet of [`RouterEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterEventKind {
    /// An attempt was dispatched to a replica.
    Routed {
        /// Target replica.
        replica: usize,
        /// 1-based attempt number.
        attempt: usize,
    },
    /// A hedged duplicate was dispatched.
    Hedged {
        /// Target replica.
        replica: usize,
    },
    /// A terminal answer was delivered to the client.
    Delivered {
        /// Replica that produced the answer (or last failed).
        replica: usize,
        /// Whether the answer was a prediction.
        ok: bool,
    },
    /// The request's deadline passed; the client got
    /// [`ServeError::DeadlineExceeded`].
    DeadlineExceeded,
    /// The request was shed at admission (class capacity).
    Shed,
    /// Answered from a replica cache while every circuit was open.
    DegradedHit,
    /// Every circuit open and no cached answer: [`ServeError::Unavailable`].
    Unavailable,
    /// A replica's circuit opened.
    CircuitOpened {
        /// The replica.
        replica: usize,
    },
    /// A replica's circuit closed again.
    CircuitClosed {
        /// The replica.
        replica: usize,
    },
    /// A heartbeat probe failed.
    ProbeFailed {
        /// The replica.
        replica: usize,
    },
}

/// Aggregate counters of one router's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests offered to [`Router::submit`] (valid or not).
    pub submitted: u64,
    /// Requests accepted into the pending table.
    pub accepted: u64,
    /// Requests shed at admission (class capacity).
    pub shed: u64,
    /// Requests answered from a cache in degraded mode.
    pub degraded_hits: u64,
    /// Requests shed because every replica was down and nothing cached.
    pub unavailable: u64,
    /// Terminal `Ok` deliveries.
    pub delivered_ok: u64,
    /// Terminal error deliveries (excluding deadline expiries).
    pub delivered_err: u64,
    /// Terminal deadline expiries.
    pub deadline_exceeded: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Hedged duplicates dispatched.
    pub hedges: u64,
    /// Requests whose hedge answered first.
    pub hedge_wins: u64,
    /// Failed attempts observed (including shed-at-replica).
    pub replica_failures: u64,
}

impl RouterStats {
    /// Fraction of non-shed load that got an `Ok` answer:
    /// `(ok + degraded hits) / (accepted + degraded hits)`.
    pub fn availability(&self) -> f64 {
        let answered = self.delivered_ok + self.degraded_hits;
        let offered = self.accepted + self.degraded_hits;
        answered as f64 / offered.max(1) as f64
    }
}

/// Wraps a replica's model with its [`ReplicaFaultPlan`]'s crash schedule:
/// the k-th request the replica processes panics the worker if the plan
/// says so. Hang / slow / flap faults are consumed by the router
/// scheduler, not here. The plan is shared (`Arc<Mutex>`) so tests can
/// inject faults after construction.
pub struct FaultedModel<M> {
    inner: M,
    plan: Arc<Mutex<ReplicaFaultPlan>>,
    processed: AtomicUsize,
}

impl<M> FaultedModel<M> {
    /// Wraps `inner` with a shared fault plan.
    pub fn new(inner: M, plan: Arc<Mutex<ReplicaFaultPlan>>) -> Self {
        FaultedModel {
            inner,
            plan,
            processed: AtomicUsize::new(0),
        }
    }
}

impl<M: GroundingModel> GroundingModel for FaultedModel<M> {
    fn predict_batch(&self, images: Tensor, queries: &[Vec<usize>]) -> Vec<GroundingPrediction> {
        let start = self.processed.fetch_add(queries.len(), Ordering::SeqCst);
        // Consume the crash injection *before* panicking, with the lock
        // released, so a poisoned mutex never outlives the caught panic.
        let crash = {
            let mut plan = self.plan.lock().expect("fault plan poisoned");
            (start + 1..=start + queries.len()).find(|&k| plan.take_crash_request(k))
        };
        if let Some(k) = crash {
            panic!("injected replica crash at request {k}");
        }
        self.inner.predict_batch(images, queries)
    }
}

struct Replica<M: GroundingModel> {
    core: ServerCore<FaultedModel<M>>,
    plan: Arc<Mutex<ReplicaFaultPlan>>,
    busy_until_ns: u64,
    /// Virtual service cost charged per batch id, so a delivered request
    /// can attribute its service time even though the core's wall-clock
    /// measurement is ~0 under a virtual clock.
    batch_cost: HashMap<u64, u64>,
}

/// One outstanding dispatch (primary or hedge) of a pending request.
struct Attempt {
    replica: usize,
    /// 1-based attempt ordinal (a hedge shares its primary's ordinal).
    no: usize,
    /// Span name emitted at resolution: `router.attempt` or `router.hedge`.
    name: &'static str,
    resp: Response,
    /// Child context handed to the replica core; also the attempt span's
    /// own identity.
    ctx: TraceContext,
    /// Obs-clock start, so the attempt span brackets dispatch→resolution.
    started_real_ns: u64,
}

struct PendingReq {
    seq: u64,
    scene: Scene,
    query: String,
    class: Priority,
    key: u64,
    admitted_ns: u64,
    admitted_real_ns: u64,
    deadline_ns: u64,
    attempts: usize,
    tried: Vec<usize>,
    ctx: TraceContext,
    primary: Option<Attempt>,
    hedge: Option<Attempt>,
    retry_due_ns: u64,
    hedge_due_ns: u64,
    last_error: Option<ServeError>,
    // Flight-record accumulation.
    first_replica: Option<usize>,
    batch_id: u64,
    queue_ns: u64,
    service_ns: u64,
    hedged: bool,
    hedge_won: bool,
    tx: Sender<Delivery>,
}

/// The deterministic multi-replica router. See the module docs.
pub struct Router<M: GroundingModel> {
    cfg: RouterConfig,
    clock: Arc<dyn Clock>,
    ring: HashRing,
    replicas: Vec<Replica<M>>,
    health: Vec<HealthState>,
    pending: Vec<PendingReq>,
    class_inflight: [usize; 3],
    next_seq: u64,
    next_probe_ns: u64,
    rng: JitterRng,
    events: Vec<RouterEvent>,
    stats: RouterStats,
    flights: Vec<FlightRecord>,
}

impl<M: GroundingModel> Router<M> {
    /// A router over `cfg.replicas` fresh [`ServerCore`]s on `clock`;
    /// `factory(i)` builds replica `i`'s model. Every replica starts with
    /// an empty fault plan — inject faults with [`Router::set_fault_plan`].
    pub fn new(
        cfg: RouterConfig,
        serve_cfg: ServeConfig,
        vocab: Vocab,
        clock: Arc<dyn Clock>,
        mut factory: impl FnMut(usize) -> M,
    ) -> Self {
        assert!(cfg.replicas > 0, "router needs at least one replica");
        let ring = HashRing::new(cfg.replicas, cfg.vnodes);
        let replicas = (0..cfg.replicas)
            .map(|i| {
                let plan = Arc::new(Mutex::new(ReplicaFaultPlan::new()));
                let model = FaultedModel::new(factory(i), Arc::clone(&plan));
                Replica {
                    core: ServerCore::with_clock(
                        model,
                        vocab.clone(),
                        serve_cfg.clone(),
                        Arc::clone(&clock),
                        Arc::new(NoopWaker),
                    ),
                    plan,
                    busy_until_ns: 0,
                    batch_cost: HashMap::new(),
                }
            })
            .collect();
        let health = (0..cfg.replicas)
            .map(|_| HealthState::new(cfg.health.clone()))
            .collect();
        let next_probe_ns = cfg.health.probe_interval_ns.max(1);
        let rng = JitterRng::new(cfg.seed);
        Router {
            cfg,
            clock,
            ring,
            replicas,
            health,
            pending: Vec::new(),
            class_inflight: [0; 3],
            next_seq: 0,
            next_probe_ns,
            rng,
            events: Vec::new(),
            stats: RouterStats::default(),
            flights: Vec::new(),
        }
    }

    /// Replaces replica `r`'s fault plan (crash faults are consumed from
    /// the new plan; hang / slow / flap read from it).
    pub fn set_fault_plan(&mut self, replica: usize, plan: ReplicaFaultPlan) {
        *self.replicas[replica].plan.lock().expect("fault plan") = plan;
    }

    /// Admits one request at the current clock reading. The returned
    /// [`Response`] resolves with exactly one terminal result: an answer,
    /// a shed, or a deadline expiry — never nothing.
    pub fn submit(
        &mut self,
        scene: &Scene,
        query: &str,
        class: Priority,
    ) -> Result<Response, ServeError> {
        let now = self.clock.now_ns();
        self.stats.submitted += 1;
        counter!("router.requests").incr();
        // Validate before consuming a class slot: an invalid request is
        // the client's fault, not load.
        let serve_cfg = self.replicas[0].core.config();
        if (scene.width, scene.height) != (serve_cfg.image_width, serve_cfg.image_height) {
            return Err(ServeError::SceneMismatch {
                got: (scene.width, scene.height),
                want: (serve_cfg.image_width, serve_cfg.image_height),
            });
        }
        let max_tokens = serve_cfg.max_tokens;
        encode_query_strict(self.replicas[0].core.vocab(), query, max_tokens)?;

        let seq = self.next_seq;
        self.next_seq += 1;
        let ci = class.index();

        let key = scene_hash(scene);
        let (tx, rx) = channel();
        let deadline_ns = if self.cfg.deadline_ns > 0 {
            now.saturating_add(self.cfg.deadline_ns)
        } else {
            u64::MAX
        };
        // Every valid request gets a trace root — shed and degraded
        // answers show up in the span dump with their outcome, not just
        // successes.
        let mut req = PendingReq {
            seq,
            scene: scene.clone(),
            query: query.to_owned(),
            class,
            key,
            admitted_ns: now,
            admitted_real_ns: yollo_obs::now_ns(),
            deadline_ns,
            attempts: 0,
            tried: Vec::new(),
            ctx: alloc_root(),
            primary: None,
            hedge: None,
            retry_due_ns: u64::MAX,
            hedge_due_ns: u64::MAX,
            last_error: None,
            first_replica: None,
            batch_id: 0,
            queue_ns: 0,
            service_ns: 0,
            hedged: false,
            hedge_won: false,
            tx,
        };

        if self.class_inflight[ci] >= self.cfg.class_capacity[ci] {
            self.stats.shed += 1;
            counter!("router.shed").incr();
            yollo_obs::registry().counter(CLASS_SHED[ci]).incr();
            self.push_event(now, seq, RouterEventKind::Shed);
            self.finish_flight(&mut req, FlightOutcome::Shed, None, now, false);
            return Err(ServeError::Overloaded {
                inflight: self.class_inflight[ci],
                capacity: self.cfg.class_capacity[ci],
            });
        }

        let target = self.pick_replica(key, &req.tried, now);
        match target {
            Some(r) => {
                self.stats.accepted += 1;
                self.class_inflight[ci] += 1;
                let terminal = self.dispatch(&mut req, r, now) || self.step_request(&mut req, now);
                if terminal {
                    self.class_inflight[ci] -= 1;
                } else {
                    self.pending.push(req);
                }
                Ok(Response::from_rx(rx))
            }
            None => {
                // Degraded mode: every circuit is open; answer from any
                // replica cache (preference order) or shed.
                for r in self.ring.preference(key) {
                    if let Some(pred) = self.replicas[r].core.cache_lookup(scene, query) {
                        self.stats.degraded_hits += 1;
                        counter!("router.degraded_hits").incr();
                        self.push_event(now, seq, RouterEventKind::DegradedHit);
                        self.finish_flight(
                            &mut req,
                            FlightOutcome::DegradedHit,
                            Some(r),
                            now,
                            false,
                        );
                        let _ = req.tx.send(Delivery {
                            result: Ok(pred),
                            meta: ResponseMeta::out_of_band(ResponseSource::Router),
                        });
                        return Ok(Response::from_rx(rx));
                    }
                }
                self.stats.unavailable += 1;
                counter!("router.unavailable").incr();
                self.push_event(now, seq, RouterEventKind::Unavailable);
                self.finish_flight(&mut req, FlightOutcome::Unavailable, None, now, false);
                Err(ServeError::Unavailable {
                    replicas: self.cfg.replicas,
                })
            }
        }
    }

    /// Runs everything due at the current clock reading: heartbeat probes,
    /// replica batch execution (respecting hang windows and service-time
    /// occupancy), response collection, deadline expiry, retries and
    /// hedges. Returns how many units of progress were made; call until 0
    /// for a fixed point at this instant.
    pub fn tick(&mut self) -> usize {
        let now = self.clock.now_ns();
        let mut progress = self.run_probes(now);
        progress += self.tick_replicas(now);

        // Step every pending request against its outstanding attempts,
        // deadline, retry and hedge timers — in sequence order, so the
        // event log is a deterministic fingerprint.
        let mut kept = Vec::with_capacity(self.pending.len());
        let mut pending = mem::take(&mut self.pending);
        for mut req in pending.drain(..) {
            let before = (req.attempts, req.hedge.is_some());
            if self.step_request(&mut req, now) {
                self.class_inflight[req.class.index()] -= 1;
                progress += 1;
            } else {
                if (req.attempts, req.hedge.is_some()) != before {
                    progress += 1;
                }
                kept.push(req);
            }
        }
        self.pending = kept;
        progress
    }

    /// The earliest future instant at which [`Router::tick`] has work, or
    /// `None` when nothing is outstanding. Drivers on a [`VirtualClock`]
    /// jump time here between ticks.
    pub fn next_event_ns(&self) -> Option<u64> {
        if self.pending.is_empty() {
            return None;
        }
        let now = self.clock.now_ns();
        let mut next = u64::MAX;
        let mut consider = |t: u64| {
            if t < next {
                next = t;
            }
        };
        if self.cfg.health.probe_interval_ns > 0 {
            consider(self.next_probe_ns);
        }
        for req in &self.pending {
            consider(req.deadline_ns);
            consider(req.retry_due_ns);
            consider(req.hedge_due_ns);
            // An answer hidden behind a busy replica becomes visible when
            // the batch completes.
            for attempt in [&req.primary, &req.hedge].into_iter().flatten() {
                let busy = self.replicas[attempt.replica].busy_until_ns;
                if busy > now {
                    consider(busy);
                }
            }
        }
        for rep in &self.replicas {
            if let Some(d) = rep.core.next_deadline_ns() {
                let mut t = d.max(now).max(rep.busy_until_ns);
                let plan = rep.plan.lock().expect("fault plan");
                if let Some(end) = plan.hung_until(t) {
                    t = end;
                }
                consider(t);
            }
        }
        (next != u64::MAX).then_some(next)
    }

    /// Requests currently outstanding inside the router.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The event log so far — the determinism fingerprint.
    pub fn events(&self) -> &[RouterEvent] {
        &self.events
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Per-request flight records so far, in terminal order. One record
    /// per valid submission — accepted or not — reconcilable against
    /// [`Router::events`] with [`crate::reconcile_flights`].
    pub fn flight_records(&self) -> &[FlightRecord] {
        &self.flights
    }

    /// SLO accounting aggregated from the flight records so far.
    pub fn slo_report(&self) -> SloReport {
        SloReport::from_flights(&self.flights)
    }

    /// Replica `r`'s current circuit position.
    pub fn circuit_state(&self, replica: usize) -> CircuitState {
        self.health[replica].state()
    }

    /// Cache hits served by replica cores at admission (sum over
    /// replicas), from each core's own counters.
    pub fn replica_cache_len(&self, replica: usize) -> usize {
        self.replicas[replica].core.cache_len()
    }

    // ---------------------------------------------------------- internals

    fn push_event(&mut self, at_ns: u64, seq: u64, kind: RouterEventKind) {
        self.events.push(RouterEvent { at_ns, seq, kind });
    }

    fn pick_replica(&mut self, key: u64, exclude: &[usize], now: u64) -> Option<usize> {
        let health = &mut self.health;
        self.ring
            .route_healthy(key, |r| !exclude.contains(&r) && health[r].allow(now))
            .or_else(|| {
                // Nothing untried is healthy: allow a healthy already-tried
                // replica rather than failing outright.
                if exclude.is_empty() {
                    None
                } else {
                    let health = &mut self.health;
                    self.ring.route_healthy(key, |r| health[r].allow(now))
                }
            })
    }

    /// Dispatches one attempt of `req` to `replica`. Returns `true` when
    /// the request reached a terminal state (synchronous failure with no
    /// retry budget left).
    fn dispatch(&mut self, req: &mut PendingReq, replica: usize, now: u64) -> bool {
        req.attempts += 1;
        if !req.tried.contains(&replica) {
            req.tried.push(replica);
        }
        if req.first_replica.is_none() {
            req.first_replica = Some(replica);
        }
        counter!("router.dispatches").incr();
        self.push_event(
            now,
            req.seq,
            RouterEventKind::Routed {
                replica,
                attempt: req.attempts,
            },
        );
        // The attempt is a child span of the request root; the replica
        // core hangs its queued/exec spans under it, so a delivered
        // request's trace reads admission → attempt → batch → answer.
        let actx = alloc_child(req.ctx);
        let started_real_ns = yollo_obs::now_ns();
        let submitted = self.replicas[replica].core.submit_traced(
            &req.scene,
            &req.query,
            req.deadline_ns,
            actx,
        );
        match submitted {
            Ok(resp) => {
                req.primary = Some(Attempt {
                    replica,
                    no: req.attempts,
                    name: "router.attempt",
                    resp,
                    ctx: actx,
                    started_real_ns,
                });
                if self.cfg.hedge_delay_ns > 0
                    && req.class == Priority::Interactive
                    && req.hedge.is_none()
                    && self.cfg.replicas > 1
                {
                    req.hedge_due_ns = now.saturating_add(self.cfg.hedge_delay_ns);
                }
                false
            }
            Err(e) => {
                // Synchronous rejection: the attempt span closes here.
                if !actx.is_none() {
                    let end = yollo_obs::now_ns();
                    emit_span(
                        "router.attempt",
                        actx,
                        req.ctx.span,
                        started_real_ns,
                        end.saturating_sub(started_real_ns),
                        &[
                            ("replica", replica as u64),
                            ("attempt", req.attempts as u64),
                            ("ok", 0),
                        ],
                    );
                }
                self.on_attempt_failure(req, replica, e, now)
            }
        }
    }

    /// Handles a failed attempt: feeds health, then schedules a retry or
    /// delivers the error. Returns `true` when terminal.
    fn on_attempt_failure(
        &mut self,
        req: &mut PendingReq,
        replica: usize,
        err: ServeError,
        now: u64,
    ) -> bool {
        self.note_failure(replica, now);
        self.stats.replica_failures += 1;
        counter!("router.replica_failures").incr();
        if err.is_retryable() && self.cfg.retry.may_retry(req.attempts) {
            let backoff = self.cfg.retry.backoff_ns(req.attempts + 1, &mut self.rng);
            let due = now.saturating_add(backoff);
            if due < req.deadline_ns {
                req.retry_due_ns = due;
                // Cancel any armed hedge timer: with no primary
                // outstanding it could never fire (a stale timer would
                // livelock `next_event_ns`); the retry dispatch re-arms
                // it for hedge-eligible requests.
                req.hedge_due_ns = u64::MAX;
                req.last_error = Some(err);
                self.stats.retries += 1;
                counter!("router.retries").incr();
                yollo_obs::registry()
                    .counter(CLASS_RETRIES[req.class.index()])
                    .incr();
                return false;
            }
        }
        self.deliver(req, replica, Err(err), now);
        true
    }

    /// Delivers a terminal result and records it: stats, metrics (global
    /// and per-class), the `Delivered` event, the flight record and the
    /// request root span, then the client's [`Delivery`].
    fn deliver(&mut self, req: &mut PendingReq, replica: usize, result: ServeResult, now: u64) {
        let ok = result.is_ok();
        if ok {
            self.stats.delivered_ok += 1;
            counter!("router.delivered").incr();
        } else {
            self.stats.delivered_err += 1;
            counter!("router.failed").incr();
        }
        let waited = now.saturating_sub(req.admitted_ns);
        histogram!("router.request_ns").record(waited);
        yollo_obs::registry()
            .histogram(CLASS_REQUEST_NS[req.class.index()])
            .record(waited);
        self.push_event(now, req.seq, RouterEventKind::Delivered { replica, ok });
        let outcome = if ok {
            FlightOutcome::Ok
        } else {
            FlightOutcome::Error
        };
        self.finish_flight(req, outcome, Some(replica), now, true);
        let _ = req.tx.send(Delivery {
            result,
            meta: ResponseMeta {
                source: ResponseSource::Router,
                batch_id: req.batch_id,
                queue_ns: req.queue_ns,
                service_ns: req.service_ns,
            },
        });
    }

    /// Closes out a request's trace and flight record at its terminal
    /// state: abandons any still-outstanding attempt spans, emits the
    /// `router.request` root span, and appends the [`FlightRecord`].
    fn finish_flight(
        &mut self,
        req: &mut PendingReq,
        outcome: FlightOutcome,
        served: Option<usize>,
        now: u64,
        accepted: bool,
    ) {
        for att in req.primary.take().into_iter().chain(req.hedge.take()) {
            Self::emit_attempt_span(&att, req.ctx.span, ("abandoned", 1));
        }
        if !req.ctx.is_none() {
            let end = yollo_obs::now_ns();
            emit_span(
                "router.request",
                req.ctx,
                0,
                req.admitted_real_ns,
                end.saturating_sub(req.admitted_real_ns),
                &[
                    ("seq", req.seq),
                    ("class", req.class.index() as u64),
                    ("attempts", req.attempts as u64),
                    ("outcome", outcome.code()),
                    // 1-based so 0 means "no replica answered".
                    ("replica", served.map_or(0, |r| r as u64 + 1)),
                    ("batch", req.batch_id),
                ],
            );
        }
        self.flights.push(FlightRecord {
            seq: req.seq,
            trace: req.ctx.trace,
            class: req.class,
            accepted,
            first_replica: req.first_replica,
            served_by: served,
            attempts: req.attempts,
            hedged: req.hedged,
            hedge_won: req.hedge_won,
            batch_id: req.batch_id,
            admitted_ns: req.admitted_ns,
            total_ns: now.saturating_sub(req.admitted_ns),
            queue_ns: req.queue_ns,
            service_ns: req.service_ns,
            outcome,
        });
    }

    /// Emits the span of a resolved (or abandoned) attempt.
    fn emit_attempt_span(att: &Attempt, parent_span: u64, status: (&'static str, u64)) {
        if att.ctx.is_none() {
            return;
        }
        let end = yollo_obs::now_ns();
        emit_span(
            att.name,
            att.ctx,
            parent_span,
            att.started_real_ns,
            end.saturating_sub(att.started_real_ns),
            &[
                ("replica", att.replica as u64),
                ("attempt", att.no as u64),
                status,
            ],
        );
    }

    /// Copies a winning attempt's batch accounting onto the request:
    /// batch id and queue wait from the replica core's [`ResponseMeta`],
    /// service time from the core's measurement or — under a virtual
    /// clock, where that is ~0 — the [`ServiceModel`] cost charged for
    /// the batch.
    fn attribute(&self, req: &mut PendingReq, att: &Attempt, meta: &ResponseMeta) {
        req.batch_id = meta.batch_id;
        req.queue_ns = meta.queue_ns;
        let cost = self.replicas[att.replica]
            .batch_cost
            .get(&meta.batch_id)
            .copied()
            .unwrap_or(0);
        req.service_ns = meta.service_ns.max(cost);
    }

    /// Advances one pending request at `now`. Returns `true` when the
    /// request reached a terminal state.
    fn step_request(&mut self, req: &mut PendingReq, now: u64) -> bool {
        // 1. End-to-end deadline: answer even if a hung replica never will.
        if now >= req.deadline_ns {
            if let Some(att) = &req.primary {
                let r = att.replica;
                self.note_failure(r, now);
            }
            self.stats.deadline_exceeded += 1;
            counter!("router.deadline_exceeded").incr();
            yollo_obs::registry()
                .counter(CLASS_DEADLINE[req.class.index()])
                .incr();
            let waited = now.saturating_sub(req.admitted_ns);
            histogram!("router.request_ns").record(waited);
            yollo_obs::registry()
                .histogram(CLASS_REQUEST_NS[req.class.index()])
                .record(waited);
            self.push_event(now, req.seq, RouterEventKind::DeadlineExceeded);
            self.finish_flight(req, FlightOutcome::DeadlineExceeded, None, now, true);
            let _ = req.tx.send(Delivery {
                result: Err(ServeError::DeadlineExceeded {
                    waited_ns: waited,
                    deadline_ns: req.deadline_ns,
                }),
                meta: ResponseMeta {
                    source: ResponseSource::Router,
                    batch_id: req.batch_id,
                    queue_ns: req.queue_ns,
                    service_ns: req.service_ns,
                },
            });
            return true;
        }
        // 2. Primary attempt outcome. A batch started at `t` completes at
        // `t + service cost`, so a replica's answers only become visible
        // once it is no longer busy — that is what makes a slowed replica
        // actually answer late (and hedges worth having).
        if let Some(att) = &req.primary {
            let r = att.replica;
            if self.replicas[r].busy_until_ns <= now {
                if let Some((result, meta)) = att.resp.try_now_with_meta() {
                    let att = req.primary.take().expect("primary attempt present");
                    match result {
                        Ok(pred) => {
                            Self::emit_attempt_span(&att, req.ctx.span, ("ok", 1));
                            self.attribute(req, &att, &meta);
                            self.note_success(r, now);
                            self.deliver(req, r, Ok(pred), now);
                            return true;
                        }
                        Err(e) => {
                            Self::emit_attempt_span(&att, req.ctx.span, ("ok", 0));
                            if self.on_attempt_failure(req, r, e, now) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        // 3. Hedge outcome: a winning hedge delivers; a failing one is
        // discarded (the primary attempt is still the request's fate).
        if let Some(att) = &req.hedge {
            let r = att.replica;
            if self.replicas[r].busy_until_ns <= now {
                if let Some((result, meta)) = att.resp.try_now_with_meta() {
                    let att = req.hedge.take().expect("hedge attempt present");
                    match result {
                        Ok(pred) => {
                            Self::emit_attempt_span(&att, req.ctx.span, ("ok", 1));
                            self.attribute(req, &att, &meta);
                            self.note_success(r, now);
                            self.stats.hedge_wins += 1;
                            counter!("router.hedge_wins").incr();
                            req.hedge_won = true;
                            self.deliver(req, r, Ok(pred), now);
                            return true;
                        }
                        Err(_) => {
                            Self::emit_attempt_span(&att, req.ctx.span, ("ok", 0));
                            self.note_failure(r, now);
                            self.stats.replica_failures += 1;
                            counter!("router.replica_failures").incr();
                            // If the primary already failed and is waiting
                            // on a retry, the hedge failure changes nothing.
                        }
                    }
                }
            }
        }
        // 4. Due retry.
        if req.retry_due_ns <= now && req.primary.is_none() {
            req.retry_due_ns = u64::MAX;
            match self.pick_replica(req.key, &req.tried.clone(), now) {
                Some(r) => {
                    if self.dispatch(req, r, now) {
                        return true;
                    }
                }
                None => {
                    // Every circuit open mid-request: degraded cache or a
                    // terminal answer with the last error.
                    for r in self.ring.preference(req.key) {
                        if let Some(pred) =
                            self.replicas[r].core.cache_lookup(&req.scene, &req.query)
                        {
                            self.stats.degraded_hits += 1;
                            counter!("router.degraded_hits").incr();
                            self.push_event(now, req.seq, RouterEventKind::DegradedHit);
                            self.finish_flight(req, FlightOutcome::DegradedHit, Some(r), now, true);
                            let _ = req.tx.send(Delivery {
                                result: Ok(pred),
                                meta: ResponseMeta::out_of_band(ResponseSource::Router),
                            });
                            return true;
                        }
                    }
                    let err = req.last_error.clone().unwrap_or(ServeError::Unavailable {
                        replicas: self.cfg.replicas,
                    });
                    self.deliver(req, req.tried.last().copied().unwrap_or(0), Err(err), now);
                    return true;
                }
            }
        }
        // 5. Due hedge.
        if req.hedge_due_ns <= now && req.hedge.is_none() && req.primary.is_some() {
            req.hedge_due_ns = u64::MAX;
            let tried = req.tried.clone();
            if let Some(r) = self.pick_replica(req.key, &tried, now) {
                if !tried.contains(&r) {
                    self.stats.hedges += 1;
                    counter!("router.hedges").incr();
                    self.push_event(now, req.seq, RouterEventKind::Hedged { replica: r });
                    req.tried.push(r);
                    req.hedged = true;
                    let actx = alloc_child(req.ctx);
                    let started_real_ns = yollo_obs::now_ns();
                    match self.replicas[r].core.submit_traced(
                        &req.scene,
                        &req.query,
                        req.deadline_ns,
                        actx,
                    ) {
                        Ok(resp) => {
                            req.hedge = Some(Attempt {
                                replica: r,
                                no: req.attempts,
                                name: "router.hedge",
                                resp,
                                ctx: actx,
                                started_real_ns,
                            });
                        }
                        Err(_) if !actx.is_none() => {
                            let end = yollo_obs::now_ns();
                            emit_span(
                                "router.hedge",
                                actx,
                                req.ctx.span,
                                started_real_ns,
                                end.saturating_sub(started_real_ns),
                                &[
                                    ("replica", r as u64),
                                    ("attempt", req.attempts as u64),
                                    ("ok", 0),
                                ],
                            );
                        }
                        Err(_) => {}
                    }
                }
            }
        }
        false
    }

    fn note_success(&mut self, replica: usize, now: u64) {
        if let Some(CircuitState::Closed) = self.health[replica].record_success(now) {
            self.push_event(now, NO_REQUEST, RouterEventKind::CircuitClosed { replica });
        }
    }

    fn note_failure(&mut self, replica: usize, now: u64) {
        if let Some(CircuitState::Open) = self.health[replica].record_failure(now) {
            self.push_event(now, NO_REQUEST, RouterEventKind::CircuitOpened { replica });
        }
    }

    /// Runs every heartbeat probe due at or before `now`. A probe fails
    /// while the replica is hung or its health signal is flapped down.
    /// Successful probes only feed non-closed circuits, so background
    /// probe successes cannot mask a crash-looping data path.
    fn run_probes(&mut self, now: u64) -> usize {
        let interval = self.cfg.health.probe_interval_ns;
        if interval == 0 {
            return 0;
        }
        let mut fired = 0;
        while self.next_probe_ns <= now {
            let t = self.next_probe_ns;
            for r in 0..self.replicas.len() {
                counter!("health.probes").incr();
                let plan = self.replicas[r].plan.lock().expect("fault plan");
                let ok = !plan.is_hung_at(t) && !plan.is_flapped_down(t);
                drop(plan);
                if ok {
                    if self.health[r].state() != CircuitState::Closed && self.health[r].allow(t) {
                        self.note_success(r, t);
                    }
                } else {
                    counter!("health.probe_failures").incr();
                    self.push_event(t, NO_REQUEST, RouterEventKind::ProbeFailed { replica: r });
                    self.note_failure(r, t);
                }
            }
            self.next_probe_ns = t.saturating_add(interval);
            fired += 1;
        }
        fired
    }

    /// Runs due batches on every replica that is neither hung nor busy,
    /// charging virtual service time per batch.
    fn tick_replicas(&mut self, now: u64) -> usize {
        let svc = self.cfg.service;
        let mut progress = 0;
        for rep in &mut self.replicas {
            let (hung, slow) = {
                let plan = rep.plan.lock().expect("fault plan");
                (plan.is_hung_at(now), plan.slow_factor())
            };
            if hung {
                continue;
            }
            // Even a busy replica expires overdue requests — expiry is
            // queue bookkeeping, not model work.
            rep.core.expire();
            if rep.busy_until_ns > now {
                continue;
            }
            loop {
                if rep.core.tick_one() == 0 {
                    break;
                }
                progress += 1;
                let (size, batch_id) = rep
                    .core
                    .boundaries()
                    .last()
                    .map_or((0, 0), |b| (b.size, b.batch_id));
                let cost = svc
                    .base_ns
                    .saturating_add(svc.per_item_ns.saturating_mul(size as u64));
                let cost = (cost as f64 * slow) as u64;
                if cost > 0 {
                    // Remember the charge so delivered requests can report
                    // it as their service time (the core's own wall-clock
                    // measurement is ~0 under a virtual clock).
                    rep.batch_cost.insert(batch_id, cost);
                    rep.busy_until_ns = now.saturating_add(cost);
                    break;
                }
            }
        }
        progress
    }
}

/// One scripted router request: at `at_ns`, submit `query` against scene
/// index `scene` with priority `class`.
#[derive(Debug, Clone)]
pub struct RouterArrival {
    /// Absolute virtual submission time.
    pub at_ns: u64,
    /// Index into the scene list.
    pub scene: usize,
    /// The referring expression.
    pub query: String,
    /// Priority class.
    pub class: Priority,
}

impl RouterArrival {
    /// Convenience constructor.
    pub fn new(at_ns: u64, scene: usize, query: impl Into<String>, class: Priority) -> Self {
        RouterArrival {
            at_ns,
            scene,
            query: query.into(),
            class,
        }
    }
}

/// What one simulated router run did.
#[derive(Debug)]
pub struct RouterReport {
    /// Terminal result of every *accepted* request, in submission order.
    /// The chaos acceptance invariant: this has one entry per accepted
    /// request — none stranded, none doubled.
    pub outcomes: Vec<ServeResult>,
    /// Requests rejected at submission (shed / invalid / unavailable).
    pub rejected: Vec<ServeError>,
    /// The full event log — the determinism fingerprint.
    pub events: Vec<RouterEvent>,
    /// Aggregate counters.
    pub stats: RouterStats,
    /// Per-request flight records, reconcilable against `events` with
    /// [`crate::reconcile_flights`].
    pub flights: Vec<FlightRecord>,
}

/// Replays arrival scripts against a [`Router`] on a virtual clock,
/// advancing time event-by-event exactly like [`crate::Simulation`] does
/// for a single core.
pub struct RouterSim<M: GroundingModel> {
    router: Router<M>,
    clock: Arc<VirtualClock>,
}

impl<M: GroundingModel> RouterSim<M> {
    /// A simulation starting at virtual t = 0.
    pub fn new(
        cfg: RouterConfig,
        serve_cfg: ServeConfig,
        vocab: Vocab,
        factory: impl FnMut(usize) -> M,
    ) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let router = Router::new(
            cfg,
            serve_cfg,
            vocab,
            Arc::clone(&clock) as Arc<dyn Clock>,
            factory,
        );
        RouterSim { router, clock }
    }

    /// The router under simulation (to inject fault plans or inspect
    /// state).
    pub fn router_mut(&mut self) -> &mut Router<M> {
        &mut self.router
    }

    /// The router under simulation.
    pub fn router(&self) -> &Router<M> {
        &self.router
    }

    /// Replays `arrivals` (sorted by `at_ns`) against `scenes`, then runs
    /// the router to quiescence. Every accepted request has a terminal
    /// outcome in the returned report.
    ///
    /// # Panics
    /// Panics if the script is unsorted, indexes a missing scene, or the
    /// router livelocks (only possible with no deadline configured).
    pub fn run(&mut self, scenes: &[Scene], arrivals: &[RouterArrival]) -> RouterReport {
        let mut responses: Vec<Response> = Vec::new();
        let mut rejected = Vec::new();
        for arrival in arrivals {
            assert!(
                arrival.at_ns >= self.clock.now_ns(),
                "arrival script must be sorted by time"
            );
            self.advance_until(arrival.at_ns);
            match self
                .router
                .submit(&scenes[arrival.scene], &arrival.query, arrival.class)
            {
                Ok(resp) => responses.push(resp),
                Err(e) => rejected.push(e),
            }
            self.drain_instant();
        }
        // Quiescence: run every remaining event.
        let mut guard = 0u32;
        loop {
            self.drain_instant();
            match self.router.next_event_ns() {
                Some(t) => {
                    assert!(
                        t > self.clock.now_ns(),
                        "router made no progress on a due event at {t}"
                    );
                    self.clock.set(t);
                }
                None => break,
            }
            guard += 1;
            assert!(guard < 1_000_000, "router failed to quiesce");
        }
        assert_eq!(self.router.pending_len(), 0, "requests left stranded");
        let outcomes = responses
            .into_iter()
            .map(|r| {
                r.try_now()
                    .expect("every accepted request has a terminal response")
            })
            .collect();
        RouterReport {
            outcomes,
            rejected,
            events: self.router.events().to_vec(),
            stats: self.router.stats(),
            flights: self.router.flight_records().to_vec(),
        }
    }

    /// Ticks until the current instant has no more work.
    fn drain_instant(&mut self) {
        while self.router.tick() > 0 {}
    }

    /// Fires every event strictly before `t_ns`, then sets the clock to
    /// `t_ns`.
    fn advance_until(&mut self, t_ns: u64) {
        loop {
            self.drain_instant();
            match self.router.next_event_ns() {
                Some(e) if e <= t_ns => {
                    if e > self.clock.now_ns() {
                        self.clock.set(e);
                    }
                }
                _ => break,
            }
        }
        if t_ns > self.clock.now_ns() {
            self.clock.set(t_ns);
        }
    }
}
