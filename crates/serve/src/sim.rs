//! A deterministic load-script driver.
//!
//! [`Simulation`] replays a fixed [`Arrival`] script against a
//! [`ServerCore`] on a [`VirtualClock`]: between arrivals it advances time
//! deadline-by-deadline, so batches flush at the exact nanosecond the
//! policy dictates. The returned [`BatchBoundary`] sequence is the run's
//! fingerprint — the determinism acceptance test replays one script 100
//! times and demands identical fingerprints.

use std::sync::Arc;

use yollo_synthref::Scene;
use yollo_text::Vocab;

use crate::batcher::BatchBoundary;
use crate::clock::{Clock, NoopWaker, VirtualClock};
use crate::error::ServeError;
use crate::server::{GroundingModel, ServeConfig, ServerCore};

/// One scripted request: at `at_ns`, submit `query` against scene
/// `scene` (an index into the scene list given to [`Simulation::run`]).
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Absolute virtual time of the submission.
    pub at_ns: u64,
    /// Index into the scene list.
    pub scene: usize,
    /// The referring expression.
    pub query: String,
}

impl Arrival {
    /// Convenience constructor.
    pub fn new(at_ns: u64, scene: usize, query: impl Into<String>) -> Self {
        Arrival {
            at_ns,
            scene,
            query: query.into(),
        }
    }
}

/// What one simulated run did.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Every flush, in order.
    pub boundaries: Vec<BatchBoundary>,
    /// Requests answered from the cache (resolved without batching).
    pub cache_hits: usize,
    /// Requests rejected at admission, by error.
    pub rejected: Vec<ServeError>,
}

/// Replays arrival scripts against a [`ServerCore`] on a virtual clock.
pub struct Simulation<M: GroundingModel> {
    core: ServerCore<M>,
    clock: Arc<VirtualClock>,
}

impl<M: GroundingModel> Simulation<M> {
    /// A simulation starting at virtual t = 0.
    pub fn new(model: M, vocab: Vocab, cfg: ServeConfig) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let core = ServerCore::with_clock(
            model,
            vocab,
            cfg,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::new(NoopWaker),
        );
        Simulation { core, clock }
    }

    /// Replays `arrivals` (must be sorted by `at_ns`) against `scenes`,
    /// advancing the virtual clock through every intervening deadline, then
    /// drains the tail. Every accepted request is answered before this
    /// returns.
    ///
    /// # Panics
    /// Panics if the script is not time-sorted or indexes a missing scene.
    pub fn run(&mut self, scenes: &[Scene], arrivals: &[Arrival]) -> SimReport {
        let mut cache_hits = 0;
        let mut rejected = Vec::new();
        for arrival in arrivals {
            assert!(
                arrival.at_ns >= self.clock.now_ns(),
                "arrival script must be sorted by time"
            );
            self.advance_until(arrival.at_ns);
            let scene = &scenes[arrival.scene];
            match self.core.submit(scene, &arrival.query) {
                Ok(resp) => {
                    if resp.try_now().is_some() {
                        cache_hits += 1;
                    }
                }
                Err(e) => rejected.push(e),
            }
            // A full batch flushes at the arrival instant.
            self.core.tick();
        }
        while let Some(deadline) = self.core.next_deadline_ns() {
            if deadline > self.clock.now_ns() {
                self.clock.set(deadline);
            }
            self.core.tick();
        }
        SimReport {
            boundaries: self.core.boundaries().to_vec(),
            cache_hits,
            rejected,
        }
    }

    /// Fires every deadline strictly before `t_ns`, then sets the clock to
    /// `t_ns`.
    fn advance_until(&mut self, t_ns: u64) {
        while let Some(deadline) = self.core.next_deadline_ns() {
            if deadline > t_ns {
                break;
            }
            if deadline > self.clock.now_ns() {
                self.clock.set(deadline);
            }
            self.core.tick();
        }
        if t_ns > self.clock.now_ns() {
            self.clock.set(t_ns);
        }
    }

    /// The underlying core (for inspecting boundaries or inflight count).
    pub fn core(&self) -> &ServerCore<M> {
        &self.core
    }
}
