//! Time and wake-up abstractions that make the batching state machine
//! deterministic under test.
//!
//! The scheduler never calls [`std::time::Instant::now`] or sleeps
//! directly: it reads a [`Clock`] and signals a [`Waker`]. Production code
//! plugs in [`SystemClock`] plus a condvar-backed waker; tests plug in a
//! [`VirtualClock`] they advance by hand, so every deadline fires at an
//! exact, reproducible nanosecond with no real sleeping and no flaky
//! timing.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;
}

/// The real wall clock: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    base: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            base: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }
}

/// A manually-advanced clock for deterministic tests: time moves only when
/// the test says so.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0 ns.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time.
    ///
    /// # Panics
    /// Panics if `ns` would move time backwards.
    pub fn set(&self, ns: u64) {
        let prev = self.now.swap(ns, Ordering::SeqCst);
        assert!(prev <= ns, "virtual clock moved backwards: {prev} -> {ns}");
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// A wake-up signal from the batcher to whatever runs batches.
///
/// The scheduler calls [`Waker::wake`] whenever work may have become
/// runnable: a batch filled up, or a new flush deadline was armed. The
/// threaded server backs this with a condvar notification; single-threaded
/// tests use [`NoopWaker`] (they drive the state machine directly) or
/// [`CountingWaker`] to assert on wake semantics.
pub trait Waker: Send + Sync {
    /// Signals that a batch may be ready or a deadline armed.
    fn wake(&self);
}

/// Ignores wake-ups (for inline, single-threaded driving).
#[derive(Debug, Default)]
pub struct NoopWaker;

impl Waker for NoopWaker {
    fn wake(&self) {}
}

/// Counts wake-ups (for tests asserting when the scheduler signals).
#[derive(Debug, Default)]
pub struct CountingWaker {
    count: AtomicUsize,
}

impl CountingWaker {
    /// A waker with zero recorded wake-ups.
    pub fn new() -> Self {
        CountingWaker::default()
    }

    /// Wake-ups recorded so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }
}

impl Waker for CountingWaker {
    fn wake(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_on_demand() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        assert_eq!(c.now_ns(), 250);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_time_travel() {
        let c = VirtualClock::new();
        c.set(10);
        c.set(5);
    }

    #[test]
    fn system_clock_is_monotonic_nonzero() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn counting_waker_counts() {
        let w = CountingWaker::new();
        w.wake();
        w.wake();
        assert_eq!(w.count(), 2);
        NoopWaker.wake(); // no-op, just exercise it
    }
}
