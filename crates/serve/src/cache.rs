//! A small, allocation-friendly LRU cache for grounding responses.
//!
//! Keys are [`yollo_core::RequestKey`]s (scene content hash + normalised
//! query), so two textually different but semantically identical requests
//! ("the red circle" vs "The  RED circle!") share one entry. The
//! implementation is a `HashMap` into a slab of nodes threaded on an
//! index-based doubly-linked list — no unsafe, no pointer juggling, O(1)
//! get/insert/evict.

use std::collections::HashMap;
use std::hash::Hash;
use std::mem;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
///
/// `get` bumps the entry to most-recently-used; `insert` evicts the
/// least-recently-used entry once `capacity` is exceeded. A capacity of 0
/// disables caching entirely (every `get` misses, every `insert` is
/// dropped).
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Inserts or replaces `key`, evicting the least-recently-used entry if
    /// the cache is full. Returns the evicted `(key, value)`, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        if self.map.len() >= self.capacity {
            // Reuse the least-recently-used slot for the new entry.
            let slot = self.tail;
            self.detach(slot);
            let old = mem::replace(
                &mut self.nodes[slot],
                Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, slot);
            self.attach_front(slot);
            return Some((old.key, old.value));
        }
        self.nodes.push(Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let idx = self.nodes.len() - 1;
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_hit_and_miss() {
        let mut c = LruCache::new(2);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(&1).is_some());
        let evicted = c.insert(3, "three");
        assert_eq!(evicted, Some((2, "two")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), Some(&"three"));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.insert(1, "uno"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&"uno"));
        // 1 was bumped by the reinsert, so 2 is evicted next.
        assert_eq!(c.insert(3, "three"), Some((2, "two")));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(1, "one"), None);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    /// Reference model: a Vec ordered most-recent-first.
    #[derive(Default)]
    struct NaiveLru {
        capacity: usize,
        entries: Vec<(u8, u32)>,
    }

    impl NaiveLru {
        fn get(&mut self, key: u8) -> Option<u32> {
            let pos = self.entries.iter().position(|(k, _)| *k == key)?;
            let e = self.entries.remove(pos);
            let v = e.1;
            self.entries.insert(0, e);
            Some(v)
        }

        fn insert(&mut self, key: u8, value: u32) {
            if self.capacity == 0 {
                return;
            }
            if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
                self.entries.remove(pos);
            } else if self.entries.len() >= self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, (key, value));
        }
    }

    /// Drives both implementations with the same op sequence. Also run as a
    /// plain seeded test below so the property executes even where the
    /// proptest harness is unavailable.
    fn check_against_model(capacity: usize, ops: &[(bool, u8, u32)]) {
        let mut real = LruCache::new(capacity);
        let mut model = NaiveLru {
            capacity,
            ..NaiveLru::default()
        };
        for &(is_insert, key, value) in ops {
            if is_insert {
                real.insert(key, value);
                model.insert(key, value);
            } else {
                assert_eq!(real.get(&key).copied(), model.get(key));
            }
            assert_eq!(real.len(), model.entries.len());
        }
    }

    proptest! {
        #[test]
        fn matches_naive_model(
            capacity in 0usize..5,
            ops in proptest::collection::vec((any::<bool>(), 0u8..8, any::<u32>()), 0..64),
        ) {
            check_against_model(capacity, &ops);
        }
    }

    #[test]
    fn matches_naive_model_seeded() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for _ in 0..200 {
            let capacity = rng.gen_range(0..5);
            let n = rng.gen_range(0..64);
            let ops: Vec<(bool, u8, u32)> = (0..n)
                .map(|_| (rng.gen(), rng.gen_range(0..8), rng.gen()))
                .collect();
            check_against_model(capacity, &ops);
        }
    }
}
