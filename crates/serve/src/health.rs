//! Per-replica health tracking: a circuit breaker fed by request outcomes
//! and heartbeat probes.
//!
//! Each replica carries a [`HealthState`] driven by two signals — the
//! outcome of every routed attempt, and periodic probes the router runs on
//! its clock. The breaker follows the classic three-state machine:
//!
//! * **Closed** — healthy; requests route normally. Opens when failures
//!   reach `failure_threshold` consecutively, or when the error rate over
//!   the last `error_window` outcomes exceeds `error_rate_threshold`.
//! * **Open** — unhealthy; no requests route here. After
//!   `open_duration_ns` the next admission check transitions to half-open.
//! * **Half-open** — trial mode; requests route again, and
//!   `half_open_successes` consecutive successes close the circuit while a
//!   single failure reopens it (restarting the back-off window).
//!
//! All time comes from the caller's [`crate::Clock`] reading, so the whole
//! machine is deterministic under a virtual clock.

use std::collections::VecDeque;

use yollo_obs::counter;

/// Tunables of one replica's circuit breaker.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: usize,
    /// Outcomes remembered for the error-rate signal.
    pub error_window: usize,
    /// Error rate over a **full** window that opens the circuit.
    pub error_rate_threshold: f64,
    /// How long an open circuit blocks traffic before a half-open trial.
    pub open_duration_ns: u64,
    /// Consecutive successes in half-open that close the circuit.
    pub half_open_successes: usize,
    /// Heartbeat probe cadence (0 disables probing).
    pub probe_interval_ns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            error_window: 16,
            error_rate_threshold: 0.5,
            open_duration_ns: 5_000_000, // 5 ms
            half_open_successes: 2,
            probe_interval_ns: 1_000_000, // 1 ms
        }
    }
}

/// The breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: route freely.
    Closed,
    /// Unhealthy: block until the open window lapses.
    Open,
    /// Trialling: route, but one failure reopens.
    HalfOpen,
}

/// One replica's live health state.
#[derive(Debug)]
pub struct HealthState {
    cfg: HealthConfig,
    state: CircuitState,
    consecutive_failures: usize,
    half_open_streak: usize,
    opened_at_ns: u64,
    /// Recent outcomes, `true` = failure, newest at the back.
    window: VecDeque<bool>,
    window_failures: usize,
}

impl HealthState {
    /// A closed (healthy) breaker.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthState {
            cfg,
            state: CircuitState::Closed,
            consecutive_failures: 0,
            half_open_streak: 0,
            opened_at_ns: 0,
            window: VecDeque::new(),
            window_failures: 0,
        }
    }

    /// The current breaker position (without side effects).
    pub fn state(&self) -> CircuitState {
        self.state
    }

    /// May a request route to this replica at `now_ns`? An open circuit
    /// whose back-off has lapsed transitions to half-open here (and
    /// admits the trial request).
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.state {
            CircuitState::Closed | CircuitState::HalfOpen => true,
            CircuitState::Open => {
                if now_ns.saturating_sub(self.opened_at_ns) >= self.cfg.open_duration_ns {
                    counter!("health.circuit_half_open").incr();
                    self.state = CircuitState::HalfOpen;
                    self.half_open_streak = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful attempt (or probe). Returns the new state if
    /// the breaker transitioned.
    pub fn record_success(&mut self, _now_ns: u64) -> Option<CircuitState> {
        self.push_outcome(false);
        self.consecutive_failures = 0;
        if self.state == CircuitState::HalfOpen {
            self.half_open_streak += 1;
            if self.half_open_streak >= self.cfg.half_open_successes {
                counter!("health.circuit_closed").incr();
                self.state = CircuitState::Closed;
                self.reset_window();
                return Some(CircuitState::Closed);
            }
        }
        None
    }

    /// Records a failed attempt (or probe). Returns the new state if the
    /// breaker transitioned.
    pub fn record_failure(&mut self, now_ns: u64) -> Option<CircuitState> {
        self.push_outcome(true);
        self.consecutive_failures += 1;
        match self.state {
            CircuitState::HalfOpen => Some(self.open(now_ns)),
            CircuitState::Closed => {
                let consecutive = self.consecutive_failures >= self.cfg.failure_threshold;
                let window_full = self.window.len() >= self.cfg.error_window;
                let rate = self.window_failures as f64 / self.window.len().max(1) as f64;
                if consecutive || (window_full && rate > self.cfg.error_rate_threshold) {
                    Some(self.open(now_ns))
                } else {
                    None
                }
            }
            CircuitState::Open => None,
        }
    }

    fn open(&mut self, now_ns: u64) -> CircuitState {
        counter!("health.circuit_opened").incr();
        self.state = CircuitState::Open;
        self.opened_at_ns = now_ns;
        self.half_open_streak = 0;
        CircuitState::Open
    }

    fn push_outcome(&mut self, failure: bool) {
        self.window.push_back(failure);
        self.window_failures += failure as usize;
        if self.window.len() > self.cfg.error_window {
            if let Some(evicted) = self.window.pop_front() {
                self.window_failures -= evicted as usize;
            }
        }
    }

    fn reset_window(&mut self) {
        self.window.clear();
        self.window_failures = 0;
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            failure_threshold: 3,
            error_window: 8,
            error_rate_threshold: 0.5,
            open_duration_ns: 1_000,
            half_open_successes: 2,
            probe_interval_ns: 100,
        }
    }

    #[test]
    fn consecutive_failures_open_the_circuit() {
        let mut h = HealthState::new(cfg());
        assert!(h.allow(0));
        assert_eq!(h.record_failure(10), None);
        assert_eq!(h.record_failure(20), None);
        assert_eq!(h.record_failure(30), Some(CircuitState::Open));
        assert!(!h.allow(30), "open circuit blocks traffic");
        assert!(!h.allow(1_029), "still inside the open window");
        assert!(h.allow(1_030), "back-off lapsed: half-open trial");
        assert_eq!(h.state(), CircuitState::HalfOpen);
    }

    #[test]
    fn half_open_success_streak_closes_failure_reopens() {
        let mut h = HealthState::new(cfg());
        for t in 0..3 {
            h.record_failure(t);
        }
        assert!(h.allow(2_000));
        assert_eq!(h.record_success(2_000), None, "one success is not enough");
        assert_eq!(h.record_success(2_100), Some(CircuitState::Closed));
        // A failure while half-open reopens immediately.
        for t in 3_000..3_003 {
            h.record_failure(t);
        }
        assert!(h.allow(4_500));
        assert_eq!(h.record_failure(4_500), Some(CircuitState::Open));
        assert!(!h.allow(4_600));
    }

    #[test]
    fn error_rate_over_a_full_window_opens_without_a_streak() {
        let mut h = HealthState::new(cfg());
        // Alternate success/failure: never 3 consecutive, but the rate
        // climbs past 0.5 once the window fills with an extra failure.
        for t in 0..4 {
            h.record_failure(2 * t);
            h.record_success(2 * t + 1);
        }
        assert_eq!(h.state(), CircuitState::Closed);
        h.record_failure(100);
        let state = h.record_failure(101);
        assert_eq!(state, Some(CircuitState::Open), "window rate exceeded");
    }
}
