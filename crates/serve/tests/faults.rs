//! Fault tolerance: every accepted request is answered exactly once even
//! when workers panic mid-batch, and the pool keeps serving afterwards.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use common::{scene, vocab, StubModel};
use yollo_core::FaultPlan;
use yollo_serve::{GroundingModel, ServeConfig, ServeError, Server};

/// Wraps the stub model with a deterministic crash schedule: the N-th
/// batch (globally, across all workers) panics if the plan says so.
struct FaultyModel {
    inner: StubModel,
    plan: Arc<Mutex<FaultPlan>>,
    batches: Arc<AtomicUsize>,
}

impl GroundingModel for FaultyModel {
    fn predict_batch(
        &self,
        images: yollo_tensor::Tensor,
        queries: &[Vec<usize>],
    ) -> Vec<yollo_core::GroundingPrediction> {
        let n = self.batches.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.lock().unwrap().take_crash(n) {
            panic!("injected crash before batch {n}");
        }
        self.inner.predict_batch(images, queries)
    }
}

#[test]
fn every_accepted_request_is_answered_despite_worker_panics() {
    let plan = Arc::new(Mutex::new(FaultPlan::new().crash_before(2).crash_before(4)));
    let batches = Arc::new(AtomicUsize::new(0));
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ns: 500_000, // 0.5 ms
        queue_capacity: 64,
        cache_capacity: 0, // no cache: every request must reach a worker
        max_tokens: 6,
        workers: 2,
        ..ServeConfig::default()
    };
    let (plan_f, batches_f) = (Arc::clone(&plan), Arc::clone(&batches));
    let mut server = Server::start(cfg, vocab(), move || FaultyModel {
        inner: StubModel::new(),
        plan: Arc::clone(&plan_f),
        batches: Arc::clone(&batches_f),
    });

    let s = scene();
    let queries = [
        "the red circle",
        "the blue square",
        "the green triangle",
        "a red square",
    ];
    let responses: Vec<_> = (0..32)
        .map(|i| {
            server
                .submit(&s, queries[i % queries.len()])
                .expect("queue has room for the whole load")
        })
        .collect();

    let mut ok = 0;
    let mut failed = 0;
    for r in responses {
        match r.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::WorkerFailed { detail }) => {
                assert!(detail.contains("injected crash"), "unexpected: {detail}");
                failed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(ok + failed, 32, "exactly one response per request");
    assert!(failed > 0, "the crash schedule must have fired");
    assert!(ok > 0, "the pool must keep serving after a panic");
    assert!(
        plan.lock().unwrap().is_empty(),
        "both injected crashes fired"
    );
    assert_eq!(server.inflight(), 0);
    server.shutdown();
}

#[test]
fn shutdown_answers_pending_requests() {
    let cfg = ServeConfig {
        max_batch: 64,             // never fills
        max_wait_ns: u64::MAX / 2, // deadline effectively never fires
        queue_capacity: 8,
        cache_capacity: 0,
        max_tokens: 6,
        workers: 1,
        ..ServeConfig::default()
    };
    let mut server = Server::start(cfg, vocab(), StubModel::new);
    let s = scene();
    let pending: Vec<_> = (0..3)
        .map(|_| server.submit(&s, "the red circle").unwrap())
        .collect();
    server.shutdown();
    for r in pending {
        assert!(r.wait().is_ok(), "drain answers pending requests");
    }
    assert_eq!(
        server.submit(&s, "the red circle").err(),
        Some(ServeError::ShuttingDown)
    );
}

/// A model that panics on every batch — the shape of a poisoned worker
/// (corrupt weights, bad device state) that will never recover on its own.
struct AlwaysPanics;

impl GroundingModel for AlwaysPanics {
    fn predict_batch(
        &self,
        _images: yollo_tensor::Tensor,
        _queries: &[Vec<usize>],
    ) -> Vec<yollo_core::GroundingPrediction> {
        panic!("poisoned model instance");
    }
}

/// Factory instance 0 is poisoned; every rebuild yields a healthy model.
/// Only worker recycling can restore service.
enum RecyclableModel {
    Poisoned(AlwaysPanics),
    Healthy(StubModel),
}

impl GroundingModel for RecyclableModel {
    fn predict_batch(
        &self,
        images: yollo_tensor::Tensor,
        queries: &[Vec<usize>],
    ) -> Vec<yollo_core::GroundingPrediction> {
        match self {
            RecyclableModel::Poisoned(m) => m.predict_batch(images, queries),
            RecyclableModel::Healthy(m) => m.predict_batch(images, queries),
        }
    }
}

#[test]
fn a_worker_with_a_poisoned_model_recycles_it_and_recovers() {
    let builds = Arc::new(AtomicUsize::new(0));
    let cfg = ServeConfig {
        max_batch: 1, // one request per batch: failures stay visible
        max_wait_ns: 200_000,
        queue_capacity: 16,
        cache_capacity: 0,
        max_tokens: 6,
        workers: 1,
        recycle_after: 2, // two consecutive failed batches => rebuild
        ..ServeConfig::default()
    };
    let builds_f = Arc::clone(&builds);
    let mut server = Server::start(cfg, vocab(), move || {
        let n = builds_f.fetch_add(1, Ordering::SeqCst);
        if n == 0 {
            RecyclableModel::Poisoned(AlwaysPanics)
        } else {
            RecyclableModel::Healthy(StubModel::new())
        }
    });

    let s = scene();
    let queries = ["the red circle", "the blue square", "the green triangle"];
    let results: Vec<_> = (0..6)
        .map(|i| {
            // Submit one at a time so batches (and failures) are ordered.
            let r = server.submit(&s, queries[i % queries.len()]).unwrap();
            r.wait()
        })
        .collect();

    let failed = results.iter().filter(|r| r.is_err()).count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(
        failed, 2,
        "exactly the two batches before the recycle threshold fail: {results:?}"
    );
    assert_eq!(ok, 4, "after the rebuild every request succeeds");
    assert!(
        results[2..].iter().all(|r| r.is_ok()),
        "recovery is permanent once the model is recycled"
    );
    assert!(
        builds.load(Ordering::SeqCst) >= 2,
        "the factory must have been called again to rebuild the model"
    );
    server.shutdown();
}
