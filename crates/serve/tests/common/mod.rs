//! Shared fixtures for the serve integration tests.
#![allow(dead_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use yollo_core::GroundingPrediction;
use yollo_detect::BBox;
use yollo_serve::GroundingModel;
use yollo_synthref::{ColorName, Scene, SceneBuilder, ShapeKind};
use yollo_tensor::Tensor;
use yollo_text::{tokenize, Vocab};

/// A fast, deterministic model: the prediction is a pure function of the
/// image pixels and token ids, and every batch bumps a shared call
/// counter so tests can prove the model was (not) invoked.
pub struct StubModel {
    pub calls: Arc<AtomicUsize>,
}

impl StubModel {
    pub fn new() -> Self {
        StubModel {
            calls: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl GroundingModel for StubModel {
    fn predict_batch(&self, images: Tensor, queries: &[Vec<usize>]) -> Vec<GroundingPrediction> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        let b = queries.len();
        let per = images.numel() / b.max(1);
        let data = images.as_slice();
        (0..b)
            .map(|i| {
                let img_sum: f64 = data[i * per..(i + 1) * per].iter().sum();
                let q_sum = queries[i].iter().sum::<usize>() as f64;
                GroundingPrediction {
                    bbox: BBox {
                        x: q_sum,
                        y: img_sum % 13.0,
                        w: 5.0,
                        h: 5.0,
                    },
                    score: ((q_sum + img_sum).sin()).abs(),
                    attention: vec![q_sum, img_sum],
                }
            })
            .collect()
    }
}

/// A vocabulary covering the words the tests use.
pub fn vocab() -> Vocab {
    let toks =
        tokenize("the a red blue green circle square triangle left right of above below item");
    Vocab::build([toks.iter().map(String::as_str)], 1)
}

/// A 72x48 scene matching `ServeConfig::default()` dimensions.
pub fn scene() -> Scene {
    SceneBuilder::new(72, 48)
        .object(ShapeKind::Circle, ColorName::Red, 10.0, 10.0, 12.0, 12.0)
        .object(ShapeKind::Square, ColorName::Blue, 40.0, 20.0, 14.0, 14.0)
        .build()
}

/// A second, different scene (different content hash).
pub fn other_scene() -> Scene {
    SceneBuilder::new(72, 48)
        .object(ShapeKind::Triangle, ColorName::Green, 22.0, 8.0, 10.0, 10.0)
        .build()
}
