//! End-to-end request tracing and SLO accounting through the router tier.
//!
//! These tests drive the ISSUE 8 acceptance criteria: a traced chaos run
//! under a virtual clock yields a causally complete span chain for every
//! request, the flight records reconcile against the `RouterEvent`
//! fingerprint, the trace *structure* is bit-identical across two
//! identically seeded runs (span ids are process-global, so identity is
//! checked after normalisation), and both router forms record the same
//! metric names.

mod common;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use common::{other_scene, scene, vocab, StubModel};
use yollo_core::ReplicaFaultPlan;
use yollo_obs::SpanEvent;
use yollo_serve::{
    reconcile_flights, validate_request_chains, FlightOutcome, HealthConfig, Priority, RetryPolicy,
    RouterArrival, RouterConfig, RouterReport, RouterServer, RouterSim, ServeConfig, ServiceModel,
    SloReport,
};

/// Serializes tests that drain the process-global span rings, so one
/// test's drain never steals another's spans.
static SPAN_DRAIN: Mutex<()> = Mutex::new(());

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_wait_ns: 2_000_000,
        queue_capacity: 64,
        cache_capacity: 32,
        max_tokens: 6,
        ..ServeConfig::default()
    }
}

fn chaos_cfg() -> RouterConfig {
    RouterConfig {
        replicas: 3,
        vnodes: 32,
        deadline_ns: 50_000_000,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100_000,
            max_backoff_ns: 1_000_000,
        },
        hedge_delay_ns: 3_000_000,
        health: HealthConfig {
            failure_threshold: 3,
            error_window: 16,
            error_rate_threshold: 0.5,
            open_duration_ns: 5_000_000,
            half_open_successes: 2,
            probe_interval_ns: 1_000_000,
        },
        class_capacity: [8, 16, 8],
        seed: 0xC4A05,
        service: ServiceModel {
            base_ns: 500_000,
            per_item_ns: 100_000,
        },
    }
}

fn mixed_arrivals(n: usize, gap_ns: u64) -> Vec<RouterArrival> {
    let queries = ["the red circle", "the blue square", "the green triangle"];
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => Priority::Interactive,
                1 => Priority::Standard,
                _ => Priority::Bulk,
            };
            RouterArrival::new(i as u64 * gap_ns, i % 2, queries[i % queries.len()], class)
        })
        .collect()
}

/// One traced chaos run: crash-looping, hung and slowed replicas at once,
/// with hedging armed. Returns the report and this run's spans (filtered
/// by the run's own trace ids, so concurrent tests' spans are ignored).
fn run_traced_chaos() -> (RouterReport, Vec<SpanEvent>) {
    yollo_obs::set_enabled(true);
    let scenes = [scene(), other_scene()];
    let mut sim = RouterSim::new(chaos_cfg(), serve_cfg(), vocab(), |_| StubModel::new());
    sim.router_mut()
        .set_fault_plan(0, ReplicaFaultPlan::new().crash_from(3));
    sim.router_mut().set_fault_plan(
        1,
        ReplicaFaultPlan::new().hang_between(20_000_000, 60_000_000),
    );
    sim.router_mut()
        .set_fault_plan(2, ReplicaFaultPlan::new().slow_by(4.0));
    let report = sim.run(&scenes, &mixed_arrivals(48, 1_500_000));
    let traces: BTreeSet<u64> = report.flights.iter().map(|f| f.trace).collect();
    let spans = yollo_obs::drain_spans()
        .into_iter()
        .filter(|e| traces.contains(&e.trace))
        .collect();
    (report, spans)
}

#[test]
fn traced_chaos_run_has_causally_complete_chains() {
    let _g = SPAN_DRAIN.lock().unwrap();
    let (report, spans) = run_traced_chaos();

    // Every valid submission got a trace root, and every chain validates:
    // one root per trace, parents resolve in-trace, attempt counts match
    // the root's declaration, batch-served successes have queued/exec.
    let summary = validate_request_chains(&spans).expect("causally complete chains");
    assert_eq!(
        summary.router_requests,
        report.flights.len(),
        "one router.request root per flight record"
    );
    assert!(
        summary.spans > summary.router_requests * 2,
        "chains must contain attempt and batch spans, not bare roots \
         ({} spans over {} requests)",
        summary.spans,
        summary.router_requests
    );

    // The flight records agree with the RouterEvent fingerprint.
    reconcile_flights(&report.flights, &report.events).expect("flights reconcile with events");

    // The SLO report agrees with the router's own counters.
    let slo = SloReport::from_flights(&report.flights);
    assert_eq!(slo.accepted, report.stats.accepted);
    assert_eq!(slo.delivered_ok, report.stats.delivered_ok);
    assert_eq!(slo.delivered_err, report.stats.delivered_err);
    assert_eq!(slo.deadline_exceeded, report.stats.deadline_exceeded);
    assert_eq!(slo.shed, report.stats.shed);
    assert!((slo.availability - report.stats.availability()).abs() < 1e-12);
    assert!(
        slo.retry_amplification >= 1.0,
        "amplification < 1 is impossible"
    );
    assert!(report.stats.retries > 0, "chaos must force retries");

    // Latency attribution: under the virtual clock, queue waits come from
    // the batcher schedule and service time from the ServiceModel charge.
    let ok_flights: Vec<_> = report
        .flights
        .iter()
        .filter(|f| f.outcome == FlightOutcome::Ok)
        .collect();
    assert!(!ok_flights.is_empty());
    assert!(
        ok_flights.iter().any(|f| f.queue_ns > 0),
        "batched requests must report queue wait"
    );
    assert!(
        ok_flights.iter().any(|f| f.service_ns > 0),
        "the nonzero ServiceModel must surface as service time"
    );
    assert!(slo.total.p50 >= slo.queue.p50, "total includes queue wait");
}

/// One normalised span: (name, dense id, dense parent, args).
type NormSpan = (String, u64, u64, Vec<(String, u64)>);

/// Normalises a run's spans into a structure independent of process-global
/// span ids and wall-clock timings: per flight (in terminal order), each
/// span becomes a [`NormSpan`], with dense ids assigned by allocation
/// order inside the trace.
fn structure(report: &RouterReport, spans: &[SpanEvent]) -> Vec<Vec<NormSpan>> {
    let mut by_trace: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for e in spans {
        by_trace.entry(e.trace).or_default().push(e);
    }
    report
        .flights
        .iter()
        .map(|f| {
            let mut evs = by_trace.get(&f.trace).cloned().unwrap_or_default();
            evs.sort_by_key(|e| e.id);
            let dense: BTreeMap<u64, u64> = evs
                .iter()
                .enumerate()
                .map(|(i, e)| (e.id, i as u64))
                .collect();
            evs.iter()
                .map(|e| {
                    (
                        e.name.to_string(),
                        dense[&e.id],
                        dense.get(&e.parent).copied().unwrap_or(u64::MAX),
                        e.args
                            .iter()
                            .map(|(k, v)| (k.to_string(), *v))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect()
        })
        .collect()
}

#[test]
fn trace_structure_is_bit_identical_across_seeded_runs() {
    let _g = SPAN_DRAIN.lock().unwrap();
    let (r1, s1) = run_traced_chaos();
    let (r2, s2) = run_traced_chaos();

    // The event log was already the determinism fingerprint; the span
    // tree structure now holds to the same standard.
    assert_eq!(r1.events, r2.events, "event fingerprint must replay");
    let st1 = structure(&r1, &s1);
    let st2 = structure(&r2, &s2);
    assert_eq!(st1, st2, "normalised span structure must replay");
    let spans1: usize = st1.iter().map(Vec::len).sum();
    assert!(
        spans1 > r1.flights.len() * 2,
        "structure must be non-trivial ({spans1} spans)"
    );
}

#[test]
fn both_router_forms_record_the_same_metric_names() {
    yollo_obs::set_enabled(true);
    // A capacity-0 interactive class sheds deterministically on both
    // forms; a standard call delivers on both. Together they exercise the
    // admission, dispatch, delivery and shed metric paths.
    let parity_counters = [
        "router.requests",
        "router.dispatches",
        "router.delivered",
        "router.shed",
        "router.interactive.shed",
    ];
    let parity_histograms = ["router.request_ns", "router.standard.request_ns"];
    let reg = yollo_obs::registry();
    let snap =
        |names: &[&str]| -> Vec<u64> { names.iter().map(|n| reg.counter(n).get()).collect() };
    let hsnap =
        |names: &[&str]| -> Vec<u64> { names.iter().map(|n| reg.histogram(n).count()).collect() };

    let cfg = RouterConfig {
        replicas: 2,
        vnodes: 16,
        deadline_ns: 0,
        retry: RetryPolicy::default(),
        hedge_delay_ns: 0,
        health: HealthConfig::default(),
        class_capacity: [0, 4, 4], // interactive always sheds
        seed: 7,
        service: ServiceModel::default(),
    };
    let scenes = [scene()];

    // Deterministic form.
    let c0 = snap(&parity_counters);
    let h0 = hsnap(&parity_histograms);
    let mut sim = RouterSim::new(cfg.clone(), serve_cfg(), vocab(), |_| StubModel::new());
    let report = sim.run(
        &scenes,
        &[
            RouterArrival::new(0, 0, "the red circle", Priority::Standard),
            RouterArrival::new(1_000, 0, "the blue square", Priority::Interactive),
        ],
    );
    assert_eq!(report.stats.shed, 1);
    assert_eq!(report.stats.delivered_ok, 1);
    let c1 = snap(&parity_counters);
    let h1 = hsnap(&parity_histograms);
    for (i, name) in parity_counters.iter().enumerate() {
        assert!(c1[i] > c0[i], "deterministic Router never fired {name}");
    }
    for (i, name) in parity_histograms.iter().enumerate() {
        assert!(h1[i] > h0[i], "deterministic Router never fired {name}");
    }

    // Threaded form: same metric names must move.
    let mut rs = RouterServer::start(cfg, serve_cfg(), vocab(), |_| StubModel::new());
    let ok = rs.call_with_class(&scenes[0], "the red circle", Priority::Standard);
    assert!(ok.is_ok());
    let shed = rs.call_with_class(&scenes[0], "the blue square", Priority::Interactive);
    assert!(matches!(
        shed,
        Err(yollo_serve::ServeError::Overloaded { .. })
    ));
    rs.shutdown();
    let c2 = snap(&parity_counters);
    let h2 = hsnap(&parity_histograms);
    for (i, name) in parity_counters.iter().enumerate() {
        assert!(c2[i] > c1[i], "RouterServer never fired {name}");
    }
    for (i, name) in parity_histograms.iter().enumerate() {
        assert!(h2[i] > h1[i], "RouterServer never fired {name}");
    }
    assert_eq!(rs.stats().shed, 1);
    assert_eq!(rs.stats().ok, 1);
}
