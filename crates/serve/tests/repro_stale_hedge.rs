//! Repro: stale hedge timer after a primary failure livelocks the sim.
mod common;

use common::{scene, vocab, StubModel};
use yollo_core::{scene_hash, ReplicaFaultPlan};
use yollo_serve::{
    HashRing, HealthConfig, Priority, RetryPolicy, RouterArrival, RouterConfig, RouterSim,
    ServeConfig,
};

#[test]
fn hedge_timer_between_failure_and_retry() {
    let scenes = [scene()];
    let cfg = RouterConfig {
        replicas: 2,
        vnodes: 32,
        deadline_ns: 50_000_000,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 1_000_000, // retry 0.5-1 ms after failure
            max_backoff_ns: 1_000_000,
        },
        // Hedge timer fires at 2.1 ms: after the 2 ms batch flush where the
        // primary crashes, but before the earliest retry at 2.5 ms.
        hedge_delay_ns: 2_100_000,
        health: HealthConfig {
            failure_threshold: 3,
            error_window: 16,
            error_rate_threshold: 0.5,
            open_duration_ns: 5_000_000,
            half_open_successes: 2,
            probe_interval_ns: 1_000_000,
        },
        class_capacity: [32, 64, 32],
        seed: 1,
        service: Default::default(),
    };
    let serve_cfg = ServeConfig {
        max_batch: 4,
        max_wait_ns: 2_000_000, // primary's batch (and crash) at t = 2 ms
        queue_capacity: 64,
        cache_capacity: 32,
        max_tokens: 6,
        ..ServeConfig::default()
    };
    let owner = HashRing::new(cfg.replicas, cfg.vnodes).route(scene_hash(&scenes[0]));
    let mut sim = RouterSim::new(cfg, serve_cfg, vocab(), |_| StubModel::new());
    sim.router_mut()
        .set_fault_plan(owner, ReplicaFaultPlan::new().crash_at_request(1));

    let arrivals = vec![RouterArrival::new(
        0,
        0,
        "the red circle",
        Priority::Interactive,
    )];
    let report = sim.run(&scenes, &arrivals);
    assert_eq!(report.outcomes.len(), 1);
}
