//! Virtual-clock correctness tests for the dynamic batcher: exact deadline
//! flushes, immediate full-batch flushes, backpressure, strict query
//! validation, cache semantics, and the 100-run determinism guarantee.

mod common;

use std::sync::atomic::Ordering;
use std::sync::Arc;

use common::{other_scene, scene, vocab, StubModel};
use yollo_serve::{
    Arrival, CountingWaker, FlushReason, ServeConfig, ServeError, ServerCore, Simulation,
    VirtualClock,
};

fn test_config() -> ServeConfig {
    ServeConfig {
        max_batch: 3,
        max_wait_ns: 1_000,
        queue_capacity: 8,
        cache_capacity: 8,
        max_tokens: 6,
        ..ServeConfig::default()
    }
}

fn core_on_virtual_clock(cfg: ServeConfig) -> (ServerCore<StubModel>, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::new());
    let core = ServerCore::with_clock(
        StubModel::new(),
        vocab(),
        cfg,
        Arc::clone(&clock) as Arc<dyn yollo_serve::Clock>,
        Arc::new(yollo_serve::NoopWaker),
    );
    (core, clock)
}

#[test]
fn lone_request_flushes_exactly_at_max_wait() {
    let (mut core, clock) = core_on_virtual_clock(test_config());
    let resp = core.submit(&scene(), "the red circle").unwrap();
    assert_eq!(core.next_deadline_ns(), Some(1_000));

    clock.set(999);
    assert_eq!(core.tick(), 0, "999 ns: one tick before the deadline");
    assert!(resp.try_now().is_none());

    clock.set(1_000);
    assert_eq!(core.tick(), 1, "1000 ns: the deadline, exactly");
    let boundaries = core.boundaries();
    assert_eq!(boundaries.len(), 1);
    assert_eq!(boundaries[0].at_ns, 1_000);
    assert_eq!(boundaries[0].size, 1);
    assert_eq!(boundaries[0].reason, FlushReason::Deadline);
    assert!(resp.wait().is_ok());
}

#[test]
fn full_batch_flushes_immediately_without_time_passing() {
    let (mut core, _clock) = core_on_virtual_clock(test_config());
    let responses: Vec<_> = (0..3)
        .map(|_| core.submit(&scene(), "the red circle").unwrap())
        .collect();
    // Identical requests would collapse into cache hits only after the
    // first completes; all three are admitted while nothing has run.
    assert_eq!(core.inflight(), 3);
    assert_eq!(core.tick(), 1, "max_batch reached: flush at t = 0");
    let b = core.boundaries()[0];
    assert_eq!((b.at_ns, b.size, b.reason), (0, 3, FlushReason::Full));
    for r in responses {
        assert!(r.wait().is_ok());
    }
    assert_eq!(core.inflight(), 0);
}

#[test]
fn waker_fires_on_new_deadline_and_on_full_batch() {
    let clock = Arc::new(VirtualClock::new());
    let waker = Arc::new(CountingWaker::new());
    let mut core = ServerCore::with_clock(
        StubModel::new(),
        vocab(),
        test_config(),
        Arc::clone(&clock) as Arc<dyn yollo_serve::Clock>,
        Arc::clone(&waker) as Arc<dyn yollo_serve::Waker>,
    );
    let s = scene();
    core.submit(&s, "the red circle").unwrap();
    assert_eq!(waker.count(), 1, "first pending item arms a deadline");
    core.submit(&s, "the blue square").unwrap();
    assert_eq!(waker.count(), 1, "joining a pending batch needs no wake");
    core.submit(&s, "the green triangle").unwrap();
    assert_eq!(waker.count(), 2, "reaching max_batch wakes the worker");
}

#[test]
fn overload_sheds_with_typed_error_and_recovers() {
    let cfg = ServeConfig {
        queue_capacity: 2,
        max_batch: 10,
        ..test_config()
    };
    let (mut core, clock) = core_on_virtual_clock(cfg);
    let s = scene();
    let r1 = core.submit(&s, "the red circle").unwrap();
    let r2 = core.submit(&s, "the blue square").unwrap();
    let shed = core.submit(&s, "the green triangle");
    assert_eq!(
        shed.err(),
        Some(ServeError::Overloaded {
            inflight: 2,
            capacity: 2
        })
    );
    // Once the pending batch drains, capacity frees up again.
    clock.set(1_000);
    assert_eq!(core.tick(), 1);
    assert!(r1.wait().is_ok());
    assert!(r2.wait().is_ok());
    assert_eq!(core.inflight(), 0);
    assert!(core.submit(&s, "the green triangle").is_ok());
}

#[test]
fn too_long_query_is_rejected_never_truncated() {
    let (mut core, _clock) = core_on_virtual_clock(test_config());
    let s = scene();
    // 7 words against max_tokens = 6: rejected outright, nothing enqueued.
    let res = core.submit(&s, "the red circle left of the square");
    assert_eq!(
        res.err(),
        Some(ServeError::QueryTooLong {
            tokens: 7,
            max_tokens: 6
        })
    );
    assert_eq!(
        core.inflight(),
        0,
        "rejected request must not occupy a slot"
    );
    // Exactly at the limit is fine.
    assert!(core.submit(&s, "red circle left of the square").is_ok());
    assert_eq!(core.inflight(), 1);
}

#[test]
fn cache_hit_bypasses_model_and_returns_identical_prediction() {
    let (mut core, clock) = core_on_virtual_clock(test_config());
    let first_prediction = {
        let r = core.submit(&scene(), "the red circle").unwrap();
        clock.set(1_000);
        core.tick();
        let first = r.wait().unwrap();

        // Same scene content, same query modulo case/whitespace/punctuation:
        // must hit the cache — resolved synchronously, model untouched.
        let r = core.submit(&scene(), "  The  RED circle! ").unwrap();
        let hit = r.try_now().expect("cache hit resolves immediately");
        assert_eq!(hit.unwrap(), first, "cached prediction is bit-identical");
        first
    };
    // A different scene is a miss even with the same query text.
    let miss = core.submit(&other_scene(), "the red circle").unwrap();
    assert!(miss.try_now().is_none(), "different scene: not a cache hit");
    clock.set(2_500);
    core.tick();
    assert_ne!(miss.wait().unwrap(), first_prediction);
}

#[test]
fn cache_hits_do_not_consume_queue_capacity() {
    let cfg = ServeConfig {
        queue_capacity: 1,
        ..test_config()
    };
    let (mut core, clock) = core_on_virtual_clock(cfg);
    let s = scene();
    let r = core.submit(&s, "the red circle").unwrap();
    clock.set(1_000);
    core.tick();
    r.wait().unwrap();
    // Fill the single queue slot...
    let _pending = core.submit(&s, "the blue square").unwrap();
    assert_eq!(core.inflight(), 1);
    // ...and a cached repeat is still served.
    let hit = core.submit(&s, "the red circle").unwrap();
    assert!(hit.try_now().is_some());
}

/// The determinism acceptance criterion: a fixed arrival script produces an
/// identical batch-boundary sequence on every one of 100 runs.
#[test]
fn fixed_arrival_script_is_deterministic_across_100_runs() {
    let scenes = vec![scene(), other_scene()];
    let queries = ["the red circle", "the blue square", "the green triangle"];
    // An irregular mix of bursts (full-batch flushes), stragglers (deadline
    // flushes) and repeats (cache hits) spread over 10 µs.
    let mut arrivals = Vec::new();
    for i in 0..24u64 {
        let at_ns = i * 397 + (i % 5) * 61;
        arrivals.push(Arrival::new(
            at_ns,
            (i % 2) as usize,
            queries[(i % 3) as usize],
        ));
    }

    let fingerprint = |_: usize| {
        let cfg = ServeConfig {
            max_batch: 4,
            max_wait_ns: 900,
            queue_capacity: 16,
            cache_capacity: 4,
            max_tokens: 6,
            ..ServeConfig::default()
        };
        let mut sim = Simulation::new(StubModel::new(), vocab(), cfg);
        let report = sim.run(&scenes, &arrivals);
        assert!(report.rejected.is_empty(), "script fits the queue");
        report
    };

    let reference = fingerprint(0);
    assert!(!reference.boundaries.is_empty());
    let answered: usize = reference.boundaries.iter().map(|b| b.size).sum();
    assert_eq!(
        answered + reference.cache_hits,
        arrivals.len(),
        "every scripted request is either batched or cache-answered"
    );
    for run in 1..100 {
        let report = fingerprint(run);
        assert_eq!(
            report.boundaries, reference.boundaries,
            "run {run} diverged from the reference boundary sequence"
        );
        assert_eq!(report.cache_hits, reference.cache_hits);
    }
}

/// The stub model must actually be exercised by the harness (sanity check
/// on the fixtures themselves).
#[test]
fn stub_model_counts_calls() {
    let model = StubModel::new();
    let calls = Arc::clone(&model.calls);
    let (mut core, clock) = {
        let clock = Arc::new(VirtualClock::new());
        let core = ServerCore::with_clock(
            model,
            vocab(),
            test_config(),
            Arc::clone(&clock) as Arc<dyn yollo_serve::Clock>,
            Arc::new(yollo_serve::NoopWaker),
        );
        (core, clock)
    };
    core.submit(&scene(), "the red circle").unwrap();
    clock.set(1_000);
    core.tick();
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn expired_requests_are_answered_deadline_exceeded_without_touching_the_model() {
    let model = StubModel::new();
    let calls = Arc::clone(&model.calls);
    let clock = Arc::new(VirtualClock::new());
    let mut core = ServerCore::with_clock(
        model,
        vocab(),
        ServeConfig {
            default_deadline_ns: 500, // expires before the 1000 ns flush
            ..test_config()
        },
        Arc::clone(&clock) as Arc<dyn yollo_serve::Clock>,
        Arc::new(yollo_serve::NoopWaker),
    );
    let resp = core.submit(&scene(), "the red circle").unwrap();
    assert_eq!(core.inflight(), 1);
    assert_eq!(
        core.next_deadline_ns(),
        Some(500),
        "the per-request expiry outruns the flush deadline"
    );

    clock.set(499);
    assert_eq!(core.tick(), 0);
    assert!(resp.try_now().is_none());

    clock.set(500);
    core.tick();
    match resp.try_now() {
        Some(Err(ServeError::DeadlineExceeded {
            waited_ns,
            deadline_ns,
        })) => {
            assert_eq!(waited_ns, 500);
            assert_eq!(deadline_ns, 500);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(calls.load(Ordering::SeqCst), 0, "model never ran");
    assert_eq!(core.inflight(), 0, "the queue slot is freed");
    assert!(core.boundaries().is_empty(), "no batch was formed");
}

#[test]
fn expired_requests_never_occupy_batch_slots_next_to_live_ones() {
    // Three requests; the middle one carries a short explicit deadline.
    let (mut core, clock) = core_on_virtual_clock(ServeConfig {
        max_batch: 8,
        ..test_config()
    });
    let live_a = core.submit(&scene(), "the red circle").unwrap();
    let doomed = core
        .submit_with_deadline(&other_scene(), "the blue square", 400)
        .unwrap();
    let live_b = core.submit(&scene(), "the green triangle").unwrap();

    clock.set(1_000); // flush deadline: the doomed one expired at 400
    assert_eq!(core.tick(), 1);
    let boundaries = core.boundaries();
    assert_eq!(boundaries.len(), 1);
    assert_eq!(
        boundaries[0].size, 2,
        "the expired request must not occupy a batch slot"
    );
    assert!(live_a.wait().is_ok());
    assert!(live_b.wait().is_ok());
    assert!(matches!(
        doomed.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    assert_eq!(core.inflight(), 0);
}
