//! End-to-end: the serving stack in front of a real (tiny) YOLLO model
//! agrees exactly with direct single-request inference.

use yollo_core::{Yollo, YolloConfig};
use yollo_serve::{ServeConfig, ServeDtype, Server, ServerCore, YolloBackend};
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind};

fn tiny() -> (Yollo, Dataset) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let cfg = YolloConfig {
        d_rel: 12,
        ffn_hidden: 16,
        n_rel2att: 1,
        ..YolloConfig::for_dataset(&ds)
    };
    let mut model = Yollo::new(cfg, 1);
    model.set_vocab(ds.build_vocab());
    (model, ds)
}

#[test]
fn served_predictions_match_direct_inference_exactly() {
    let (model, ds) = tiny();
    let scene = ds.scenes()[0].clone();
    let query = "the red circle";
    let expected = model.predict_scene_query(&scene, query);

    let cfg = ServeConfig::for_model(model.config());
    let vocab = model.vocab().clone();
    let mut core = ServerCore::new(model, vocab, cfg);
    let resp = core.submit(&scene, query).unwrap();
    core.drain();
    let served = resp.wait().unwrap();
    assert_eq!(
        served, expected,
        "batched serving must be bit-identical to direct inference"
    );
}

#[test]
fn f32_backend_serves_within_iou_tolerance_of_f64() {
    let (model, ds) = tiny();
    let (model2, _) = tiny(); // deterministic seeds: same weights as `model`
    let vocab = model.vocab().clone();
    let cfg = ServeConfig::for_model(model.config());
    let f64_backend = YolloBackend::new(model, ServeDtype::F64);
    let f32_backend = YolloBackend::new(model2, ServeDtype::F32);
    assert_eq!(f64_backend.dtype(), ServeDtype::F64);
    assert_eq!(f32_backend.dtype(), ServeDtype::F32);

    let mut ref_core = ServerCore::new(f64_backend, vocab.clone(), cfg.clone());
    let mut fast_core = ServerCore::new(f32_backend, vocab, cfg);

    let queries = ["the red circle", "the blue square"];
    for (i, scene) in ds.scenes().iter().take(4).enumerate() {
        let query = queries[i % queries.len()];
        let r = ref_core.submit(scene, query).unwrap();
        let f = fast_core.submit(scene, query).unwrap();
        ref_core.drain();
        fast_core.drain();
        let reference = r.wait().unwrap();
        let fast = f.wait().unwrap();
        // IoU is the headline tolerance, but an untrained model can emit
        // zero-area boxes after clipping (IoU degenerates to 0 even for
        // identical boxes) — so also bound the raw coordinate drift.
        if reference.bbox.w * reference.bbox.h > 0.0 {
            let iou = reference.bbox.iou(&fast.bbox);
            assert!(
                iou > 0.99,
                "scene {i}: f32 box diverged from f64 (IoU {iou:.4}): {:?} vs {:?}",
                fast.bbox,
                reference.bbox
            );
        }
        for (a, b) in [
            (reference.bbox.x, fast.bbox.x),
            (reference.bbox.y, fast.bbox.y),
            (reference.bbox.w, fast.bbox.w),
            (reference.bbox.h, fast.bbox.h),
        ] {
            assert!(
                (a - b).abs() < 0.05,
                "scene {i}: coordinate drift {a} vs {b}: {:?} vs {:?}",
                fast.bbox,
                reference.bbox
            );
        }
        assert!(
            (reference.score - fast.score).abs() < 1e-3,
            "scene {i}: score drifted: {} vs {}",
            fast.score,
            reference.score
        );
        assert_eq!(
            reference.attention_peak(),
            fast.attention_peak(),
            "scene {i}: attention peak moved between dtypes"
        );
    }
}

#[test]
fn serve_dtype_parses_and_names_round_trip() {
    assert_eq!(ServeDtype::parse("f64"), Some(ServeDtype::F64));
    assert_eq!(ServeDtype::parse("F32"), Some(ServeDtype::F32));
    assert_eq!(ServeDtype::parse("bf16"), None);
    assert_eq!(ServeDtype::F64.name(), "f64");
    assert_eq!(ServeDtype::F32.name(), "f32");
}

#[test]
fn threaded_server_grounds_real_queries() {
    let (model, ds) = tiny();
    let model_cfg = model.config().clone();
    let vocab = model.vocab().clone();
    let ds_vocab = ds.build_vocab();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ns: 200_000, // 0.2 ms
        workers: 2,
        ..ServeConfig::for_model(&model_cfg)
    };
    drop(model);
    let server = Server::start(cfg, vocab, move || {
        let mut m = Yollo::new(model_cfg.clone(), 1);
        m.set_vocab(ds_vocab.clone());
        m
    });
    let scenes: Vec<_> = ds.scenes().iter().take(2).cloned().collect();
    let queries = ["the red circle", "the blue square"];
    let responses: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(&scenes[i % scenes.len()], queries[i % queries.len()])
                .unwrap()
        })
        .collect();
    for r in responses {
        let pred = r.wait().expect("request grounded");
        assert!(pred.bbox.w > 0.0 && pred.score.is_finite());
    }
}
