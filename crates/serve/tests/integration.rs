//! End-to-end: the serving stack in front of a real (tiny) YOLLO model
//! agrees exactly with direct single-request inference.

use yollo_core::{Yollo, YolloConfig};
use yollo_serve::{ServeConfig, Server, ServerCore};
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind};

fn tiny() -> (Yollo, Dataset) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let cfg = YolloConfig {
        d_rel: 12,
        ffn_hidden: 16,
        n_rel2att: 1,
        ..YolloConfig::for_dataset(&ds)
    };
    let mut model = Yollo::new(cfg, 1);
    model.set_vocab(ds.build_vocab());
    (model, ds)
}

#[test]
fn served_predictions_match_direct_inference_exactly() {
    let (model, ds) = tiny();
    let scene = ds.scenes()[0].clone();
    let query = "the red circle";
    let expected = model.predict_scene_query(&scene, query);

    let cfg = ServeConfig::for_model(model.config());
    let vocab = model.vocab().clone();
    let mut core = ServerCore::new(model, vocab, cfg);
    let resp = core.submit(&scene, query).unwrap();
    core.drain();
    let served = resp.wait().unwrap();
    assert_eq!(
        served, expected,
        "batched serving must be bit-identical to direct inference"
    );
}

#[test]
fn threaded_server_grounds_real_queries() {
    let (model, ds) = tiny();
    let model_cfg = model.config().clone();
    let vocab = model.vocab().clone();
    let ds_vocab = ds.build_vocab();
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait_ns: 200_000, // 0.2 ms
        workers: 2,
        ..ServeConfig::for_model(&model_cfg)
    };
    drop(model);
    let server = Server::start(cfg, vocab, move || {
        let mut m = Yollo::new(model_cfg.clone(), 1);
        m.set_vocab(ds_vocab.clone());
        m
    });
    let scenes: Vec<_> = ds.scenes().iter().take(2).cloned().collect();
    let queries = ["the red circle", "the blue square"];
    let responses: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(&scenes[i % scenes.len()], queries[i % queries.len()])
                .unwrap()
        })
        .collect();
    for r in responses {
        let pred = r.wait().expect("request grounded");
        assert!(pred.bbox.w > 0.0 && pred.score.is_finite());
    }
}
