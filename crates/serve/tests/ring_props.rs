//! Property tests for the consistent-hash ring invariants:
//!
//! * **balance** — with enough vnodes, no replica owns a pathological
//!   share of the key space;
//! * **minimal disruption** — removing one replica remaps *exactly* the
//!   keys it owned (about 1/N of the space) and every remapped key lands
//!   on its next preference; every other key's route is untouched;
//! * **preference order** — the failover list starts at the owner and
//!   visits every replica exactly once.
//!
//! Each property is expressed once and driven twice: by proptest, and by a
//! plain seeded-RNG loop so the invariants are exercised even where the
//! proptest harness is unavailable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yollo_serve::HashRing;

// ---------------------------------------------------------------- properties

/// Keys spread over the u64 space (the ring hashes them again, so even
/// sequential keys are fine — but mix in large strides anyway).
fn sample_keys(n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 7))
}

fn check_balance(replicas: usize, vnodes: usize, keys: usize) {
    let ring = HashRing::new(replicas, vnodes);
    let mut owned = vec![0usize; replicas];
    for key in sample_keys(keys) {
        owned[ring.route(key)] += 1;
    }
    let fair = keys as f64 / replicas as f64;
    for (r, &n) in owned.iter().enumerate() {
        assert!(
            (n as f64) < 4.0 * fair,
            "replica {r} owns {n} of {keys} keys (fair share {fair:.0}): \
             ring too unbalanced at {vnodes} vnodes"
        );
        assert!(
            (n as f64) > fair / 8.0,
            "replica {r} owns only {n} of {keys} keys (fair share {fair:.0})"
        );
    }
}

fn check_minimal_disruption(replicas: usize, vnodes: usize, removed: usize, keys: usize) {
    let ids: Vec<usize> = (0..replicas).collect();
    let survivors: Vec<usize> = ids.iter().copied().filter(|&r| r != removed).collect();
    let before = HashRing::with_ids(&ids, vnodes);
    let after = HashRing::with_ids(&survivors, vnodes);

    let mut remapped = 0usize;
    let mut owned_by_removed = 0usize;
    for key in sample_keys(keys) {
        let old = before.route(key);
        let new = after.route(key);
        if old == removed {
            owned_by_removed += 1;
            remapped += 1;
            // The key fails over to its next preference, not anywhere.
            let fallback = before
                .preference(key)
                .into_iter()
                .find(|&r| r != removed)
                .expect("more than one replica");
            assert_eq!(
                new, fallback,
                "key {key} remapped to {new}, not its failover preference {fallback}"
            );
        } else {
            assert_eq!(
                old, new,
                "key {key} moved from {old} to {new} although {removed} \
                 (not {old}) was removed — disruption is not minimal"
            );
        }
    }
    assert_eq!(
        remapped, owned_by_removed,
        "exactly the removed replica's keys remap"
    );
    assert!(
        owned_by_removed > 0,
        "sample too small: removed replica owned nothing"
    );
}

fn check_preference(replicas: usize, vnodes: usize, key: u64) {
    let ring = HashRing::new(replicas, vnodes);
    let pref = ring.preference(key);
    assert_eq!(pref[0], ring.route(key), "preference starts at the owner");
    let mut sorted = pref.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..replicas).collect::<Vec<_>>(),
        "preference visits every replica exactly once"
    );
    assert_eq!(
        ring.route_healthy(key, |_| true),
        Some(pref[0]),
        "with everyone healthy, route_healthy is the owner"
    );
    assert_eq!(ring.route_healthy(key, |_| false), None);
}

// ----------------------------------------------------------------- proptest

proptest! {
    #[test]
    fn rings_stay_balanced(replicas in 2usize..8, vnodes in 32usize..128) {
        check_balance(replicas, vnodes, 2048);
    }

    #[test]
    fn removing_a_replica_remaps_only_its_own_keys(
        replicas in 2usize..8,
        vnodes in 16usize..96,
        removed_bits in any::<u64>(),
    ) {
        let removed = (removed_bits % replicas as u64) as usize;
        check_minimal_disruption(replicas, vnodes, removed, 1024);
    }

    #[test]
    fn preference_order_is_a_permutation_from_the_owner(
        replicas in 1usize..8,
        vnodes in 8usize..64,
        key in any::<u64>(),
    ) {
        check_preference(replicas, vnodes, key);
    }
}

// --------------------------------------------------------- seeded fallbacks

#[test]
fn balance_holds_over_seeded_configurations() {
    let mut rng = StdRng::seed_from_u64(0x41B5);
    for _ in 0..32 {
        let replicas = rng.gen_range(2..8);
        let vnodes = rng.gen_range(32..128);
        check_balance(replicas, vnodes, 2048);
    }
}

#[test]
fn minimal_disruption_holds_over_seeded_configurations() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for _ in 0..48 {
        let replicas = rng.gen_range(2..8);
        let vnodes = rng.gen_range(16..96);
        let removed = rng.gen_range(0..replicas);
        check_minimal_disruption(replicas, vnodes, removed, 1024);
    }
}

#[test]
fn preference_holds_over_seeded_keys() {
    let mut rng = StdRng::seed_from_u64(0x9EF5);
    for _ in 0..200 {
        let replicas = rng.gen_range(1..8);
        let vnodes = rng.gen_range(8..64);
        check_preference(replicas, vnodes, rng.gen());
    }
}

#[test]
fn identical_seeds_produce_identical_routing_tables() {
    for &(replicas, vnodes) in &[(2, 16), (4, 64), (7, 33)] {
        let a = HashRing::new(replicas, vnodes);
        let b = HashRing::new(replicas, vnodes);
        for key in sample_keys(512) {
            assert_eq!(a.route(key), b.route(key));
            assert_eq!(a.preference(key), b.preference(key));
        }
    }
}
