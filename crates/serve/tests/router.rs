//! Deterministic chaos tests for the multi-replica router.
//!
//! Every schedule here runs on a virtual clock with faults injected
//! through [`ReplicaFaultPlan`] — crash-at-request-k, hang windows, slow
//! factors and flapping health — so the runs are sleep-free and replay
//! bit-identically. The invariants pinned down:
//!
//! * every accepted request gets **exactly one** terminal response under
//!   every chaos schedule (answer, shed, or deadline-exceeded — none
//!   stranded, none doubled);
//! * with ≥ 2 replicas, one crash-looping replica keeps availability at
//!   ≥ 99% of offered non-shed load;
//! * the scheduling event log is a bit-identical fingerprint across 100
//!   repeated runs.

mod common;

use common::{other_scene, scene, vocab, StubModel};
use yollo_core::{scene_hash, ReplicaFaultPlan};
use yollo_serve::{
    CircuitState, HashRing, HealthConfig, Priority, Response, RetryPolicy, Router, RouterArrival,
    RouterConfig, RouterEventKind, RouterSim, ServeConfig, ServeError, ServiceModel, VirtualClock,
};

use std::sync::Arc;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_wait_ns: 2_000_000, // 2 ms
        queue_capacity: 64,
        cache_capacity: 32,
        max_tokens: 6,
        ..ServeConfig::default()
    }
}

fn router_cfg(replicas: usize) -> RouterConfig {
    RouterConfig {
        replicas,
        vnodes: 32,
        deadline_ns: 50_000_000, // 50 ms
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100_000,
            max_backoff_ns: 1_000_000,
        },
        hedge_delay_ns: 0,
        health: HealthConfig {
            failure_threshold: 3,
            error_window: 16,
            error_rate_threshold: 0.5,
            open_duration_ns: 5_000_000,
            half_open_successes: 2,
            probe_interval_ns: 1_000_000,
        },
        class_capacity: [32, 64, 32],
        seed: 0xC4A05,
        service: ServiceModel::default(),
    }
}

/// A mixed arrival script over both scenes and several queries.
fn mixed_arrivals(n: usize, gap_ns: u64) -> Vec<RouterArrival> {
    let queries = ["the red circle", "the blue square", "the green triangle"];
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => Priority::Interactive,
                1 => Priority::Standard,
                _ => Priority::Bulk,
            };
            RouterArrival::new(i as u64 * gap_ns, i % 2, queries[i % queries.len()], class)
        })
        .collect()
}

#[test]
fn chaos_schedules_answer_every_accepted_request_exactly_once() {
    // One replica crash-looping from its 3rd request, one hung for a
    // stretch in the middle, one slowed 4x — all at once.
    let scenes = [scene(), other_scene()];
    let mut sim = RouterSim::new(
        RouterConfig {
            service: ServiceModel {
                base_ns: 500_000,
                per_item_ns: 100_000,
            },
            ..router_cfg(3)
        },
        serve_cfg(),
        vocab(),
        |_| StubModel::new(),
    );
    sim.router_mut()
        .set_fault_plan(0, ReplicaFaultPlan::new().crash_from(3));
    sim.router_mut().set_fault_plan(
        1,
        ReplicaFaultPlan::new().hang_between(20_000_000, 60_000_000),
    );
    sim.router_mut()
        .set_fault_plan(2, ReplicaFaultPlan::new().slow_by(4.0));

    let report = sim.run(&scenes, &mixed_arrivals(48, 1_500_000));

    let stats = report.stats;
    assert_eq!(
        report.outcomes.len() as u64,
        stats.accepted,
        "one terminal outcome per accepted request"
    );
    assert_eq!(
        stats.delivered_ok + stats.delivered_err + stats.deadline_exceeded,
        stats.accepted,
        "terminal outcomes partition the accepted set"
    );
    for outcome in &report.outcomes {
        match outcome {
            Ok(_)
            | Err(ServeError::WorkerFailed { .. })
            | Err(ServeError::DeadlineExceeded { .. })
            | Err(ServeError::Overloaded { .. })
            | Err(ServeError::Unavailable { .. }) => {}
            Err(other) => panic!("non-terminal-looking outcome: {other}"),
        }
    }
    assert!(
        stats.delivered_ok > 0,
        "healthy replicas must still answer under chaos"
    );
    assert!(
        stats.retries > 0,
        "the crash-looping replica must have forced retries"
    );
}

#[test]
fn one_crash_looping_replica_keeps_availability_above_99_percent() {
    let scenes = [scene(), other_scene()];
    let mut sim = RouterSim::new(router_cfg(2), serve_cfg(), vocab(), |_| StubModel::new());
    // Replica 0 panics on every request it ever processes.
    sim.router_mut()
        .set_fault_plan(0, ReplicaFaultPlan::new().crash_from(1));

    let report = sim.run(&scenes, &mixed_arrivals(100, 1_000_000));

    let stats = report.stats;
    let offered = stats.accepted + stats.degraded_hits;
    assert!(offered >= 90, "the script must mostly be admitted");
    assert!(
        stats.availability() >= 0.99,
        "availability {:.4} < 0.99 with one crash-looping replica \
         (ok={}, offered={offered})",
        stats.availability(),
        stats.delivered_ok,
    );
    // The breaker must actually take replica 0 out of rotation.
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e.kind, RouterEventKind::CircuitOpened { replica: 0 })),
        "crash-looping replica never tripped its circuit"
    );
}

#[test]
fn scheduling_fingerprint_is_bit_identical_over_100_runs() {
    let run_once = || {
        let scenes = [scene(), other_scene()];
        let mut sim = RouterSim::new(
            RouterConfig {
                hedge_delay_ns: 3_000_000,
                service: ServiceModel {
                    base_ns: 400_000,
                    per_item_ns: 50_000,
                },
                ..router_cfg(3)
            },
            serve_cfg(),
            vocab(),
            |_| StubModel::new(),
        );
        sim.router_mut().set_fault_plan(
            0,
            ReplicaFaultPlan::new()
                .crash_at_request(2)
                .crash_at_request(5),
        );
        sim.router_mut()
            .set_fault_plan(1, ReplicaFaultPlan::new().flap(4_000_000));
        sim.router_mut()
            .set_fault_plan(2, ReplicaFaultPlan::new().slow_by(2.0));
        sim.run(&scenes, &mixed_arrivals(32, 900_000)).events
    };
    let fingerprint = run_once();
    assert!(!fingerprint.is_empty());
    for run in 1..100 {
        assert_eq!(
            run_once(),
            fingerprint,
            "run {run} diverged from the fingerprint"
        );
    }
}

#[test]
fn hung_replicas_never_strand_requests_past_their_deadline() {
    let scenes = [scene()];
    let mut sim = RouterSim::new(
        RouterConfig {
            deadline_ns: 10_000_000, // 10 ms
            ..router_cfg(2)
        },
        serve_cfg(),
        vocab(),
        |_| StubModel::new(),
    );
    // Both replicas hang from before the first arrival until far past
    // every deadline: nothing can ever be answered by a model.
    for r in 0..2 {
        sim.router_mut()
            .set_fault_plan(r, ReplicaFaultPlan::new().hang_between(0, 1_000_000_000));
    }
    let arrivals: Vec<_> = (0..6)
        .map(|i| RouterArrival::new(i * 500_000, 0, "the red circle", Priority::Standard))
        .collect();
    let report = sim.run(&scenes, &arrivals);

    // Early arrivals are dispatched (circuits still closed) and expire at
    // their deadline; once probes open both circuits, later arrivals are
    // rejected as unavailable. Either way: a terminal response.
    assert_eq!(
        report.outcomes.len() + report.rejected.len(),
        6,
        "every request resolved"
    );
    for outcome in &report.outcomes {
        assert!(
            matches!(outcome, Err(ServeError::DeadlineExceeded { .. })),
            "hung replicas can only produce deadline expiries, got {outcome:?}"
        );
    }
    for rejection in &report.rejected {
        assert!(
            matches!(rejection, ServeError::Unavailable { .. }),
            "post-circuit-open rejections are Unavailable, got {rejection}"
        );
    }
    assert!(report.stats.deadline_exceeded > 0, "deadlines must fire");
}

#[test]
fn hedged_interactive_requests_win_against_a_slow_owner() {
    let scenes = [scene(), other_scene()];
    let cfg = RouterConfig {
        hedge_delay_ns: 3_000_000, // hedge after 3 ms unanswered
        service: ServiceModel {
            base_ns: 2_000_000, // 2 ms per batch when healthy
            per_item_ns: 0,
        },
        ..router_cfg(2)
    };
    // Slow the replica that actually owns scene 0 on the ring, so every
    // primary lands on a 20 ms replica while the hedge target takes 2 ms.
    let owner = HashRing::new(cfg.replicas, cfg.vnodes).route(scene_hash(&scenes[0]));
    let mut sim = RouterSim::new(cfg, serve_cfg(), vocab(), |_| StubModel::new());
    sim.router_mut()
        .set_fault_plan(owner, ReplicaFaultPlan::new().slow_by(10.0));

    let arrivals: Vec<_> = (0..8)
        .map(|i| {
            RouterArrival::new(
                i * 6_000_000,
                0,
                [
                    "the red circle",
                    "the blue square",
                    "a red square",
                    "the green triangle",
                ][i as usize % 4],
                Priority::Interactive,
            )
        })
        .collect();
    let report = sim.run(&scenes, &arrivals);

    assert_eq!(report.stats.delivered_ok, report.stats.accepted);
    assert!(
        report.stats.hedges > 0,
        "a 20 ms owner must leave hedges time to fire"
    );
    assert!(
        report.stats.hedge_wins > 0,
        "a 20 ms owner against a 2 ms hedge must lose the race \
         (hedges={}, wins={})",
        report.stats.hedges,
        report.stats.hedge_wins
    );
}

#[test]
fn degraded_mode_answers_from_cache_when_every_circuit_is_open() {
    let clock = Arc::new(VirtualClock::new());
    let mut router = Router::new(
        RouterConfig {
            replicas: 1,
            ..router_cfg(1)
        },
        serve_cfg(),
        vocab(),
        clock.clone(),
        |_| StubModel::new(),
    );
    let s = scene();

    // Warm the cache through a normal round trip.
    let resp = router
        .submit(&s, "the red circle", Priority::Standard)
        .unwrap();
    clock.advance(2_000_000); // max_wait: the batch flushes
    while router.tick() > 0 {}
    let warm = resp.try_now().expect("answered").expect("prediction");
    assert_eq!(router.replica_cache_len(0), 1);

    // Hang the replica and let heartbeat probes trip the breaker.
    router.set_fault_plan(0, ReplicaFaultPlan::new().hang_between(0, u64::MAX / 2));
    for _ in 0..4 {
        clock.advance(1_000_000);
        router.tick();
    }
    assert_eq!(router.circuit_state(0), CircuitState::Open);

    // Same request: served from the replica cache without a dispatch.
    let degraded: Response = router
        .submit(&s, "the red circle", Priority::Standard)
        .expect("degraded mode still answers cached requests");
    let got = degraded.try_now().expect("immediate").expect("prediction");
    assert_eq!(got.bbox, warm.bbox, "cache returns the original answer");
    assert_eq!(router.stats().degraded_hits, 1);

    // An uncached request has nowhere to go.
    match router.submit(&s, "the blue square", Priority::Standard) {
        Err(ServeError::Unavailable { replicas }) => assert_eq!(replicas, 1),
        other => panic!("expected Unavailable, got {other:?}"),
    }
}

#[test]
fn flapping_health_opens_and_closes_the_circuit() {
    let clock = Arc::new(VirtualClock::new());
    let mut router = Router::new(router_cfg(2), serve_cfg(), vocab(), clock.clone(), |_| {
        StubModel::new()
    });
    // Down for 3 ms, up for 3 ms, forever; probes every 1 ms see three
    // consecutive failures per down-phase (opens) and successes during the
    // up-phase (half-open trial closes).
    router.set_fault_plan(0, ReplicaFaultPlan::new().flap(3_000_000));
    // Keep one request pending so next_event-style driving is realistic.
    let s = scene();
    let _resp = router
        .submit(&s, "the red circle", Priority::Standard)
        .unwrap();
    for _ in 0..30 {
        clock.advance(1_000_000);
        while router.tick() > 0 {}
    }
    let opened = router
        .events()
        .iter()
        .filter(|e| matches!(e.kind, RouterEventKind::CircuitOpened { replica: 0 }))
        .count();
    let closed = router
        .events()
        .iter()
        .filter(|e| matches!(e.kind, RouterEventKind::CircuitClosed { replica: 0 }))
        .count();
    assert!(
        opened >= 2,
        "flapping must open the circuit repeatedly ({opened})"
    );
    assert!(
        closed >= 1,
        "recovery phases must close it again ({closed})"
    );
}

#[test]
fn class_capacity_sheds_the_overflowing_class_only() {
    let clock = Arc::new(VirtualClock::new());
    let mut router = Router::new(
        RouterConfig {
            class_capacity: [1, 64, 32],
            ..router_cfg(2)
        },
        serve_cfg(),
        vocab(),
        clock.clone(),
        |_| StubModel::new(),
    );
    let s = scene();
    let first = router.submit(&s, "the red circle", Priority::Interactive);
    assert!(first.is_ok());
    // Second interactive request while the first is unanswered: shed.
    match router.submit(&s, "the blue square", Priority::Interactive) {
        Err(ServeError::Overloaded { inflight, capacity }) => {
            assert_eq!((inflight, capacity), (1, 1));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Standard traffic is unaffected.
    assert!(router
        .submit(&s, "the blue square", Priority::Standard)
        .is_ok());
    assert_eq!(router.stats().shed, 1);
}

#[test]
fn threaded_router_server_retries_around_a_crash_looping_replica() {
    use yollo_serve::RouterServer;

    let cfg = RouterConfig {
        replicas: 2,
        deadline_ns: 0, // wall-clock deadlines are flaky under load; rely on retries
        retry: RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 50_000,
            max_backoff_ns: 500_000,
        },
        ..router_cfg(2)
    };
    let router = RouterServer::start(cfg, serve_cfg(), vocab(), |_| StubModel::new());
    router.set_fault_plan(0, ReplicaFaultPlan::new().crash_from(1));

    let scenes = [scene(), other_scene()];
    let queries = ["the red circle", "the blue square", "the green triangle"];
    let mut ok = 0;
    for i in 0..20 {
        if router.call(&scenes[i % 2], queries[i % 3]).is_ok() {
            ok += 1;
        }
    }
    let stats = router.stats();
    assert_eq!(stats.calls, 20);
    assert_eq!(
        ok, 20,
        "retries plus the healthy replica must answer everything ({stats:?})"
    );
}
