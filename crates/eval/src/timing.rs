use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock statistics of repeated inference runs (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingStats {
    /// Mean seconds per run.
    pub mean_s: f64,
    /// Median seconds per run.
    pub p50_s: f64,
    /// 95th-percentile seconds per run (nearest rank).
    #[serde(default)]
    pub p95_s: f64,
    /// 99th-percentile seconds per run (nearest rank).
    #[serde(default)]
    pub p99_s: f64,
    /// Fastest run.
    pub min_s: f64,
    /// Number of measured runs.
    pub reps: usize,
}

impl TimingStats {
    /// Ratio of another (slower) operation's mean time to this one's —
    /// the paper's "20× ∼ 30× faster" statements.
    ///
    /// # Panics
    /// Panics if this mean is zero.
    pub fn speedup_over(&self, slower: &TimingStats) -> f64 {
        assert!(self.mean_s > 0.0, "zero mean time");
        slower.mean_s / self.mean_s
    }
}

/// Times `f` after `warmup` unmeasured calls, measuring `reps` calls.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn time_inference(mut f: impl FnMut(), warmup: usize, reps: usize) -> TimingStats {
    assert!(reps > 0, "reps must be positive");
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        yollo_obs::histogram!("eval.inference_ns").record(dt.as_nanos() as u64);
        times.push(dt.as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    TimingStats {
        mean_s: times.iter().sum::<f64>() / reps as f64,
        p50_s: nearest_rank(&times, 0.50),
        p95_s: nearest_rank(&times, 0.95),
        p99_s: nearest_rank(&times, 0.99),
        min_s: times[0],
        reps,
    }
}

/// Nearest-rank quantile of an ascending-sorted non-empty slice.
fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_sleep_roughly() {
        let stats = time_inference(
            || std::thread::sleep(std::time::Duration::from_millis(2)),
            1,
            5,
        );
        assert!(stats.mean_s >= 0.002);
        assert!(stats.min_s <= stats.p50_s);
        assert!(stats.p50_s <= stats.p95_s);
        assert!(stats.p95_s <= stats.p99_s);
        assert_eq!(stats.reps, 5);
    }

    #[test]
    fn nearest_rank_quantiles() {
        let times: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(nearest_rank(&times, 0.50), 50.0);
        assert_eq!(nearest_rank(&times, 0.95), 95.0);
        assert_eq!(nearest_rank(&times, 0.99), 99.0);
        assert_eq!(nearest_rank(&[7.0], 0.5), 7.0);
        assert_eq!(nearest_rank(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn speedup_ratio() {
        let fast = TimingStats {
            mean_s: 0.01,
            p50_s: 0.01,
            p95_s: 0.01,
            p99_s: 0.01,
            min_s: 0.01,
            reps: 1,
        };
        let slow = TimingStats {
            mean_s: 0.25,
            p50_s: 0.25,
            p95_s: 0.25,
            p99_s: 0.25,
            min_s: 0.25,
            reps: 1,
        };
        assert!((fast.speedup_over(&slow) - 25.0).abs() < 1e-12);
    }
}
