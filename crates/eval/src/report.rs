use std::fmt;

/// A simple markdown table builder for the experiment reports
/// (EXPERIMENTS.md rows mirroring the paper's tables).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Formats a fraction as a percentage with two decimals ("91.63").
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["Method", "ACC@0.5"]);
        t.row(["YOLLO", "91.63"]);
        t.row(["listener-long-name", "62.98"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[1].starts_with("|-"));
        // all lines have identical width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.to_markdown().lines().nth(2).unwrap().matches('|').count() == 4);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9163), "91.63");
        assert_eq!(pct(0.0), "0.00");
    }
}
