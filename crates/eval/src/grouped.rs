use crate::IouMetrics;
use std::collections::BTreeMap;

/// Per-group IoU metrics — e.g. accuracy broken down by target category or
/// query length, used by the error-analysis extensions.
///
/// ```
/// use yollo_eval::GroupedMetrics;
/// let mut g = GroupedMetrics::new();
/// g.record("circle", 0.9);
/// g.record("circle", 0.2);
/// g.record("square", 0.7);
/// assert_eq!(g.group(&"circle").unwrap().len(), 2);
/// assert!((g.overall().acc_at(0.5) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupedMetrics<K: Ord> {
    groups: BTreeMap<K, IouMetrics>,
}

impl<K: Ord> GroupedMetrics<K> {
    /// Creates an empty collection.
    pub fn new() -> Self {
        GroupedMetrics {
            groups: BTreeMap::new(),
        }
    }

    /// Records one sample's IoU under `key`.
    pub fn record(&mut self, key: K, iou: f64) {
        self.groups.entry(key).or_default().ious.push(iou);
    }

    /// The metrics of one group.
    pub fn group(&self, key: &K) -> Option<&IouMetrics> {
        self.groups.get(key)
    }

    /// Iterates groups in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &IouMetrics)> {
        self.groups.iter()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// All samples pooled together.
    pub fn overall(&self) -> IouMetrics {
        let mut all = IouMetrics::default();
        for m in self.groups.values() {
            all.extend(m);
        }
        all
    }

    /// The group with the lowest ACC@0.5 (ties: first key) — where the
    /// model fails most.
    pub fn weakest(&self, eta: f64) -> Option<(&K, f64)> {
        self.groups
            .iter()
            .map(|(k, m)| (k, m.acc_at(eta)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }
}

/// Confidence-calibration bins: does a score of 0.9 mean 90% of those
/// predictions are correct?
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationBins {
    hits: Vec<usize>,
    totals: Vec<usize>,
    score_sums: Vec<f64>,
}

impl CalibrationBins {
    /// Creates `n` equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        CalibrationBins {
            hits: vec![0; n],
            totals: vec![0; n],
            score_sums: vec![0.0; n],
        }
    }

    /// Records a prediction with confidence `score` (clamped to `[0,1]`)
    /// and whether it was correct.
    pub fn record(&mut self, score: f64, correct: bool) {
        let n = self.totals.len();
        let bin = ((score.clamp(0.0, 1.0) * n as f64) as usize).min(n - 1);
        self.totals[bin] += 1;
        self.hits[bin] += correct as usize;
        self.score_sums[bin] += score.clamp(0.0, 1.0);
    }

    /// `(mean confidence, accuracy, count)` per non-empty bin.
    pub fn bins(&self) -> Vec<(f64, f64, usize)> {
        (0..self.totals.len())
            .filter(|&b| self.totals[b] > 0)
            .map(|b| {
                (
                    self.score_sums[b] / self.totals[b] as f64,
                    self.hits[b] as f64 / self.totals[b] as f64,
                    self.totals[b],
                )
            })
            .collect()
    }

    /// Expected calibration error: count-weighted mean |confidence −
    /// accuracy|.
    pub fn ece(&self) -> f64 {
        let total: usize = self.totals.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.bins()
            .into_iter()
            .map(|(conf, acc, n)| (conf - acc).abs() * n as f64)
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_breakdown() {
        let mut g = GroupedMetrics::new();
        g.record("a", 0.9);
        g.record("a", 0.8);
        g.record("b", 0.1);
        assert_eq!(g.len(), 2);
        assert_eq!(g.group(&"a").unwrap().acc_at(0.5), 1.0);
        assert_eq!(g.weakest(0.5), Some((&"b", 0.0)));
        assert_eq!(g.overall().len(), 3);
    }

    #[test]
    fn perfectly_calibrated_has_zero_ece() {
        let mut c = CalibrationBins::new(10);
        // 10 predictions at conf 0.8, 8 correct
        for i in 0..10 {
            c.record(0.8, i < 8);
        }
        assert!(c.ece() < 1e-9, "ece {}", c.ece());
    }

    #[test]
    fn overconfident_model_has_high_ece() {
        let mut c = CalibrationBins::new(10);
        for _ in 0..10 {
            c.record(0.95, false);
        }
        assert!(c.ece() > 0.9);
        assert_eq!(c.bins().len(), 1);
    }

    #[test]
    fn empty_bins_are_benign() {
        let c = CalibrationBins::new(5);
        assert_eq!(c.ece(), 0.0);
        assert!(c.bins().is_empty());
    }

    #[test]
    fn scores_clamp_to_unit_range() {
        let mut c = CalibrationBins::new(4);
        c.record(1.7, true);
        c.record(-0.3, false);
        assert_eq!(c.bins().iter().map(|b| b.2).sum::<usize>(), 2);
    }
}
