//! Evaluation utilities: grounding metrics (§4.3), wall-clock timing
//! (§4.5 / Table 5) and markdown report tables.

mod grouped;
mod metrics;
mod report;
mod timing;

pub use grouped::{CalibrationBins, GroupedMetrics};
pub use metrics::IouMetrics;
pub use report::{pct, Table};
pub use timing::{time_inference, TimingStats};
