use serde::{Deserialize, Serialize};

/// Per-sample IoUs of an evaluation run, with the metrics of §4.3:
/// ACC@η, COCO-style averaged ACC, and MIOU.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IouMetrics {
    /// IoU between prediction and ground truth for every sample.
    pub ious: Vec<f64>,
}

impl IouMetrics {
    /// Wraps a list of per-sample IoUs.
    pub fn new(ious: Vec<f64>) -> Self {
        IouMetrics { ious }
    }

    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.ious.len()
    }

    /// True when nothing was evaluated.
    pub fn is_empty(&self) -> bool {
        self.ious.is_empty()
    }

    /// Fraction of samples with IoU > `eta` ("if the IoU score … is greater
    /// than a threshold η = 0.5, we consider this a correct prediction").
    pub fn acc_at(&self, eta: f64) -> f64 {
        if self.ious.is_empty() {
            return 0.0;
        }
        self.ious.iter().filter(|&&i| i > eta).count() as f64 / self.ious.len() as f64
    }

    /// COCO-style ACC: mean of ACC@η for η ∈ {0.5, 0.55, …, 0.95} (Table 3).
    pub fn acc_coco(&self) -> f64 {
        let etas: Vec<f64> = (0..10).map(|i| 0.5 + 0.05 * i as f64).collect();
        etas.iter().map(|&e| self.acc_at(e)).sum::<f64>() / etas.len() as f64
    }

    /// Mean IoU over all samples (MIOU, Table 3).
    pub fn miou(&self) -> f64 {
        if self.ious.is_empty() {
            return 0.0;
        }
        self.ious.iter().sum::<f64>() / self.ious.len() as f64
    }

    /// Merges another run's samples into this one.
    pub fn extend(&mut self, other: &IouMetrics) {
        self.ious.extend_from_slice(&other.ious);
    }
}

impl FromIterator<f64> for IouMetrics {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        IouMetrics::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn metric_formulas() {
        let m = IouMetrics::new(vec![0.9, 0.6, 0.4, 0.0]);
        assert!((m.acc_at(0.5) - 0.5).abs() < 1e-12);
        assert!((m.acc_at(0.75) - 0.25).abs() < 1e-12);
        assert!((m.miou() - 0.475).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero_everywhere() {
        let m = IouMetrics::default();
        assert_eq!(m.acc_at(0.5), 0.0);
        assert_eq!(m.acc_coco(), 0.0);
        assert_eq!(m.miou(), 0.0);
        assert!(m.is_empty());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = IouMetrics::new(vec![1.0]);
        a.extend(&IouMetrics::new(vec![0.0]));
        assert_eq!(a.len(), 2);
        assert!((a.acc_at(0.5) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn acc_is_monotone_in_eta(ious in proptest::collection::vec(0.0..1.0f64, 1..40)) {
            let m = IouMetrics::new(ious);
            let mut last = 1.0;
            for i in 0..10 {
                let acc = m.acc_at(0.5 + 0.05 * i as f64);
                prop_assert!(acc <= last + 1e-12);
                last = acc;
            }
            // coco acc is bounded by acc@0.5
            prop_assert!(m.acc_coco() <= m.acc_at(0.5) + 1e-12);
        }

        #[test]
        fn miou_is_bounded_by_extremes(ious in proptest::collection::vec(0.0..1.0f64, 1..40)) {
            let m = IouMetrics::new(ious.clone());
            let lo = ious.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ious.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m.miou() >= lo - 1e-12 && m.miou() <= hi + 1e-12);
        }
    }
}
