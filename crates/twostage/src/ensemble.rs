use crate::{ProposalFeature, ProposalScorer};

/// Combines several stage-ii scorers by averaging their z-scored outputs —
/// the "speaker+listener" (and "+MMI ensemble") rows of Tables 2 and 5.
pub struct EnsembleScorer<'a> {
    members: Vec<&'a dyn ProposalScorer>,
}

impl std::fmt::Debug for EnsembleScorer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EnsembleScorer({})", self.name())
    }
}

impl<'a> EnsembleScorer<'a> {
    /// Creates an ensemble over `members`.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<&'a dyn ProposalScorer>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        EnsembleScorer { members }
    }
}

fn zscore(xs: &[f64]) -> Vec<f64> {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt().max(1e-9);
    xs.iter().map(|x| (x - mean) / sd).collect()
}

impl ProposalScorer for EnsembleScorer<'_> {
    fn score_proposals(&self, proposals: &[ProposalFeature], query: &[usize]) -> Vec<f64> {
        let mut total = vec![0.0; proposals.len()];
        for m in &self.members {
            let scores = m.score_proposals(proposals, query);
            // member score scales differ wildly (cosine vs log-prob):
            // z-score before averaging so neither dominates
            for (t, z) in total.iter_mut().zip(zscore(&scores)) {
                *t += z;
            }
        }
        for t in &mut total {
            *t /= self.members.len() as f64;
        }
        total
    }

    fn name(&self) -> String {
        self.members
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_detect::BBox;
    use yollo_tensor::Tensor;

    struct Const(Vec<f64>, &'static str);
    impl ProposalScorer for Const {
        fn score_proposals(&self, _p: &[ProposalFeature], _q: &[usize]) -> Vec<f64> {
            self.0.clone()
        }
        fn name(&self) -> String {
            self.1.into()
        }
    }

    fn feats(n: usize) -> Vec<ProposalFeature> {
        (0..n)
            .map(|i| ProposalFeature {
                bbox: BBox::new(i as f64, 0.0, 1.0, 1.0),
                objectness: 1.0,
                vector: Tensor::zeros(&[3]),
            })
            .collect()
    }

    #[test]
    fn agreeing_members_keep_the_winner() {
        let a = Const(vec![0.1, 0.9, 0.2], "a");
        let b = Const(vec![100.0, 900.0, 200.0], "b"); // same ranking, other scale
        let e = EnsembleScorer::new(vec![&a, &b]);
        let s = e.score_proposals(&feats(3), &[]);
        let best = (0..3)
            .max_by(|&i, &j| s[i].partial_cmp(&s[j]).unwrap())
            .unwrap();
        assert_eq!(best, 1);
        assert_eq!(e.name(), "a+b");
    }

    #[test]
    fn zscore_neutralises_scale() {
        let z = zscore(&[10.0, 20.0, 30.0]);
        assert!((z[1]).abs() < 1e-12);
        assert!((z[0] + z[2]).abs() < 1e-12);
        // constant scores do not explode
        let z = zscore(&[5.0, 5.0]);
        assert!(z.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        EnsembleScorer::new(vec![]);
    }
}
