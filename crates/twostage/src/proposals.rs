use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yollo_backbone::{Backbone, BackboneKind};
use yollo_detect::{
    label_anchors, nms, sample_minibatch, AnchorGrid, AnchorSpec, BBox, MatchConfig, OffsetEncoding,
};
use yollo_nn::{Adam, Binder, Conv2d, Module, Optimizer, ParamList};
use yollo_synthref::{Dataset, Scene, Split};
use yollo_tensor::{Conv2dSpec, Graph, Tensor, Var};

/// Configuration of the stage-i proposal network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProposalConfig {
    /// Backbone variant (the paper's stage-i uses a ResNet-50 Faster R-CNN).
    pub backbone: BackboneKind,
    /// Input channels.
    pub in_channels: usize,
    /// Anchor layout.
    pub anchors: AnchorSpec,
    /// Anchor labelling for training.
    pub matcher: MatchConfig,
    /// Box-offset encoding.
    pub offset_encoding: OffsetEncoding,
    /// Proposals kept after NMS ("tens or even hundreds", §1).
    pub proposals_per_image: usize,
    /// NMS IoU threshold.
    pub nms_iou: f64,
}

impl Default for ProposalConfig {
    fn default() -> Self {
        ProposalConfig {
            backbone: BackboneKind::TinyResNet,
            in_channels: 5,
            anchors: AnchorSpec::default(),
            matcher: MatchConfig {
                sample_n: 64,
                ..MatchConfig::default()
            },
            offset_encoding: OffsetEncoding::RcnnLog,
            proposals_per_image: 100,
            nms_iou: 0.7,
        }
    }
}

/// The query-agnostic region proposal network: backbone + objectness/
/// regression head over a dense anchor grid. This is stage i of the
/// two-stage baselines — it knows nothing about the query, which is exactly
/// the structural weakness §1 identifies.
#[derive(Debug)]
pub struct ProposalNetwork {
    cfg: ProposalConfig,
    backbone: Backbone,
    conv: Conv2d,
    cls: Conv2d,
    reg: Conv2d,
}

impl ProposalNetwork {
    /// Builds an untrained proposal network.
    pub fn new(cfg: ProposalConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let backbone = Backbone::new(cfg.backbone, cfg.in_channels, &mut rng);
        let hidden = 24;
        let k = cfg.anchors.per_cell();
        let s3 = Conv2dSpec { stride: 1, pad: 1 };
        let s1 = Conv2dSpec { stride: 1, pad: 0 };
        let conv = Conv2d::new(
            "rpn.conv",
            backbone.out_channels(),
            hidden,
            3,
            s3,
            true,
            &mut rng,
        );
        let cls = Conv2d::new("rpn.cls", hidden, k, 1, s1, true, &mut rng);
        let reg = Conv2d::new("rpn.reg", hidden, 4 * k, 1, s1, true, &mut rng);
        ProposalNetwork {
            cfg,
            backbone,
            conv,
            cls,
            reg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ProposalConfig {
        &self.cfg
    }

    /// The backbone (shared with the RoI extractor at inference).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    fn head<'g>(&self, bind: &Binder<'g>, feat: Var<'g>) -> (Var<'g>, Var<'g>) {
        let h = self.conv.forward(bind, feat).relu();
        let d = h.dims();
        let (b, l) = (d[0], d[2] * d[3]);
        let k = self.cfg.anchors.per_cell();
        let scores = self
            .cls
            .forward(bind, h)
            .reshape(&[b, k, l])
            .transpose()
            .reshape(&[b, l * k]);
        let offsets = self
            .reg
            .forward(bind, h)
            .reshape(&[b, 4 * k, l])
            .transpose()
            .reshape(&[b, l * k, 4]);
        (scores, offsets)
    }

    fn anchor_grid(&self, scene: &Scene) -> AnchorGrid {
        AnchorGrid::generate(
            scene.height / self.cfg.anchors.stride,
            scene.width / self.cfg.anchors.stride,
            &self.cfg.anchors,
        )
    }

    /// Trains on all object boxes of the dataset's training scenes
    /// (class-agnostic detection). Returns the mean loss of the final 10
    /// iterations.
    pub fn train(&mut self, ds: &Dataset, iterations: usize, batch: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = self.parameters();
        let mut opt = Adam::new(params.clone(), 2e-3);
        let scenes = ds.scenes();
        // restrict to scenes reachable from the training split
        let train_scene_ids: Vec<usize> = {
            let mut ids: Vec<usize> = ds
                .samples(Split::Train)
                .iter()
                .map(|s| s.scene_idx)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let mut tail = Vec::new();
        for it in 0..iterations {
            // one scene per step, `batch` anchor minibatches are inside the
            // sampled loss anyway
            let mut loss_total = 0.0;
            let g = Graph::new();
            let bind = Binder::new(&g);
            let mut total = g.scalar(0.0);
            for _ in 0..batch {
                let scene = &scenes[train_scene_ids[rng.gen_range(0..train_scene_ids.len())]];
                let (loss, l) = self.scene_loss(&bind, scene, &mut rng);
                total = total + loss;
                loss_total += l;
            }
            let total = total.mul_scalar(1.0 / batch as f64);
            opt.zero_grad();
            total.backward();
            bind.harvest();
            opt.step();
            if it + 10 >= iterations {
                tail.push(loss_total / batch as f64);
            }
        }
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }

    fn scene_loss<'g>(&self, bind: &Binder<'g>, scene: &Scene, rng: &mut StdRng) -> (Var<'g>, f64) {
        let g = bind.graph();
        let img = scene
            .render()
            .reshape(&[1, self.cfg.in_channels, scene.height, scene.width]);
        let feat = self.backbone.forward(bind, g.leaf(img));
        let (scores, offsets) = self.head(bind, feat);
        let grid = self.anchor_grid(scene);
        let a = grid.len();

        // label each anchor against its best-IoU object
        let mut sel = Vec::new();
        let mut labels = Vec::new();
        let mut pos = Vec::new();
        let mut reg_t = Vec::new();
        // per-object labelling keeps every object represented
        for obj in &scene.objects {
            let l = label_anchors(grid.boxes(), &obj.bbox, &self.cfg.matcher);
            let (p, n) = sample_minibatch(&l, &self.cfg.matcher, rng);
            for &i in &p {
                sel.push(i);
                labels.push(1.0);
                pos.push(i);
                reg_t.extend_from_slice(
                    &obj.bbox.encode(&grid.boxes()[i], self.cfg.offset_encoding),
                );
            }
            // cap negatives per object to keep balance
            for &i in n.iter().take(p.len().max(4) * 3) {
                // skip negatives that actually overlap another object well
                let iou_any = scene
                    .objects
                    .iter()
                    .map(|o| o.bbox.iou(&grid.boxes()[i]))
                    .fold(0.0, f64::max);
                if iou_any < self.cfg.matcher.rho_low {
                    sel.push(i);
                    labels.push(0.0);
                }
            }
        }
        let flat_scores = scores.reshape(&[a]);
        let picked = flat_scores.gather_rows(&sel);
        let cls = picked.bce_with_logits(&Tensor::from_vec(labels, &[sel.len()]));
        let reg = if pos.is_empty() {
            g.scalar(0.0)
        } else {
            let flat_off = offsets.reshape(&[a, 4]);
            let po = flat_off.gather_rows(&pos);
            po.smooth_l1(&Tensor::from_vec(reg_t, &[pos.len(), 4]), 1.0)
        };
        let total = cls + reg;
        let v = total.value().scalar();
        (total, v)
    }

    /// Stage-i inference: proposes up to `proposals_per_image` boxes with
    /// objectness scores, NMS-filtered, best first. Also returns the C4
    /// feature map `[1, C, fh, fw]` for RoI pooling.
    pub fn propose(&self, scene: &Scene) -> (Vec<(BBox, f64)>, Tensor) {
        let g = Graph::new();
        let bind = Binder::new(&g);
        let img = scene
            .render()
            .reshape(&[1, self.cfg.in_channels, scene.height, scene.width]);
        let feat = self.backbone.forward(&bind, g.leaf(img));
        let (scores, offsets) = self.head(&bind, feat);
        let grid = self.anchor_grid(scene);
        let s = scores.value();
        let o = offsets.value();
        let a = grid.len();
        let off = o.reshape(&[a, 4]);
        let mut boxes = Vec::with_capacity(a);
        let mut probs = Vec::with_capacity(a);
        for (i, anchor) in grid.boxes().iter().enumerate() {
            let row = off.slice(0, i, 1);
            let t = [
                row.as_slice()[0],
                row.as_slice()[1],
                row.as_slice()[2],
                row.as_slice()[3],
            ];
            let b = BBox::decode(anchor, t, self.cfg.offset_encoding)
                .clip_to(scene.width as f64, scene.height as f64);
            boxes.push(b);
            probs.push(1.0 / (1.0 + (-s.as_slice()[i]).exp()));
        }
        let keep = nms(
            &boxes,
            &probs,
            self.cfg.nms_iou,
            self.cfg.proposals_per_image,
        );
        let proposals = keep.into_iter().map(|i| (boxes[i], probs[i])).collect();
        (proposals, feat.value())
    }

    /// Side length of the per-region crop fed to the backbone by
    /// [`ProposalNetwork::crop_features`].
    pub const CROP_SIZE: usize = 24;

    /// Feature length produced by [`ProposalNetwork::crop_features`].
    pub fn crop_feat_dim(&self) -> usize {
        self.backbone.out_channels() + 5
    }

    /// Per-region CNN features, the way the original speaker/listener
    /// baselines [42] actually computed them: each proposal is cropped from
    /// the image, resized, and pushed through the backbone *separately*.
    /// This is the cost structure behind Table 5's slow stage-ii times —
    /// `O(#proposals)` full CNN passes (the shared-map
    /// [`RoiExtractor`](crate::RoiExtractor) is the modern fast alternative
    /// used for the accuracy experiments).
    pub fn crop_features(
        &self,
        scene: &Scene,
        proposals: &[(BBox, f64)],
    ) -> Vec<crate::ProposalFeature> {
        let image = scene.render();
        proposals
            .iter()
            .map(|(bbox, objectness)| {
                let crop = crate::roi::crop_resize(&image, *bbox, Self::CROP_SIZE).reshape(&[
                    1,
                    self.cfg.in_channels,
                    Self::CROP_SIZE,
                    Self::CROP_SIZE,
                ]);
                let g = Graph::new();
                let bind = Binder::new(&g);
                let pooled = self
                    .backbone
                    .forward(&bind, g.leaf(crop))
                    .global_avg_pool()
                    .value();
                let mut vector = pooled.into_vec();
                let (cx, cy) = bbox.center();
                vector.push(cx / scene.width as f64);
                vector.push(cy / scene.height as f64);
                vector.push(bbox.w / scene.width as f64);
                vector.push(bbox.h / scene.height as f64);
                vector.push(bbox.area() / (scene.width * scene.height) as f64);
                let dim = vector.len();
                crate::ProposalFeature {
                    bbox: *bbox,
                    objectness: *objectness,
                    vector: Tensor::from_vec(vector, &[dim]),
                }
            })
            .collect()
    }

    /// Recall of stage i on a split: the fraction of targets covered by at
    /// least one proposal with IoU > `eta`. When a target is missed here,
    /// stage ii *cannot* succeed — §1's "the object detector may even miss
    /// the target".
    pub fn target_recall(&self, ds: &Dataset, split: Split, eta: f64) -> f64 {
        let samples = ds.samples(split);
        if samples.is_empty() {
            return 0.0;
        }
        let mut hit = 0;
        let mut last_scene = usize::MAX;
        let mut cached: Vec<(BBox, f64)> = Vec::new();
        for s in samples {
            if s.scene_idx != last_scene {
                cached = self.propose(ds.scene_of(s)).0;
                last_scene = s.scene_idx;
            }
            let target = ds.target_bbox(s);
            if cached.iter().any(|(b, _)| b.iou(&target) > eta) {
                hit += 1;
            }
        }
        hit as f64 / samples.len() as f64
    }
}

impl crate::Proposer for ProposalNetwork {
    fn propose_with_features(&self, scene: &Scene) -> (Vec<(BBox, f64)>, Tensor) {
        self.propose(scene)
    }

    fn feature_channels(&self) -> usize {
        self.backbone.out_channels()
    }
}

impl Module for ProposalNetwork {
    fn parameters(&self) -> ParamList {
        let mut ps = self.backbone.parameters();
        ps.extend(self.conv.parameters());
        ps.extend(self.cls.parameters());
        ps.extend(self.reg.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn tiny_ds() -> Dataset {
        Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 9))
    }

    #[test]
    fn propose_respects_limits_and_nms() {
        let ds = tiny_ds();
        let cfg = ProposalConfig {
            proposals_per_image: 10,
            nms_iou: 0.5,
            ..ProposalConfig::default()
        };
        let rpn = ProposalNetwork::new(cfg, 0);
        let scene = &ds.scenes()[0];
        let (props, feat) = rpn.propose(scene);
        assert!(props.len() <= 10);
        assert_eq!(
            feat.dims(),
            &[
                1,
                rpn.backbone().out_channels(),
                scene.height / 8,
                scene.width / 8
            ]
        );
        for i in 0..props.len() {
            for j in (i + 1)..props.len() {
                assert!(props[i].0.iou(&props[j].0) <= 0.5 + 1e-9, "nms violated");
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_ds();
        let early = {
            let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 1);
            rpn.train(&ds, 10, 2, 2)
        };
        let mut rpn = ProposalNetwork::new(ProposalConfig::default(), 1);
        let late = rpn.train(&ds, 80, 2, 2);
        assert!(late < early, "rpn loss {early:.3} -> {late:.3}");
    }

    #[test]
    fn propose_is_deterministic() {
        let ds = tiny_ds();
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 4);
        let scene = &ds.scenes()[1];
        assert_eq!(rpn.propose(scene).0, rpn.propose(scene).0);
    }

    #[test]
    fn recall_monotone_in_eta() {
        let ds = tiny_ds();
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 5);
        let r30 = rpn.target_recall(&ds, Split::Val, 0.3);
        let r70 = rpn.target_recall(&ds, Split::Val, 0.7);
        assert!(r70 <= r30 + 1e-12, "recall must fall as eta rises");
    }

    #[test]
    fn parameters_cover_backbone_and_heads() {
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 6);
        let n_backbone = rpn.backbone().num_params();
        assert!(rpn.num_params() > n_backbone, "head parameters missing");
    }
}
