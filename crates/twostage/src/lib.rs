//! Two-stage visual-grounding baselines (the systems of Table 2/Table 5).
//!
//! The paper's comparison targets follow the classical pipeline its
//! introduction criticises: **stage i** proposes candidate regions with a
//! stand-alone detector (Faster R-CNN for the originals); **stage ii**
//! scores every proposal against the query with a matching network and
//! returns the best match. Both stages are reproduced here from scratch:
//!
//! * [`ProposalNetwork`] — a query-*agnostic* RPN (own backbone, objectness
//!   + box regression per anchor, NMS), the Faster-R-CNN stand-in whose
//!   time Table 5 reports as "(+0.29s)";
//! * [`RoiExtractor`] — RoI pooling of backbone features per proposal;
//! * [`Listener`] — a joint-embedding matcher (GRU query encoder vs.
//!   projected region features), after [42]'s listener;
//! * [`Speaker`] — a conditional GRU language model scoring `P(query |
//!   region)`, after [42]'s speaker;
//! * MMI — maximum-mutual-information contrastive training, a `mmi_margin`
//!   flag on the listener/speaker configs ("+MMI" rows);
//! * [`EnsembleScorer`] — score-averaged "speaker+listener" combinations;
//! * [`TwoStageGrounder`] — the full inference path, which *really* runs
//!   stage i and then scores proposals one by one, so the latency gap to
//!   the one-stage YOLLO (Table 5) and the missed-target accuracy ceiling
//!   (§1 "Low accuracy") emerge from the same mechanisms as in the paper.

mod ensemble;
mod gridprop;
mod listener;
mod pipeline;
mod proposals;
mod roi;
mod speaker;

pub use ensemble::EnsembleScorer;
pub use gridprop::GridProposals;
pub use listener::{Listener, ListenerConfig};
pub use pipeline::{ProposalScorer, Proposer, TwoStageGrounder};
pub use proposals::{ProposalConfig, ProposalNetwork};
pub use roi::{crop_resize, CandidateCache, ProposalFeature, RoiExtractor};
pub use speaker::{Speaker, SpeakerConfig};
