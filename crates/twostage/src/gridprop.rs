//! A training-free sliding-window proposer — the stand-in for the cheap
//! objectness models §2 cites (BING, Selective Search, MultiBox): "faster
//! but less accurate … they have to increase the number of proposals to
//! improve the recall rate".

use crate::pipeline::Proposer;
use serde::{Deserialize, Serialize};
use yollo_detect::{nms, AnchorGrid, AnchorSpec, BBox};
use yollo_synthref::Scene;
use yollo_tensor::Tensor;

/// Sliding-window proposals scored by a colour-contrast objectness
/// heuristic (no learned parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridProposals {
    /// Candidate windows per cell (anchors reused as the window layout).
    pub anchors: AnchorSpec,
    /// Proposals kept after NMS.
    pub max_keep: usize,
    /// NMS IoU threshold.
    pub nms_iou: f64,
}

impl Default for GridProposals {
    fn default() -> Self {
        GridProposals {
            anchors: AnchorSpec::default(),
            max_keep: 100,
            nms_iou: 0.6,
        }
    }
}

impl GridProposals {
    /// Colour-contrast objectness: how much the window's mean colour
    /// deviates from the (dark) background, penalised by window size so
    /// tight windows outrank loose ones.
    fn objectness(img: &Tensor, b: &BBox, width: usize, height: usize) -> f64 {
        let x1 = b.x.max(0.0) as usize;
        let y1 = b.y.max(0.0) as usize;
        let x2 = (b.x2().min(width as f64) as usize).max(x1 + 1).min(width);
        let y2 = (b.y2().min(height as f64) as usize).max(y1 + 1).min(height);
        let mut contrast = 0.0;
        let mut count = 0.0;
        for c in 0..3 {
            for y in y1..y2 {
                for x in x1..x2 {
                    // background sits near 0.13; objects are ≥0.5 in some
                    // channel
                    contrast += (img.at(&[c, y, x]) - 0.13).max(0.0);
                    count += 1.0;
                }
            }
        }
        if count == 0.0 {
            0.0
        } else {
            contrast / count
        }
    }

    /// Proposes windows for a scene (no learning, no backbone).
    pub fn propose(&self, scene: &Scene) -> Vec<(BBox, f64)> {
        let img = scene.render();
        let grid = AnchorGrid::generate(
            scene.height / self.anchors.stride,
            scene.width / self.anchors.stride,
            &self.anchors,
        );
        let boxes: Vec<BBox> = grid
            .boxes()
            .iter()
            .map(|b| b.clip_to(scene.width as f64, scene.height as f64))
            .collect();
        let scores: Vec<f64> = boxes
            .iter()
            .map(|b| GridProposals::objectness(&img, b, scene.width, scene.height))
            .collect();
        nms(&boxes, &scores, self.nms_iou, self.max_keep)
            .into_iter()
            .map(|i| (boxes[i], scores[i]))
            .collect()
    }

    /// Recall of the proposals against arbitrary targets.
    pub fn recall(&self, scene: &Scene, targets: &[BBox], eta: f64) -> f64 {
        if targets.is_empty() {
            return 0.0;
        }
        let props = self.propose(scene);
        let hit = targets
            .iter()
            .filter(|t| props.iter().any(|(b, _)| b.iou(t) > eta))
            .count();
        hit as f64 / targets.len() as f64
    }
}

impl Proposer for GridProposals {
    fn propose_with_features(&self, scene: &Scene) -> (Vec<(BBox, f64)>, Tensor) {
        // features for RoI pooling: the raw 5-channel image average-pooled
        // to the anchor stride (colour + coordinates are exactly what the
        // heuristic pipeline has to offer)
        let img = scene.render();
        let s = self.anchors.stride;
        let (fh, fw) = (scene.height / s, scene.width / s);
        let pooled = Tensor::from_fn(&[1, 5, fh, fw], |flat| {
            let fwid = fw;
            let c = flat / (fh * fwid);
            let rem = flat % (fh * fwid);
            let (i, j) = (rem / fwid, rem % fwid);
            let mut sum = 0.0;
            for dy in 0..s {
                for dx in 0..s {
                    sum += img.at(&[c, i * s + dy, j * s + dx]);
                }
            }
            sum / (s * s) as f64
        });
        (self.propose(scene), pooled)
    }

    fn feature_channels(&self) -> usize {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_synthref::{ColorName, SceneBuilder, ShapeKind};

    fn two_object_scene() -> Scene {
        SceneBuilder::new(72, 48)
            .object_centered(ShapeKind::Square, ColorName::Red, 16.0, 16.0, 14.0, 14.0)
            .object_centered(ShapeKind::Square, ColorName::Cyan, 52.0, 32.0, 14.0, 14.0)
            .build()
    }

    #[test]
    fn objects_attract_top_proposals() {
        let scene = two_object_scene();
        let gp = GridProposals::default();
        let props = gp.propose(&scene);
        assert!(!props.is_empty());
        // the best proposal overlaps one of the objects decently
        let best = props[0].0;
        let max_iou = scene
            .objects
            .iter()
            .map(|o| o.bbox.iou(&best))
            .fold(0.0, f64::max);
        assert!(max_iou > 0.3, "best proposal missed both objects: {best:?}");
    }

    #[test]
    fn recall_reaches_both_objects() {
        let scene = two_object_scene();
        let gp = GridProposals::default();
        let targets: Vec<BBox> = scene.objects.iter().map(|o| o.bbox).collect();
        // the window layout is anchor-quantised, so use a moderate IoU bar
        assert!(
            gp.recall(&scene, &targets, 0.3) > 0.4,
            "recall@0.3 = {}",
            gp.recall(&scene, &targets, 0.3)
        );
        assert_eq!(gp.recall(&scene, &[], 0.5), 0.0);
    }

    #[test]
    fn proposer_trait_yields_image_features() {
        let scene = two_object_scene();
        let gp = GridProposals::default();
        let (props, feat) = gp.propose_with_features(&scene);
        assert!(!props.is_empty());
        assert_eq!(feat.dims(), &[1, 5, 6, 9]);
        // red object's cell has high red channel
        assert!(feat.at(&[0, 0, 2, 2]) > 0.3);
    }
}
