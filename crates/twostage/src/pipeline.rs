use crate::{ProposalFeature, RoiExtractor};
use yollo_detect::BBox;
use yollo_eval::IouMetrics;
use yollo_synthref::{Dataset, Scene, Split};
use yollo_tensor::Tensor;
use yollo_text::Vocab;

/// Stage i of the two-stage pipeline: something that proposes candidate
/// boxes and supplies a feature map for RoI pooling. Implemented by the
/// learned [`ProposalNetwork`](crate::ProposalNetwork) (the Faster-R-CNN
/// stand-in) and by the training-free
/// [`GridProposals`](crate::GridProposals) heuristic.
pub trait Proposer {
    /// Proposals (best first) plus the `[1, C, fh, fw]` feature map the
    /// RoI extractor pools from.
    fn propose_with_features(&self, scene: &Scene) -> (Vec<(BBox, f64)>, Tensor);

    /// Channel count `C` of the returned feature map.
    fn feature_channels(&self) -> usize;
}

/// Stage ii of the two-stage pipeline: something that scores each proposal
/// against the query. Implementations deliberately process proposals one by
/// one — the per-proposal cost is the inefficiency §1 criticises and
/// Table 5 measures.
pub trait ProposalScorer {
    /// One matching score per proposal (higher = better match). `query`
    /// is a padded id sequence; implementations strip PAD themselves.
    fn score_proposals(&self, proposals: &[ProposalFeature], query: &[usize]) -> Vec<f64>;

    /// Row label for the report tables.
    fn name(&self) -> String;
}

/// The complete two-stage grounding pipeline: propose, pool, score, argmax.
#[derive(Clone, Copy)]
pub struct TwoStageGrounder<'a> {
    proposer: &'a dyn Proposer,
    roi: RoiExtractor,
    scorer: &'a dyn ProposalScorer,
    vocab: &'a Vocab,
    max_query_len: usize,
}

impl std::fmt::Debug for TwoStageGrounder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TwoStageGrounder({})", self.scorer.name())
    }
}

impl<'a> TwoStageGrounder<'a> {
    /// Assembles a pipeline from trained parts.
    pub fn new(
        proposer: &'a dyn Proposer,
        roi: RoiExtractor,
        scorer: &'a dyn ProposalScorer,
        vocab: &'a Vocab,
        max_query_len: usize,
    ) -> Self {
        TwoStageGrounder {
            proposer,
            roi,
            scorer,
            vocab,
            max_query_len,
        }
    }

    /// The stage-ii scorer's label.
    pub fn name(&self) -> String {
        self.scorer.name()
    }

    /// Grounds a tokenised query in a scene: runs stage i (proposals) and
    /// stage ii (per-proposal matching), returns the best box and score.
    /// Falls back to the whole image if stage i proposes nothing.
    pub fn ground(&self, scene: &Scene, tokens: &[String]) -> (BBox, f64) {
        let (proposals, feat_map) = self.proposer.propose_with_features(scene);
        if proposals.is_empty() {
            return (
                BBox::new(0.0, 0.0, scene.width as f64, scene.height as f64),
                0.0,
            );
        }
        let feats: Vec<ProposalFeature> = proposals
            .iter()
            .map(|(b, s)| {
                self.roi
                    .extract(&feat_map, *b, *s, scene.width, scene.height)
            })
            .collect();
        let query = self.vocab.encode_padded(tokens, self.max_query_len);
        let scores = self.scorer.score_proposals(&feats, &query);
        let mut best = 0;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        (feats[best].bbox, scores[best])
    }

    /// Evaluates the pipeline over a split (proposals cached per scene).
    pub fn evaluate(&self, ds: &Dataset, split: Split) -> IouMetrics {
        let mut ious = Vec::new();
        let mut last_scene = usize::MAX;
        let mut cached: Vec<ProposalFeature> = Vec::new();
        for s in ds.samples(split) {
            let scene = ds.scene_of(s);
            if s.scene_idx != last_scene {
                let (proposals, feat_map) = self.proposer.propose_with_features(scene);
                cached = proposals
                    .iter()
                    .map(|(b, sc)| {
                        self.roi
                            .extract(&feat_map, *b, *sc, scene.width, scene.height)
                    })
                    .collect();
                last_scene = s.scene_idx;
            }
            let target = ds.target_bbox(s);
            if cached.is_empty() {
                ious.push(0.0);
                continue;
            }
            let query = self.vocab.encode_padded(&s.tokens, self.max_query_len);
            let scores = self.scorer.score_proposals(&cached, &query);
            let mut best = 0;
            for (i, &sc) in scores.iter().enumerate() {
                if sc > scores[best] {
                    best = i;
                }
            }
            ious.push(cached[best].bbox.iou(&target));
        }
        IouMetrics::new(ious)
    }
}

/// Strips PAD ids from a padded query (shared by the stage-ii scorers).
pub(crate) fn strip_pad(query: &[usize]) -> Vec<usize> {
    query
        .iter()
        .copied()
        .filter(|&id| id != Vocab::pad_id())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scorer that prefers large proposals — enough to test the pipeline
    /// plumbing without trained weights.
    struct AreaScorer;

    impl ProposalScorer for AreaScorer {
        fn score_proposals(&self, proposals: &[ProposalFeature], _q: &[usize]) -> Vec<f64> {
            proposals.iter().map(|p| p.bbox.area()).collect()
        }
        fn name(&self) -> String {
            "area".into()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_untrained() {
        use crate::{ProposalConfig, ProposalNetwork};
        use yollo_synthref::{DatasetConfig, DatasetKind};
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 0);
        let roi = RoiExtractor::new(8, 2);
        let vocab = ds.build_vocab();
        let scorer = AreaScorer;
        let g = TwoStageGrounder::new(&rpn, roi, &scorer, &vocab, ds.max_query_len());
        let m = g.evaluate(&ds, Split::Val);
        assert_eq!(m.len(), ds.samples(Split::Val).len());
        assert!(m.ious.iter().all(|i| (0.0..=1.0).contains(i)));
        let s = &ds.samples(Split::Val)[0];
        let (bbox, _) = g.ground(ds.scene_of(s), &s.tokens);
        assert!(bbox.w > 0.0 && bbox.h > 0.0);
    }

    #[test]
    fn strip_pad_removes_only_pad() {
        assert_eq!(strip_pad(&[2, 0, 3, 0, 0]), vec![2, 3]);
        assert!(strip_pad(&[0, 0]).is_empty());
    }
}
