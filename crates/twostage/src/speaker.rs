use crate::pipeline::strip_pad;
use crate::{CandidateCache, ProposalFeature, ProposalScorer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yollo_nn::{Adam, Binder, Embedding, Gru, GruState, Linear, Module, Optimizer, ParamList};
use yollo_synthref::{Dataset, Split};
use yollo_tensor::{Graph, Var};
use yollo_text::Vocab;

/// Speaker hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeakerConfig {
    /// Word-embedding dimension.
    pub word_dim: usize,
    /// GRU hidden size.
    pub hidden: usize,
    /// Region feature-vector length.
    pub feat_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// When set, adds the MMI contrastive margin: the query must be more
    /// likely under the target region than under a random in-scene
    /// negative ("+MMI" training of [42]/[25]).
    pub mmi_margin: Option<f64>,
}

impl SpeakerConfig {
    /// A laptop-scale default for the given feature/vocab sizes.
    pub fn small(feat_dim: usize, vocab_size: usize) -> Self {
        SpeakerConfig {
            word_dim: 24,
            hidden: 32,
            feat_dim,
            vocab_size,
            lr: 2e-3,
            mmi_margin: None,
        }
    }
}

/// The "speaker" of [42]: a conditional GRU language model that scores a
/// proposal by the likelihood of *generating the query as its caption*
/// (the CNN-LSTM reverse-captioning view of VG, §2). Scoring a proposal
/// means running the LM over the whole query — the most expensive stage-ii
/// matcher, as Table 5 shows.
#[derive(Debug)]
pub struct Speaker {
    cfg: SpeakerConfig,
    word_emb: Embedding,
    init_proj: Linear,
    gru: Gru,
    out: Linear,
}

impl Speaker {
    /// Builds an untrained speaker.
    pub fn new(cfg: SpeakerConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Speaker {
            cfg,
            word_emb: Embedding::new("speaker.word", cfg.vocab_size, cfg.word_dim, &mut rng),
            init_proj: Linear::new("speaker.init", cfg.feat_dim, cfg.hidden, true, &mut rng),
            gru: Gru::new("speaker.gru", cfg.word_dim, cfg.hidden, &mut rng),
            out: Linear::new("speaker.out", cfg.hidden, cfg.vocab_size, true, &mut rng),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SpeakerConfig {
        &self.cfg
    }

    /// Length-normalised log-likelihood `log P(query | region) / n` as a
    /// differentiable scalar. PAD (id 0) acts as the BOS token.
    fn log_likelihood<'g>(
        &self,
        bind: &Binder<'g>,
        feat: &ProposalFeature,
        ids: &[usize],
    ) -> Var<'g> {
        let g = bind.graph();
        let ids = if ids.is_empty() {
            vec![Vocab::unk_id()]
        } else {
            ids.to_vec()
        };
        let f = g.leaf(feat.vector.reshape(&[1, self.cfg.feat_dim]));
        let mut state = GruState(self.init_proj.forward(bind, f).tanh());
        // inputs are the shifted sequence: BOS(=PAD), t1, …, t_{n-1}
        let mut inputs = vec![Vocab::pad_id()];
        inputs.extend_from_slice(&ids[..ids.len() - 1]);
        let emb = self.word_emb.forward(bind, &inputs); // [n, d]
        let mut total = g.scalar(0.0);
        for (t, &tok) in ids.iter().enumerate() {
            let x = emb.slice(0, t, 1); // [1, d]
            state = self.gru.step(bind, x, state);
            let logits = self.out.forward(bind, state.0); // [1, V]
            let logp = logits.log_softmax_lastdim().slice(1, tok, 1);
            total = total + logp.reshape(&[]);
        }
        total.mul_scalar(1.0 / ids.len() as f64)
    }

    /// Trains with teacher forcing on ground-truth candidates. Returns the
    /// mean loss of the last 10 iterations.
    ///
    /// # Panics
    /// Panics if the cache is empty.
    pub fn train(
        &mut self,
        ds: &Dataset,
        vocab: &Vocab,
        cache: &CandidateCache,
        iterations: usize,
        seed: u64,
    ) -> f64 {
        assert!(!cache.is_empty(), "empty candidate cache");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(self.parameters(), self.cfg.lr);
        let train = ds.samples(Split::Train);
        let mut tail = Vec::new();
        for it in 0..iterations {
            let s = &train[rng.gen_range(0..train.len())];
            let cands = cache.candidates(s.scene_idx);
            let ids: Vec<usize> = s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect();
            let g = Graph::new();
            let bind = Binder::new(&g);
            let pos = self.log_likelihood(&bind, &cands[s.target_idx], &ids);
            let mut loss = pos.neg();
            if let Some(margin) = self.cfg.mmi_margin {
                if cands.len() > 1 {
                    let mut neg_idx = rng.gen_range(0..cands.len());
                    if neg_idx == s.target_idx {
                        neg_idx = (neg_idx + 1) % cands.len();
                    }
                    let neg = self.log_likelihood(&bind, &cands[neg_idx], &ids);
                    loss = loss + (neg - pos).add_scalar(margin).relu();
                }
            }
            opt.zero_grad();
            loss.backward();
            bind.harvest();
            opt.step();
            if it + 10 >= iterations {
                tail.push(loss.value().scalar());
            }
        }
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }

    /// Plain (non-differentiable) log-likelihood for inference.
    pub fn score_one(&self, feat: &ProposalFeature, ids: &[usize]) -> f64 {
        let g = Graph::new();
        let bind = Binder::new(&g);
        self.log_likelihood(&bind, feat, ids).value().scalar()
    }
}

impl Module for Speaker {
    fn parameters(&self) -> ParamList {
        let mut ps = self.word_emb.parameters();
        ps.extend(self.init_proj.parameters());
        ps.extend(self.gru.parameters());
        ps.extend(self.out.parameters());
        ps
    }
}

impl ProposalScorer for Speaker {
    fn score_proposals(&self, proposals: &[ProposalFeature], query: &[usize]) -> Vec<f64> {
        let ids = strip_pad(query);
        // the LM runs once per proposal — the dominant stage-ii cost
        proposals.iter().map(|p| self.score_one(p, &ids)).collect()
    }

    fn name(&self) -> String {
        if self.cfg.mmi_margin.is_some() {
            "speaker+MMI".into()
        } else {
            "speaker".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProposalConfig, ProposalNetwork, RoiExtractor};
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn setup() -> (Dataset, CandidateCache, usize, Vocab) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 0);
        let roi = RoiExtractor::new(8, 2);
        let cache = CandidateCache::build(&rpn, roi, &ds);
        let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
        let vocab = ds.build_vocab();
        (ds, cache, feat_dim, vocab)
    }

    #[test]
    fn likelihoods_are_negative_log_probs() {
        let (ds, cache, feat_dim, vocab) = setup();
        let speaker = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 1);
        let s = &ds.samples(Split::Train)[0];
        let ids: Vec<usize> = s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect();
        let lp = speaker.score_one(&cache.candidates(s.scene_idx)[s.target_idx], &ids);
        assert!(lp < 0.0, "log-likelihood must be negative, got {lp}");
        assert!(lp.is_finite());
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, cache, feat_dim, vocab) = setup();
        let early = {
            let mut sp = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 1);
            sp.train(&ds, &vocab, &cache, 10, 7)
        };
        let mut sp = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 1);
        let late = sp.train(&ds, &vocab, &cache, 150, 7);
        assert!(late < early, "speaker loss {early} -> {late}");
    }

    #[test]
    fn mmi_training_also_runs() {
        let (ds, cache, feat_dim, vocab) = setup();
        let cfg = SpeakerConfig {
            mmi_margin: Some(0.5),
            ..SpeakerConfig::small(feat_dim, vocab.len())
        };
        let mut sp = Speaker::new(cfg, 1);
        assert_eq!(sp.name(), "speaker+MMI");
        let loss = sp.train(&ds, &vocab, &cache, 20, 3);
        assert!(loss.is_finite());
    }
}
