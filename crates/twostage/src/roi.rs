use crate::ProposalNetwork;
use std::collections::HashMap;
use yollo_detect::BBox;
use yollo_nn::Binder;
use yollo_synthref::{Dataset, Scene, Split};
use yollo_tensor::{Graph, Tensor};

/// A proposal (or ground-truth candidate) with its pooled feature vector:
/// `pool×pool` max-pooled C4 features plus 5 normalised geometry values
/// (cx, cy, w, h, area).
#[derive(Debug, Clone, PartialEq)]
pub struct ProposalFeature {
    /// The region, in image pixels.
    pub bbox: BBox,
    /// Stage-i objectness (1.0 for ground-truth candidates).
    pub objectness: f64,
    /// The flat feature vector (`channels·pool² + 5`).
    pub vector: Tensor,
}

/// Max-RoI-pools backbone features for arbitrary boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoiExtractor {
    stride: usize,
    pool: usize,
}

impl RoiExtractor {
    /// Creates an extractor for feature maps of the given stride, pooling
    /// each RoI to `pool × pool` bins.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(stride: usize, pool: usize) -> Self {
        assert!(stride > 0 && pool > 0, "stride/pool must be positive");
        RoiExtractor { stride, pool }
    }

    /// Feature-vector length for a `channels`-channel map.
    pub fn feat_dim(&self, channels: usize) -> usize {
        channels * self.pool * self.pool + 5
    }

    /// Pools `bbox` from `feat_map` (`[1, C, fh, fw]`).
    ///
    /// # Panics
    /// Panics if the map is not rank 4 with batch 1.
    pub fn extract(
        &self,
        feat_map: &Tensor,
        bbox: BBox,
        objectness: f64,
        img_w: usize,
        img_h: usize,
    ) -> ProposalFeature {
        assert_eq!(feat_map.rank(), 4, "feature map must be [1,C,fh,fw]");
        assert_eq!(feat_map.dims()[0], 1, "batched RoI pooling not needed");
        let (c, fh, fw) = (feat_map.dims()[1], feat_map.dims()[2], feat_map.dims()[3]);
        let fb = bbox.scale(1.0 / self.stride as f64);
        // clamp the box onto the grid, ensuring ≥1 cell in each direction
        let x1 = (fb.x.floor().max(0.0) as usize).min(fw - 1);
        let y1 = (fb.y.floor().max(0.0) as usize).min(fh - 1);
        let x2 = (fb.x2().ceil() as usize).clamp(x1 + 1, fw);
        let y2 = (fb.y2().ceil() as usize).clamp(y1 + 1, fh);
        let (bw, bh) = (x2 - x1, y2 - y1);
        let mut vector = Vec::with_capacity(self.feat_dim(c));
        let fm = feat_map.as_slice();
        for ch in 0..c {
            let base = ch * fh * fw;
            for by in 0..self.pool {
                for bx in 0..self.pool {
                    // bin [by,bx] covers a sub-rectangle of the RoI
                    let ys = y1 + by * bh / self.pool;
                    let ye = (y1 + (by + 1) * bh / self.pool).max(ys + 1).min(y2);
                    let xs = x1 + bx * bw / self.pool;
                    let xe = (x1 + (bx + 1) * bw / self.pool).max(xs + 1).min(x2);
                    let mut m = f64::NEG_INFINITY;
                    for y in ys..ye {
                        for x in xs..xe {
                            m = m.max(fm[base + y * fw + x]);
                        }
                    }
                    vector.push(m);
                }
            }
        }
        let (cx, cy) = bbox.center();
        vector.push(cx / img_w as f64);
        vector.push(cy / img_h as f64);
        vector.push(bbox.w / img_w as f64);
        vector.push(bbox.h / img_h as f64);
        vector.push(bbox.area() / (img_w * img_h) as f64);
        ProposalFeature {
            bbox,
            objectness,
            vector: Tensor::from_vec(vector, &[self.feat_dim(c)]),
        }
    }

    /// Features for every ground-truth object of a scene, using the
    /// proposal network's (fixed) backbone — the training candidates of the
    /// stage-ii matchers ("they choose to use … the ground-truth candidate
    /// bounding boxes", §2).
    pub fn features_for_objects(
        &self,
        rpn: &ProposalNetwork,
        scene: &Scene,
    ) -> Vec<ProposalFeature> {
        let g = Graph::new();
        let bind = Binder::new(&g);
        let img = scene
            .render()
            .reshape(&[1, rpn.config().in_channels, scene.height, scene.width]);
        let feat = rpn.backbone().forward(&bind, g.leaf(img)).value();
        scene
            .objects
            .iter()
            .map(|o| self.extract(&feat, o.bbox, 1.0, scene.width, scene.height))
            .collect()
    }
}

/// Crops a region from a rendered image `[C, H, W]` and resamples it to
/// `out×out` pixels (nearest neighbour) — the per-region input of the
/// original speaker/listener pipelines, which ran a CNN forward pass per
/// proposal crop rather than pooling a shared feature map.
///
/// # Panics
/// Panics if `image` is not rank 3 or `out == 0`.
pub fn crop_resize(image: &Tensor, bbox: BBox, out: usize) -> Tensor {
    assert_eq!(image.rank(), 3, "image must be [C, H, W]");
    assert!(out > 0, "output size must be positive");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let b = bbox.clip_to(w as f64, h as f64);
    let (bw, bh) = (b.w.max(1.0), b.h.max(1.0));
    Tensor::from_fn(&[c, out, out], |flat| {
        let ch = flat / (out * out);
        let rem = flat % (out * out);
        let (oy, ox) = (rem / out, rem % out);
        let sy = (b.y + (oy as f64 + 0.5) * bh / out as f64).clamp(0.0, h as f64 - 1.0) as usize;
        let sx = (b.x + (ox as f64 + 0.5) * bw / out as f64).clamp(0.0, w as f64 - 1.0) as usize;
        image.at(&[ch, sy, sx])
    })
}

/// Pre-computed ground-truth candidate features for the training scenes
/// (stage-ii matchers train against these; recomputing the backbone pass
/// per step would dominate training time).
#[derive(Debug, Default)]
pub struct CandidateCache {
    per_scene: HashMap<usize, Vec<ProposalFeature>>,
}

impl CandidateCache {
    /// Builds the cache over every scene referenced by the training split.
    pub fn build(rpn: &ProposalNetwork, roi: RoiExtractor, ds: &Dataset) -> Self {
        let mut per_scene = HashMap::new();
        for s in ds.samples(Split::Train) {
            per_scene
                .entry(s.scene_idx)
                .or_insert_with(|| roi.features_for_objects(rpn, ds.scene_of(s)));
        }
        CandidateCache { per_scene }
    }

    /// The candidate features of a scene.
    ///
    /// # Panics
    /// Panics if the scene was not cached (not a training scene).
    pub fn candidates(&self, scene_idx: usize) -> &[ProposalFeature] {
        &self.per_scene[&scene_idx]
    }

    /// Number of cached scenes.
    pub fn len(&self) -> usize {
        self.per_scene.len()
    }

    /// True when nothing was cached.
    pub fn is_empty(&self) -> bool {
        self.per_scene.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_vector_has_expected_layout() {
        let roi = RoiExtractor::new(8, 2);
        assert_eq!(roi.feat_dim(28), 117);
        // feature map with a known hot cell
        let mut fm = Tensor::zeros(&[1, 1, 6, 9]);
        fm.set(&[0, 0, 2, 3], 7.0);
        let f = roi.extract(&fm, BBox::new(16.0, 8.0, 24.0, 24.0), 0.9, 72, 48);
        assert_eq!(f.vector.numel(), 1 * 4 + 5);
        // the hot cell (2,3) falls in the pooled region → some bin sees 7
        assert!(f.vector.as_slice()[..4].contains(&7.0));
        // geometry tail: cx=28/72, cy=20/48
        let tail = &f.vector.as_slice()[4..];
        assert!((tail[0] - 28.0 / 72.0).abs() < 1e-12);
        assert!((tail[1] - 20.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_and_edge_boxes_still_pool() {
        let roi = RoiExtractor::new(8, 2);
        let fm = Tensor::ones(&[1, 2, 6, 9]);
        for b in [
            BBox::new(0.0, 0.0, 1.0, 1.0),
            BBox::new(70.0, 46.0, 10.0, 10.0), // runs off the edge
            BBox::new(-5.0, -5.0, 4.0, 4.0),
        ] {
            let f = roi.extract(&fm, b, 0.5, 72, 48);
            assert!(f.vector.is_finite(), "non-finite pooling for {b:?}");
            assert!(f.vector.as_slice()[..8].iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn distinct_regions_give_distinct_features() {
        let roi = RoiExtractor::new(8, 2);
        let fm = Tensor::from_fn(&[1, 1, 6, 9], |i| i as f64);
        let a = roi.extract(&fm, BBox::new(0.0, 0.0, 16.0, 16.0), 1.0, 72, 48);
        let b = roi.extract(&fm, BBox::new(48.0, 24.0, 16.0, 16.0), 1.0, 72, 48);
        assert_ne!(a.vector, b.vector);
    }
}

#[cfg(test)]
mod crop_tests {
    use super::*;
    use crate::{ProposalConfig, ProposalNetwork};
    use rand::SeedableRng;
    use yollo_synthref::{Scene, SceneConfig};

    #[test]
    fn crop_resize_shapes_and_content() {
        let img = Tensor::from_fn(&[3, 8, 8], |i| i as f64);
        let c = crop_resize(&img, BBox::new(2.0, 2.0, 4.0, 4.0), 6);
        assert_eq!(c.dims(), &[3, 6, 6]);
        // centre of crop equals centre region of source box
        assert_eq!(c.at(&[0, 3, 3]), img.at(&[0, 4, 4]));
        // degenerate/outside boxes still produce finite crops
        let c = crop_resize(&img, BBox::new(-10.0, -10.0, 1.0, 1.0), 4);
        assert!(c.is_finite());
    }

    #[test]
    fn crop_features_have_expected_dim_and_vary_by_region() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let scene = Scene::generate(&SceneConfig::default(), &mut rng);
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 0);
        let props = vec![
            (BBox::new(0.0, 0.0, 16.0, 16.0), 0.9),
            (BBox::new(40.0, 20.0, 16.0, 16.0), 0.8),
        ];
        let feats = rpn.crop_features(&scene, &props);
        assert_eq!(feats.len(), 2);
        assert_eq!(feats[0].vector.numel(), rpn.crop_feat_dim());
        assert_ne!(feats[0].vector, feats[1].vector);
    }
}
