use crate::pipeline::strip_pad;
use crate::{CandidateCache, ProposalFeature, ProposalScorer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yollo_nn::{Adam, Binder, Embedding, Gru, Linear, Module, Optimizer, ParamList};
use yollo_synthref::{Dataset, Split};
use yollo_tensor::{Graph, Var};
use yollo_text::Vocab;

/// Listener hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ListenerConfig {
    /// Word-embedding dimension.
    pub word_dim: usize,
    /// GRU hidden size.
    pub gru_hidden: usize,
    /// Joint-embedding dimension.
    pub embed: usize,
    /// Region feature-vector length ([`RoiExtractor::feat_dim`]).
    pub feat_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Cosine-similarity temperature.
    pub temperature: f64,
    /// When set, adds [42]'s MMI-style contrastive margin against the
    /// hardest in-scene negative ("+MMI" rows of Table 2).
    pub mmi_margin: Option<f64>,
}

impl ListenerConfig {
    /// A laptop-scale default for the given feature/vocab sizes.
    pub fn small(feat_dim: usize, vocab_size: usize) -> Self {
        ListenerConfig {
            word_dim: 24,
            gru_hidden: 32,
            embed: 32,
            feat_dim,
            vocab_size,
            lr: 2e-3,
            temperature: 8.0,
            mmi_margin: None,
        }
    }
}

/// The joint-embedding "listener" of [42]: a GRU encodes the query, a
/// projection encodes each region, and the cosine similarity between the
/// two embeddings is the matching score. Trained with a softmax ranking
/// loss over the scene's ground-truth candidates.
#[derive(Debug)]
pub struct Listener {
    cfg: ListenerConfig,
    word_emb: Embedding,
    gru: Gru,
    q_proj: Linear,
    f_proj: Linear,
}

impl Listener {
    /// Builds an untrained listener.
    pub fn new(cfg: ListenerConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Listener {
            cfg,
            word_emb: Embedding::new("listener.word", cfg.vocab_size, cfg.word_dim, &mut rng),
            gru: Gru::new("listener.gru", cfg.word_dim, cfg.gru_hidden, &mut rng),
            q_proj: Linear::new("listener.qproj", cfg.gru_hidden, cfg.embed, true, &mut rng),
            f_proj: Linear::new("listener.fproj", cfg.feat_dim, cfg.embed, true, &mut rng),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ListenerConfig {
        &self.cfg
    }

    fn normalize<'g>(x: Var<'g>) -> Var<'g> {
        // x: [1, e] → x / ||x||
        let n = x
            .square()
            .sum_axis(1)
            .add_scalar(1e-8)
            .sqrt()
            .reshape(&[1, 1]);
        x.div(n)
    }

    fn embed_query<'g>(&self, bind: &Binder<'g>, ids: &[usize]) -> Var<'g> {
        let ids = if ids.is_empty() {
            vec![Vocab::unk_id()]
        } else {
            ids.to_vec()
        };
        let emb = self.word_emb.forward(bind, &ids); // [n, d]
        let (_, last) = self.gru.run_sequence(bind, emb);
        Listener::normalize(self.q_proj.forward(bind, last.0))
    }

    fn embed_feature<'g>(&self, bind: &Binder<'g>, f: &ProposalFeature) -> Var<'g> {
        let x = bind.graph().leaf(f.vector.reshape(&[1, self.cfg.feat_dim]));
        Listener::normalize(self.f_proj.forward(bind, x).relu().add_scalar(0.0))
    }

    /// Differentiable scores for a candidate set: `[1, K]`.
    fn score_candidates<'g>(
        &self,
        bind: &Binder<'g>,
        cands: &[ProposalFeature],
        query_ids: &[usize],
    ) -> Var<'g> {
        let q = self.embed_query(bind, query_ids); // [1, e]
        let embs: Vec<Var<'g>> = cands.iter().map(|f| self.embed_feature(bind, f)).collect();
        let fmat = Var::concat(&embs, 0); // [K, e]
        fmat.matmul(q.transpose())
            .mul_scalar(self.cfg.temperature)
            .transpose() // [1, K]
    }

    /// Trains on ground-truth candidates. Returns the mean loss of the last
    /// 10 iterations.
    ///
    /// # Panics
    /// Panics if the cache is empty.
    pub fn train(
        &mut self,
        ds: &Dataset,
        vocab: &Vocab,
        cache: &CandidateCache,
        iterations: usize,
        seed: u64,
    ) -> f64 {
        assert!(!cache.is_empty(), "empty candidate cache");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(self.parameters(), self.cfg.lr);
        let train = ds.samples(Split::Train);
        let mut tail = Vec::new();
        for it in 0..iterations {
            let s = &train[rng.gen_range(0..train.len())];
            let cands = cache.candidates(s.scene_idx);
            if cands.len() < 2 {
                continue;
            }
            let query: Vec<usize> = s.tokens.iter().map(|t| vocab.id_or_unk(t)).collect();
            let g = Graph::new();
            let bind = Binder::new(&g);
            let scores = self.score_candidates(&bind, cands, &query);
            let k = cands.len();
            let onehot =
                yollo_tensor::Tensor::from_fn(
                    &[1, k],
                    |i| {
                        if i == s.target_idx {
                            1.0
                        } else {
                            0.0
                        }
                    },
                );
            let mut loss = scores.softmax_xent_rows(&onehot);
            if let Some(margin) = self.cfg.mmi_margin {
                // smooth-max over negatives via log-sum-exp
                let pos = scores.slice(1, s.target_idx, 1).reshape(&[1, 1]);
                let neg_mask = yollo_tensor::Tensor::from_fn(&[1, k], |i| {
                    if i == s.target_idx {
                        -1e9
                    } else {
                        0.0
                    }
                });
                let masked = scores.add(g.leaf(neg_mask));
                let lse = masked
                    .exp()
                    .sum_axis(1)
                    .add_scalar(1e-12)
                    .log()
                    .reshape(&[1, 1]);
                loss = loss + (lse - pos).add_scalar(margin).relu().mean_all();
            }
            opt.zero_grad();
            loss.backward();
            bind.harvest();
            opt.step();
            if it + 10 >= iterations {
                tail.push(loss.value().scalar());
            }
        }
        tail.iter().sum::<f64>() / tail.len().max(1) as f64
    }
}

impl Module for Listener {
    fn parameters(&self) -> ParamList {
        let mut ps = self.word_emb.parameters();
        ps.extend(self.gru.parameters());
        ps.extend(self.q_proj.parameters());
        ps.extend(self.f_proj.parameters());
        ps
    }
}

impl ProposalScorer for Listener {
    fn score_proposals(&self, proposals: &[ProposalFeature], query: &[usize]) -> Vec<f64> {
        let ids = strip_pad(query);
        // the query is embedded once, then *each proposal separately* —
        // the per-proposal cost structure of stage ii (§1, Table 5)
        let g = Graph::new();
        let bind = Binder::new(&g);
        let q = self.embed_query(&bind, &ids).value();
        proposals
            .iter()
            .map(|p| {
                let g = Graph::new();
                let bind = Binder::new(&g);
                let f = self.embed_feature(&bind, p).value();
                let dot: f64 = q
                    .as_slice()
                    .iter()
                    .zip(f.as_slice())
                    .map(|(a, b)| a * b)
                    .sum();
                dot * self.cfg.temperature
            })
            .collect()
    }

    fn name(&self) -> String {
        if self.cfg.mmi_margin.is_some() {
            "listener+MMI".into()
        } else {
            "listener".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProposalConfig, ProposalNetwork, RoiExtractor};
    use yollo_synthref::{DatasetConfig, DatasetKind};

    fn setup() -> (Dataset, ProposalNetwork, CandidateCache, RoiExtractor) {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let rpn = ProposalNetwork::new(ProposalConfig::default(), 0);
        let roi = RoiExtractor::new(8, 2);
        let cache = CandidateCache::build(&rpn, roi, &ds);
        (ds, rpn, cache, roi)
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, rpn, cache, roi) = setup();
        let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
        let vocab = ds.build_vocab();
        let mut listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 1);
        // capture an early loss by training twice with the same seed
        let early = {
            let mut l2 = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 1);
            l2.train(&ds, &vocab, &cache, 10, 7)
        };
        let late = listener.train(&ds, &vocab, &cache, 120, 7);
        assert!(late < early, "listener loss {early} -> {late}");
    }

    #[test]
    fn scores_have_one_entry_per_proposal() {
        let (ds, rpn, cache, roi) = setup();
        let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
        let vocab = ds.build_vocab();
        let listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 1);
        let cands = cache.candidates(ds.samples(Split::Train)[0].scene_idx);
        let q = vocab.encode_padded(&ds.samples(Split::Train)[0].tokens, 8);
        let scores = listener.score_proposals(cands, &q);
        assert_eq!(scores.len(), cands.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn mmi_flag_changes_name() {
        let cfg = ListenerConfig {
            mmi_margin: Some(0.5),
            ..ListenerConfig::small(10, 10)
        };
        assert_eq!(Listener::new(cfg, 0).name(), "listener+MMI");
    }
}
