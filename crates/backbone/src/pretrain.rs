//! Shape-classification pretraining: the ImageNet stand-in.
//!
//! Renders single-object scenes and trains the backbone plus a small linear
//! head to classify the object's category, then discards the head. This
//! mirrors the paper's §4.2 "pre-train the backbone CNN on ImageNet" at
//! synthetic scale.

use crate::Backbone;
use rand::rngs::StdRng;
use rand::SeedableRng;
use yollo_nn::{Adam, Binder, Linear, Module, Optimizer};
use yollo_synthref::{Scene, SceneConfig, ShapeKind};
use yollo_tensor::{Graph, Tensor};

/// Outcome of a pretraining run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainReport {
    /// Mean loss over the first 10 steps.
    pub initial_loss: f64,
    /// Mean loss over the last 10 steps.
    pub final_loss: f64,
    /// Classification accuracy over a held-out batch.
    pub accuracy: f64,
}

fn single_object_scene(cfg: &SceneConfig, rng: &mut StdRng) -> (Scene, usize) {
    let mut scene = Scene::generate(cfg, rng);
    scene.objects.truncate(1);
    let label = ShapeKind::ALL
        .iter()
        .position(|&k| k == scene.objects[0].kind)
        .expect("kind in ALL");
    (scene, label)
}

/// Pretrains `backbone` on synthetic shape classification.
///
/// `steps` gradient steps with mini-batches of `batch` single-object
/// scenes. Returns loss/accuracy evidence that features became shape-
/// discriminative. Deterministic under `seed`.
pub fn pretrain_shapes(
    backbone: &Backbone,
    steps: usize,
    batch: usize,
    seed: u64,
) -> PretrainReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let scene_cfg = SceneConfig {
        min_objects: 1,
        max_objects: 1,
        ..SceneConfig::default()
    };
    let n_classes = ShapeKind::ALL.len();
    let head = Linear::new(
        "pretrain.head",
        backbone.out_channels(),
        n_classes,
        true,
        &mut rng,
    );
    let mut params = backbone.parameters();
    params.extend(head.parameters());
    let mut opt = Adam::new(params, 3e-3);
    let mut losses = Vec::with_capacity(steps);

    let run_batch = |rng: &mut StdRng| -> (Tensor, Tensor, Vec<usize>) {
        let mut imgs = Vec::with_capacity(batch);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let (scene, label) = single_object_scene(&scene_cfg, rng);
            imgs.push(scene.render());
            labels.push(label);
        }
        let refs: Vec<&Tensor> = imgs.iter().collect();
        let stacked =
            Tensor::concat(&refs, 0).reshape(&[batch, 5, scene_cfg.height, scene_cfg.width]);
        let onehot = Tensor::from_fn(&[batch, n_classes], |flat| {
            if flat % n_classes == labels[flat / n_classes] {
                1.0
            } else {
                0.0
            }
        });
        (stacked, onehot, labels)
    };

    for _ in 0..steps {
        let (x, t, _) = run_batch(&mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let feats = backbone.forward(&b, g.leaf(x)).global_avg_pool();
        let logits = head.forward(&b, feats);
        let loss = logits.softmax_xent_rows(&t);
        losses.push(loss.value().scalar());
        opt.zero_grad();
        loss.backward();
        b.harvest();
        opt.step();
    }

    // held-out accuracy
    let (x, _, labels) = run_batch(&mut rng);
    let g = Graph::new();
    let b = Binder::new(&g);
    let logits = head
        .forward(&b, backbone.forward(&b, g.leaf(x)).global_avg_pool())
        .value();
    let mut correct = 0;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.slice(0, i, 1);
        if row.argmax() == label {
            correct += 1;
        }
    }
    let head10 = 10.min(losses.len());
    PretrainReport {
        initial_loss: losses[..head10].iter().sum::<f64>() / head10 as f64,
        final_loss: losses[losses.len() - head10..].iter().sum::<f64>() / head10 as f64,
        accuracy: correct as f64 / labels.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BackboneKind;

    #[test]
    fn pretraining_reduces_loss_and_beats_chance() {
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Backbone::new(BackboneKind::TinyResNet, 5, &mut rng);
        let report = pretrain_shapes(&bb, 30, 8, 42);
        assert!(
            report.final_loss < report.initial_loss,
            "loss did not drop: {report:?}"
        );
        // 5 classes → chance is 0.2
        assert!(report.accuracy > 0.3, "accuracy {:?}", report.accuracy);
    }

    #[test]
    fn pretraining_is_deterministic() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(1);
            Backbone::new(BackboneKind::TinyResNet, 5, &mut rng)
        };
        let a = pretrain_shapes(&build(), 5, 4, 7);
        let b = pretrain_shapes(&build(), 5, 4, 7);
        assert_eq!(a, b);
    }
}
