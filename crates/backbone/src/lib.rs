//! CNN backbones producing stride-8 "C4" feature maps.
//!
//! The paper extracts its image feature sequence from the C4 stage of an
//! ImageNet-pretrained ResNet-50 (§4.2), evaluates a ResNet-101 variant for
//! timing (Table 5) and mentions a VGG variant in a footnote. Those
//! checkpoints are unavailable offline, so this crate provides structurally
//! faithful stand-ins at laptop scale:
//!
//! * [`BackboneKind::TinyResNet`] — residual, 1 block per stage (the
//!   ResNet-50 C4 analogue used everywhere by default);
//! * [`BackboneKind::DeepResNet`] — residual, 3 blocks per stage (the
//!   ResNet-101 analogue; ~2.5× the conv depth, used for the Table 5 row);
//! * [`BackboneKind::VggStyle`] — plain convolutions, no shortcuts (the
//!   footnote's VGG ablation).
//!
//! [`pretrain_shapes`] replaces ImageNet pretraining with a synthetic
//! shape-classification task on single-object scenes, exercising the same
//! code path (pretrain → fine-tune end-to-end).

mod model;
mod pretrain;

pub use model::{Backbone, BackboneKind};
pub use pretrain::{pretrain_shapes, PretrainReport};
