use rand::Rng;
use serde::{Deserialize, Serialize};
use yollo_nn::{Binder, Conv2d, Module, ParamList};
use yollo_tensor::{Conv2dSpec, Element, Var};

/// Which backbone architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackboneKind {
    /// Residual, one block per stage — the ResNet-50 C4 stand-in.
    TinyResNet,
    /// Residual, three blocks per stage — the ResNet-101 C4 stand-in.
    DeepResNet,
    /// Plain stacked convolutions (no shortcuts) — the VGG footnote ablation.
    VggStyle,
}

impl BackboneKind {
    /// Identity blocks appended to each strided stage.
    fn extra_blocks(self) -> usize {
        match self {
            BackboneKind::TinyResNet => 0,
            BackboneKind::DeepResNet => 2,
            BackboneKind::VggStyle => 0,
        }
    }

    /// Whether stages use residual shortcuts.
    fn residual(self) -> bool {
        !matches!(self, BackboneKind::VggStyle)
    }

    /// Name used in reports (mirrors the paper's Table 5 labels).
    pub fn name(self) -> &'static str {
        match self {
            BackboneKind::TinyResNet => "ResNet-50 C4 (tiny stand-in)",
            BackboneKind::DeepResNet => "ResNet-101 C4 (deep stand-in)",
            BackboneKind::VggStyle => "VGG-style (footnote ablation)",
        }
    }
}

/// One backbone stage: a strided "projection" block followed by optional
/// identity blocks. Residual variants add a 1×1 shortcut projection.
#[derive(Debug)]
struct Stage<E: Element = f64> {
    conv1: Conv2d<E>,
    conv2: Conv2d<E>,
    shortcut: Option<Conv2d<E>>,
    identities: Vec<(Conv2d<E>, Conv2d<E>)>,
}

impl Stage {
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        residual: bool,
        extra: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let s2 = Conv2dSpec { stride: 2, pad: 1 };
        let s1 = Conv2dSpec { stride: 1, pad: 1 };
        Stage {
            conv1: Conv2d::new(&format!("{name}.conv1"), in_ch, out_ch, 3, s2, true, rng),
            conv2: Conv2d::new(&format!("{name}.conv2"), out_ch, out_ch, 3, s1, true, rng),
            shortcut: residual.then(|| {
                Conv2d::new(
                    &format!("{name}.shortcut"),
                    in_ch,
                    out_ch,
                    1,
                    Conv2dSpec { stride: 2, pad: 0 },
                    false,
                    rng,
                )
            }),
            identities: (0..extra)
                .map(|i| {
                    (
                        Conv2d::new(&format!("{name}.id{i}.a"), out_ch, out_ch, 3, s1, true, rng),
                        Conv2d::new(&format!("{name}.id{i}.b"), out_ch, out_ch, 3, s1, true, rng),
                    )
                })
                .collect(),
        }
    }

    fn parameters(&self) -> ParamList {
        let mut ps = self.conv1.parameters();
        ps.extend(self.conv2.parameters());
        if let Some(sc) = &self.shortcut {
            ps.extend(sc.parameters());
        }
        for (a, b) in &self.identities {
            ps.extend(a.parameters());
            ps.extend(b.parameters());
        }
        ps
    }
}

impl<E: Element> Stage<E> {
    fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        let mut y = self.conv2.forward(bind, self.conv1.forward(bind, x).relu());
        if let Some(sc) = &self.shortcut {
            y = y + sc.forward(bind, x);
        }
        y = y.relu();
        for (a, b) in &self.identities {
            let z = b.forward(bind, a.forward(bind, y).relu());
            y = (z + y).relu();
        }
        y
    }

    fn cast<F: Element>(&self) -> Stage<F> {
        Stage {
            conv1: self.conv1.cast(),
            conv2: self.conv2.cast(),
            shortcut: self.shortcut.as_ref().map(Conv2d::cast),
            identities: self
                .identities
                .iter()
                .map(|(a, b)| (a.cast(), b.cast()))
                .collect(),
        }
    }
}

/// A stride-8 convolutional feature extractor over `[N, C_in, H, W]`
/// images, producing `[N, C_out, H/8, W/8]` "C4" features.
#[derive(Debug)]
pub struct Backbone<E: Element = f64> {
    kind: BackboneKind,
    stages: Vec<Stage<E>>,
    in_channels: usize,
    out_channels: usize,
}

impl Backbone {
    /// Channel progression of the three strided stages.
    const CHANNELS: [usize; 3] = [12, 20, 28];

    /// Builds a backbone for `in_channels`-channel inputs.
    pub fn new(kind: BackboneKind, in_channels: usize, rng: &mut impl Rng) -> Self {
        let mut stages = Vec::new();
        let mut prev = in_channels;
        for (i, &ch) in Self::CHANNELS.iter().enumerate() {
            stages.push(Stage::new(
                &format!("backbone.s{i}"),
                prev,
                ch,
                kind.residual(),
                kind.extra_blocks(),
                rng,
            ));
            prev = ch;
        }
        Backbone {
            kind,
            stages,
            in_channels,
            out_channels: prev,
        }
    }
}

impl<E: Element> Backbone<E> {
    /// The architecture variant.
    pub fn kind(&self) -> BackboneKind {
        self.kind
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output ("C4") channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Total spatial downsampling factor.
    pub fn stride(&self) -> usize {
        8
    }

    /// Extracts the feature map.
    ///
    /// # Panics
    /// Panics unless `x` is `[N, in_channels, H, W]` with H, W divisible
    /// by the stride.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "backbone input must be [N,C,H,W]");
        assert_eq!(dims[1], self.in_channels, "backbone channel mismatch");
        assert!(
            dims[2].is_multiple_of(self.stride()) && dims[3].is_multiple_of(self.stride()),
            "input H/W must be divisible by stride {}",
            self.stride()
        );
        let mut y = x;
        for s in &self.stages {
            y = s.forward(bind, y);
        }
        y
    }

    /// This backbone with every weight converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Backbone<F> {
        Backbone {
            kind: self.kind,
            stages: self.stages.iter().map(Stage::cast).collect(),
            in_channels: self.in_channels,
            out_channels: self.out_channels,
        }
    }
}

impl Module for Backbone {
    fn parameters(&self) -> ParamList {
        self.stages.iter().flat_map(Stage::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::{Graph, Tensor};

    #[test]
    fn output_shape_is_stride_8() {
        let mut rng = StdRng::seed_from_u64(0);
        let bb = Backbone::new(BackboneKind::TinyResNet, 5, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::randn(&[2, 5, 48, 72], &mut rng));
        let y = bb.forward(&b, x);
        assert_eq!(y.dims(), vec![2, 28, 6, 9]);
    }

    #[test]
    fn deep_variant_has_more_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let tiny = Backbone::new(BackboneKind::TinyResNet, 5, &mut rng);
        let deep = Backbone::new(BackboneKind::DeepResNet, 5, &mut rng);
        let vgg = Backbone::new(BackboneKind::VggStyle, 5, &mut rng);
        assert!(deep.num_params() > 2 * tiny.num_params());
        // vgg drops only the 1x1 shortcut projections
        assert!(vgg.num_params() < tiny.num_params());
    }

    #[test]
    fn gradients_reach_the_stem() {
        let mut rng = StdRng::seed_from_u64(2);
        let bb = Backbone::new(BackboneKind::TinyResNet, 5, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::randn(&[1, 5, 16, 16], &mut rng));
        bb.forward(&b, x).square().mean_all().backward();
        b.harvest();
        for p in bb.parameters() {
            assert!(p.grad_norm() > 0.0, "no grad for {}", p.name());
        }
    }

    #[test]
    #[should_panic(expected = "divisible by stride")]
    fn rejects_misaligned_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let bb = Backbone::new(BackboneKind::TinyResNet, 5, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::zeros(&[1, 5, 20, 20]));
        bb.forward(&b, x);
    }

    #[test]
    fn parameter_names_are_unique() {
        let mut rng = StdRng::seed_from_u64(4);
        let bb = Backbone::new(BackboneKind::DeepResNet, 5, &mut rng);
        let mut names: Vec<String> = bb
            .parameters()
            .iter()
            .map(|p| p.name().to_owned())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
