use yollo_tensor::Tensor;

/// Sinusoidal absolute-position encoding `[max_len, dim]` (Vaswani et al.
/// 2017, which §3.1 cites for the "sense of order" position embeddings).
///
/// The grounding models default to *learned* position embeddings (an
/// `Embedding` over positions); this fixed variant is used as their
/// initialisation and in tests as a reference.
///
/// # Panics
/// Panics if `dim` is zero or odd.
pub fn sinusoidal_encoding(max_len: usize, dim: usize) -> Tensor {
    assert!(
        dim > 0 && dim.is_multiple_of(2),
        "dim must be positive and even"
    );
    Tensor::from_fn(&[max_len, dim], |flat| {
        let pos = (flat / dim) as f64;
        let i = flat % dim;
        let freq = 1.0 / 10_000f64.powf((i / 2 * 2) as f64 / dim as f64);
        if i.is_multiple_of(2) {
            (pos * freq).sin()
        } else {
            (pos * freq).cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_row_is_sin0_cos0() {
        let e = sinusoidal_encoding(4, 6);
        for i in 0..6 {
            let expected = if i % 2 == 0 { 0.0 } else { 1.0 };
            assert!((e.at(&[0, i]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn values_are_bounded() {
        let e = sinusoidal_encoding(50, 16);
        assert!(e.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn rows_are_distinct() {
        let e = sinusoidal_encoding(10, 8);
        for a in 0..10 {
            for b in (a + 1)..10 {
                let d: f64 = (0..8).map(|j| (e.at(&[a, j]) - e.at(&[b, j])).abs()).sum();
                assert!(d > 1e-6, "rows {a} and {b} identical");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_rejected() {
        sinusoidal_encoding(4, 3);
    }
}
