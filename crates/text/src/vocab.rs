use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The padding token (§4.2: queries are padded to the dataset's maximum
/// length with a PAD token). Always id 0.
pub const PAD_TOKEN: &str = "<pad>";
/// The unknown token (§4.2: out-of-vocabulary words map to UNK). Always id 1.
pub const UNK_TOKEN: &str = "<unk>";

/// A fixed word↔id mapping with PAD/UNK specials.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq, Default)]
pub struct Vocab {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Vocab {
    /// Builds a vocabulary from tokenised sentences, keeping words that
    /// occur at least `min_count` times. Word order is deterministic
    /// (by count descending, then alphabetical).
    pub fn build<'a, S, I>(sentences: I, min_count: usize) -> Self
    where
        S: IntoIterator<Item = &'a str>,
        I: IntoIterator<Item = S>,
    {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for sent in sentences {
            for tok in sent {
                *counts.entry(tok.to_owned()).or_default() += 1;
            }
        }
        let mut kept: Vec<(String, usize)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut words = vec![PAD_TOKEN.to_owned(), UNK_TOKEN.to_owned()];
        words.extend(kept.into_iter().map(|(w, _)| w));
        Vocab::from_words(words)
    }

    fn from_words(words: Vec<String>) -> Self {
        let index = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        Vocab { words, index }
    }

    /// Rebuilds the (non-serialised) reverse index after deserialisation.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
    }

    /// Number of entries, including PAD and UNK.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when only specials exist.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= 2
    }

    /// Id of `word`, if in vocabulary.
    pub fn id(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Id of `word`, falling back to UNK.
    pub fn id_or_unk(&self, word: &str) -> usize {
        self.id(word).unwrap_or(Vocab::unk_id())
    }

    /// The word for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn word(&self, id: usize) -> &str {
        &self.words[id]
    }

    /// Id of PAD (always 0).
    pub fn pad_id() -> usize {
        0
    }

    /// Id of UNK (always 1).
    pub fn unk_id() -> usize {
        1
    }

    /// Encodes tokens into ids, padding/truncating to exactly `max_len`.
    pub fn encode_padded(&self, tokens: &[String], max_len: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = tokens
            .iter()
            .take(max_len)
            .map(|t| self.id_or_unk(t))
            .collect();
        ids.resize(max_len, Vocab::pad_id());
        ids
    }

    /// Decodes ids back into words, dropping padding.
    pub fn decode(&self, ids: &[usize]) -> Vec<&str> {
        ids.iter()
            .filter(|&&i| i != Vocab::pad_id())
            .map(|&i| self.word(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocab {
        let sents = [
            vec!["red", "ball", "left"],
            vec!["red", "square"],
            vec!["red", "ball"],
        ];
        Vocab::build(sents.iter().map(|s| s.iter().copied()), 1)
    }

    #[test]
    fn specials_have_fixed_ids() {
        let v = sample();
        assert_eq!(v.id(PAD_TOKEN), Some(0));
        assert_eq!(v.id(UNK_TOKEN), Some(1));
    }

    #[test]
    fn most_frequent_first() {
        let v = sample();
        assert_eq!(v.word(2), "red"); // 3 occurrences
        assert_eq!(v.word(3), "ball"); // 2 occurrences
    }

    #[test]
    fn min_count_filters() {
        let sents = [vec!["a", "a", "b"]];
        let v = Vocab::build(sents.iter().map(|s| s.iter().copied()), 2);
        assert!(v.id("a").is_some());
        assert!(v.id("b").is_none());
        assert_eq!(v.id_or_unk("b"), Vocab::unk_id());
    }

    #[test]
    fn encode_pads_and_truncates() {
        let v = sample();
        let toks: Vec<String> = vec!["red".into(), "ball".into()];
        let ids = v.encode_padded(&toks, 4);
        assert_eq!(ids.len(), 4);
        assert_eq!(&ids[2..], &[0, 0]);
        let long: Vec<String> = vec!["red".into(); 10];
        assert_eq!(v.encode_padded(&long, 3).len(), 3);
    }

    #[test]
    fn decode_drops_pad_and_roundtrips() {
        let v = sample();
        let toks: Vec<String> = vec!["red".into(), "zzz".into()];
        let ids = v.encode_padded(&toks, 5);
        let back = v.decode(&ids);
        assert_eq!(back, vec!["red", UNK_TOKEN]);
    }

    #[test]
    fn build_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let v = sample();
        let json = serde_json::to_string(&v).unwrap();
        let mut w: Vocab = serde_json::from_str(&json).unwrap();
        w.rebuild_index();
        assert_eq!(v, w);
        assert_eq!(w.id("red"), v.id("red"));
    }
}
