/// Lower-cases and splits a query into word tokens.
///
/// Splits on any non-alphanumeric character, so punctuation vanishes:
/// `"man, blue-shirt"` → `["man", "blue", "shirt"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_splitting() {
        assert_eq!(
            tokenize("Left-most toilet, near the  sink."),
            vec!["left", "most", "toilet", "near", "the", "sink"]
        );
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!,.").is_empty());
    }

    #[test]
    fn digits_survive() {
        assert_eq!(tokenize("2nd ball"), vec!["2nd", "ball"]);
    }

    proptest! {
        #[test]
        fn tokens_never_contain_separators(s in ".{0,60}") {
            for t in tokenize(&s) {
                prop_assert!(t.chars().all(char::is_alphanumeric));
                prop_assert!(!t.is_empty());
            }
        }

        #[test]
        fn idempotent_on_own_output(s in "[a-z ]{0,40}") {
            let once = tokenize(&s);
            let rejoined = once.join(" ");
            prop_assert_eq!(tokenize(&rejoined), once);
        }
    }
}
