//! Language substrate: tokenizer, vocabulary, skip-gram word2vec
//! pretraining and positional encodings.
//!
//! The paper pre-trains 512-d Word2Vec embeddings on the LM-1B corpus
//! (§4.2). That corpus is unavailable here, so [`Word2Vec`] implements
//! skip-gram with negative sampling from scratch and trains on a corpus
//! sampled from the synthetic query grammar — the same code path
//! (pre-trained distributed representations, fine-tuned downstream), at
//! laptop scale.
//!
//! ```
//! use yollo_text::{tokenize, Vocab};
//! let toks = tokenize("The left red Ball!");
//! assert_eq!(toks, vec!["the", "left", "red", "ball"]);
//! let vocab = Vocab::build([toks.iter().map(String::as_str)], 1);
//! assert!(vocab.id("red").is_some());
//! ```

mod position;
mod token;
mod vocab;
mod word2vec;

pub use position::sinusoidal_encoding;
pub use token::tokenize;
pub use vocab::{Vocab, PAD_TOKEN, UNK_TOKEN};
pub use word2vec::{Word2Vec, Word2VecConfig};
