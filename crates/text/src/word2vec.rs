//! Skip-gram word2vec with negative sampling (Mikolov et al. 2013),
//! implemented directly (hand-written SGD; no autodiff tape needed for this
//! shallow model).

use rand::Rng;
use yollo_tensor::Tensor;

/// Training hyper-parameters for [`Word2Vec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Word2VecConfig {
    /// Embedding dimension (paper: 512; scaled down here).
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 32,
            window: 2,
            negatives: 5,
            epochs: 5,
            lr: 0.05,
        }
    }
}

/// A trained skip-gram model; [`Word2Vec::input_embeddings`] yields the
/// matrix used to initialise the grounding models' word-embedding layers.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    input: Vec<f64>,  // [vocab, dim]
    output: Vec<f64>, // [vocab, dim]
    vocab: usize,
    dim: usize,
}

impl Word2Vec {
    /// Trains on a corpus of id-encoded sentences.
    ///
    /// Ids 0 (PAD) and 1 (UNK) participate like normal words if present;
    /// callers typically strip padding first.
    ///
    /// # Panics
    /// Panics if `vocab < 2` or the config has a zero dimension.
    pub fn train(
        corpus: &[Vec<usize>],
        vocab: usize,
        cfg: Word2VecConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(vocab >= 2, "vocabulary too small");
        assert!(cfg.dim > 0, "dim must be positive");
        let mut model = Word2Vec {
            input: (0..vocab * cfg.dim)
                .map(|_| (rng.gen::<f64>() - 0.5) / cfg.dim as f64)
                .collect(),
            output: vec![0.0; vocab * cfg.dim],
            vocab,
            dim: cfg.dim,
        };
        // unigram^(3/4) negative-sampling table
        let mut counts = vec![1.0f64; vocab];
        for sent in corpus {
            for &w in sent {
                counts[w] += 1.0;
            }
        }
        let weights: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(vocab);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        let draw = |rng: &mut dyn rand::RngCore| -> usize {
            let r: f64 = rng.gen();
            cumulative.partition_point(|&c| c < r).min(vocab - 1)
        };

        let d = cfg.dim;
        for _ in 0..cfg.epochs {
            for sent in corpus {
                for (pos, &center) in sent.iter().enumerate() {
                    let lo = pos.saturating_sub(cfg.window);
                    let hi = (pos + cfg.window + 1).min(sent.len());
                    for (ctx_pos, &context) in sent.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        // positive update + negatives
                        let mut grad_in = vec![0.0; d];
                        for k in 0..=cfg.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0)
                            } else {
                                (draw(rng), 0.0)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let (ci, to) = (center * d, target * d);
                            let mut dot = 0.0;
                            for j in 0..d {
                                dot += model.input[ci + j] * model.output[to + j];
                            }
                            let pred = 1.0 / (1.0 + (-dot).exp());
                            let g = cfg.lr * (pred - label);
                            for (j, gi) in grad_in.iter_mut().enumerate() {
                                *gi += g * model.output[to + j];
                                model.output[to + j] -= g * model.input[ci + j];
                            }
                        }
                        let ci = center * d;
                        for (j, &gi) in grad_in.iter().enumerate() {
                            model.input[ci + j] -= gi;
                        }
                    }
                }
            }
        }
        model
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The input-side embedding matrix `[vocab, dim]`.
    pub fn input_embeddings(&self) -> Tensor {
        Tensor::from_vec(self.input.clone(), &[self.vocab, self.dim])
    }

    /// The `k` most similar words to `id` (by input-embedding cosine),
    /// excluding `id` itself, best first.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn most_similar(&self, id: usize, k: usize) -> Vec<(usize, f64)> {
        assert!(id < self.vocab, "id out of range");
        let mut sims: Vec<(usize, f64)> = (0..self.vocab)
            .filter(|&j| j != id)
            .map(|j| (j, self.cosine(id, j)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("cosines are finite"));
        sims.truncate(k);
        sims
    }

    /// Cosine similarity between two word ids.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.vocab && b < self.vocab, "id out of range");
        let (oa, ob) = (a * self.dim, b * self.dim);
        let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
        for j in 0..self.dim {
            let (x, y) = (self.input[oa + j], self.input[ob + j]);
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Corpus with two interchangeable word pairs: (2,3) appear in identical
    /// contexts, as do (4,5). Skip-gram should place 2 closer to 3 than to 4.
    fn toy_corpus(rng: &mut StdRng) -> Vec<Vec<usize>> {
        use rand::Rng;
        let mut corpus = Vec::new();
        for _ in 0..300 {
            let a = if rng.gen() { 2 } else { 3 };
            let b = if rng.gen() { 4 } else { 5 };
            // template: [6, a, 7] and [8, b, 9]
            corpus.push(vec![6, a, 7]);
            corpus.push(vec![8, b, 9]);
        }
        corpus
    }

    #[test]
    fn distributional_similarity_emerges() {
        let mut rng = StdRng::seed_from_u64(0);
        let corpus = toy_corpus(&mut rng);
        let w2v = Word2Vec::train(&corpus, 10, Word2VecConfig::default(), &mut rng);
        let same = w2v.cosine(2, 3);
        let diff = w2v.cosine(2, 4);
        assert!(
            same > diff + 0.2,
            "expected sim(2,3)={same} >> sim(2,4)={diff}"
        );
    }

    #[test]
    fn embeddings_shape_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = vec![vec![2, 3, 4], vec![4, 3, 2]];
        let cfg = Word2VecConfig {
            dim: 8,
            epochs: 2,
            ..Word2VecConfig::default()
        };
        let w2v = Word2Vec::train(&corpus, 5, cfg, &mut rng);
        let e = w2v.input_embeddings();
        assert_eq!(e.dims(), &[5, 8]);
        assert!(e.is_finite());
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let corpus = vec![vec![2, 3, 4, 2, 3], vec![3, 2, 4]];
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            Word2Vec::train(&corpus, 5, Word2VecConfig::default(), &mut rng).input_embeddings()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn most_similar_ranks_the_distributional_twin_first() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = toy_corpus(&mut rng);
        let w2v = Word2Vec::train(&corpus, 10, Word2VecConfig::default(), &mut rng);
        let top = w2v.most_similar(2, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(
            top[0].0, 3,
            "expected word 3 as nearest neighbour of 2: {top:?}"
        );
        // sorted descending
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn cosine_is_reflexive() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = vec![vec![2, 3, 2, 3]];
        let w2v = Word2Vec::train(&corpus, 4, Word2VecConfig::default(), &mut rng);
        assert!((w2v.cosine(2, 2) - 1.0).abs() < 1e-9);
    }
}
