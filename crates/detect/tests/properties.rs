//! Property tests for the detection geometry invariants:
//!
//! * `nms` output is a subset of its input indices (unique, in range),
//!   sorted by descending score, and mutually non-overlapping above the
//!   IoU threshold;
//! * `iou` is symmetric, bounded to `[0, 1]`, and equals 1.0 iff the two
//!   boxes are identical.
//!
//! Each property is expressed once and driven twice: by proptest, and by a
//! plain seeded-RNG loop so the invariants are exercised even where the
//! proptest harness is unavailable.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yollo_detect::{nms, BBox};

// ---------------------------------------------------------------- properties

fn check_nms_invariants(boxes: &[BBox], scores: &[f64], threshold: f64, max_keep: usize) {
    let keep = nms(boxes, scores, threshold, max_keep);

    assert!(keep.len() <= max_keep, "kept more than max_keep");
    // Subset of the input: every index valid, no index twice.
    let mut seen = vec![false; boxes.len()];
    for &i in &keep {
        assert!(i < boxes.len(), "index {i} out of range");
        assert!(!seen[i], "index {i} kept twice");
        seen[i] = true;
    }
    // Sorted by descending score.
    for w in keep.windows(2) {
        assert!(
            scores[w[0]] >= scores[w[1]],
            "kept order not score-sorted: {} before {}",
            scores[w[0]],
            scores[w[1]]
        );
    }
    // Mutually non-overlapping above the threshold.
    for (a, &i) in keep.iter().enumerate() {
        for &j in &keep[a + 1..] {
            let iou = boxes[i].iou(&boxes[j]);
            assert!(
                iou <= threshold,
                "kept boxes {i} and {j} overlap at IoU {iou} > {threshold}"
            );
        }
    }
    // Greedy completeness: with room to spare, a dropped box must overlap
    // some kept box (nothing is dropped for no reason).
    if keep.len() < max_keep {
        for i in 0..boxes.len() {
            if !seen[i] {
                assert!(
                    keep.iter().any(|&k| boxes[i].iou(&boxes[k]) > threshold),
                    "box {i} dropped without a suppressing neighbour"
                );
            }
        }
    }
}

fn check_iou_invariants(a: &BBox, b: &BBox) {
    let ab = a.iou(b);
    let ba = b.iou(a);
    assert!(
        (ab - ba).abs() < 1e-12,
        "iou not symmetric: {ab} vs {ba} for {a:?} / {b:?}"
    );
    assert!((0.0..=1.0).contains(&ab), "iou {ab} outside [0, 1]");

    let identical = a.x == b.x && a.y == b.y && a.w == b.w && a.h == b.h;
    if identical && a.w > 0.0 && a.h > 0.0 {
        assert!(
            (ab - 1.0).abs() < 1e-12,
            "identical non-degenerate boxes must have IoU 1.0, got {ab}"
        );
    }
    if !identical {
        assert!(
            ab < 1.0,
            "distinct boxes {a:?} / {b:?} must have IoU < 1.0, got {ab}"
        );
    }
    // Self-IoU of a non-degenerate box is exactly 1.
    if a.w > 0.0 && a.h > 0.0 {
        assert_eq!(a.iou(a), 1.0);
    }
}

// ----------------------------------------------------------------- proptest

fn arb_box() -> impl Strategy<Value = BBox> {
    (0.0f64..100.0, 0.0f64..100.0, 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    #[test]
    fn nms_keeps_a_sorted_nonoverlapping_subset(
        entries in proptest::collection::vec((arb_box(), 0.0f64..1.0), 0..24),
        threshold in 0.05f64..0.95,
        max_keep in 1usize..16,
    ) {
        let boxes: Vec<BBox> = entries.iter().map(|(b, _)| *b).collect();
        let scores: Vec<f64> = entries.iter().map(|(_, s)| *s).collect();
        check_nms_invariants(&boxes, &scores, threshold, max_keep);
    }

    #[test]
    fn iou_is_symmetric_bounded_and_discriminates(a in arb_box(), b in arb_box()) {
        check_iou_invariants(&a, &b);
    }

    #[test]
    fn iou_is_one_iff_identical(a in arb_box(), dx in -5.0f64..5.0) {
        check_iou_invariants(&a, &a);
        // Any perturbation of at least 1e-6 must break exact identity.
        if dx.abs() >= 1e-6 {
            let moved = BBox::new(a.x + dx, a.y, a.w, a.h);
            prop_assert!(a.iou(&moved) < 1.0);
        }
    }
}

// --------------------------------------------------------- seeded fallbacks

fn random_box(rng: &mut StdRng) -> BBox {
    BBox::new(
        rng.gen_range(0.0..100.0),
        rng.gen_range(0.0..100.0),
        rng.gen_range(0.1..40.0),
        rng.gen_range(0.1..40.0),
    )
}

#[test]
fn nms_invariants_hold_over_seeded_inputs() {
    let mut rng = StdRng::seed_from_u64(0xDE7EC7);
    for _ in 0..250 {
        let n = rng.gen_range(0..24);
        let boxes: Vec<BBox> = (0..n).map(|_| random_box(&mut rng)).collect();
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let threshold = rng.gen_range(0.05..0.95);
        let max_keep = rng.gen_range(1..16);
        check_nms_invariants(&boxes, &scores, threshold, max_keep);
    }
}

#[test]
fn iou_invariants_hold_over_seeded_pairs() {
    let mut rng = StdRng::seed_from_u64(0x10_0B0C);
    for _ in 0..500 {
        let a = random_box(&mut rng);
        let b = random_box(&mut rng);
        check_iou_invariants(&a, &b);
        check_iou_invariants(&a, &a);
        // Minimal detectable perturbation: IoU must drop below 1.
        let eps = 1e-6;
        let moved = BBox::new(a.x + eps, a.y, a.w, a.h);
        assert!(a.iou(&moved) < 1.0, "1e-6 shift left IoU at 1.0 for {a:?}");
    }
}

#[test]
fn nms_degenerate_inputs() {
    // Empty input: empty output.
    assert!(nms(&[], &[], 0.5, 5).is_empty());
    // All-identical boxes: exactly one survivor at any threshold < 1.
    let boxes = vec![BBox::new(5.0, 5.0, 10.0, 10.0); 6];
    let scores = vec![0.3, 0.9, 0.1, 0.5, 0.7, 0.2];
    let keep = nms(&boxes, &scores, 0.5, 10);
    assert_eq!(keep, vec![1], "highest-scored duplicate wins");
    // max_keep = 0 keeps nothing.
    assert!(nms(&boxes, &scores, 0.5, 0).is_empty());
}
