use crate::BBox;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The training label of an anchor (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchorLabel {
    /// IoU with the target ≥ ρ_high (or best-matching anchor): `p* = 1`.
    Positive,
    /// IoU with the target < ρ_low: `p* = 0`.
    Negative,
    /// In the grey zone `[ρ_low, ρ_high)`: excluded from the loss.
    Ignore,
}

/// Anchor-labelling and mini-batch sampling configuration.
///
/// Paper values (§3.3): `N = 256`, `ρ_high = 0.5`, `ρ_low = 0.25`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchConfig {
    /// IoU at or above which an anchor is positive.
    pub rho_high: f64,
    /// IoU below which an anchor is negative.
    pub rho_low: f64,
    /// Anchors sampled per image for the loss.
    pub sample_n: usize,
    /// Always mark the highest-IoU anchor positive, even below ρ_high
    /// (standard RPN practice; prevents images with zero positives).
    pub force_best_positive: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            rho_high: 0.5,
            rho_low: 0.25,
            sample_n: 256,
            force_best_positive: true,
        }
    }
}

/// Labels every anchor against a single target box.
///
/// # Panics
/// Panics if `rho_low > rho_high` or `anchors` is empty.
pub fn label_anchors(anchors: &[BBox], target: &BBox, cfg: &MatchConfig) -> Vec<AnchorLabel> {
    assert!(cfg.rho_low <= cfg.rho_high, "rho_low must be <= rho_high");
    assert!(!anchors.is_empty(), "no anchors to label");
    let ious: Vec<f64> = anchors.iter().map(|a| a.iou(target)).collect();
    let mut labels: Vec<AnchorLabel> = ious
        .iter()
        .map(|&iou| {
            if iou >= cfg.rho_high {
                AnchorLabel::Positive
            } else if iou < cfg.rho_low {
                AnchorLabel::Negative
            } else {
                AnchorLabel::Ignore
            }
        })
        .collect();
    if cfg.force_best_positive {
        let mut best = 0;
        for (i, &v) in ious.iter().enumerate() {
            if v > ious[best] {
                best = i;
            }
        }
        if ious[best] > 0.0 {
            labels[best] = AnchorLabel::Positive;
        }
    }
    labels
}

/// Samples up to `cfg.sample_n` anchors for one loss mini-batch, keeping all
/// positives (up to half the budget, as in RPN) and filling with random
/// negatives. Returns `(positive_indices, negative_indices)`.
pub fn sample_minibatch(
    labels: &[AnchorLabel],
    cfg: &MatchConfig,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>) {
    let mut pos: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == AnchorLabel::Positive)
        .map(|(i, _)| i)
        .collect();
    let mut neg: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, l)| **l == AnchorLabel::Negative)
        .map(|(i, _)| i)
        .collect();
    pos.shuffle(rng);
    neg.shuffle(rng);
    let max_pos = (cfg.sample_n / 2).max(1);
    pos.truncate(max_pos);
    let budget = cfg.sample_n.saturating_sub(pos.len());
    neg.truncate(budget);
    (pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnchorGrid, AnchorSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> AnchorGrid {
        AnchorGrid::generate(6, 9, &AnchorSpec::default())
    }

    #[test]
    fn labels_partition_by_iou() {
        let g = grid();
        let target = BBox::from_center(36.0, 24.0, 24.0, 24.0);
        let cfg = MatchConfig::default();
        let labels = label_anchors(g.boxes(), &target, &cfg);
        for (b, l) in g.boxes().iter().zip(&labels) {
            let iou = b.iou(&target);
            match l {
                AnchorLabel::Positive => assert!(
                    iou >= cfg.rho_high || iou > 0.0, // forced best allowed
                ),
                AnchorLabel::Negative => assert!(iou < cfg.rho_low),
                AnchorLabel::Ignore => {
                    assert!(iou >= cfg.rho_low && iou < cfg.rho_high)
                }
            }
        }
        assert!(labels.contains(&AnchorLabel::Positive));
        assert!(labels.contains(&AnchorLabel::Negative));
    }

    #[test]
    fn tiny_target_still_gets_a_positive() {
        // smaller than any anchor scale: only force_best saves it
        let g = grid();
        let target = BBox::from_center(20.0, 20.0, 3.0, 3.0);
        let labels = label_anchors(g.boxes(), &target, &MatchConfig::default());
        assert!(labels.contains(&AnchorLabel::Positive));
        let off = MatchConfig {
            force_best_positive: false,
            ..MatchConfig::default()
        };
        let labels = label_anchors(g.boxes(), &target, &off);
        assert!(!labels.contains(&AnchorLabel::Positive));
    }

    #[test]
    fn minibatch_respects_budget_and_balance() {
        let g = grid();
        let target = BBox::from_center(36.0, 24.0, 24.0, 24.0);
        let cfg = MatchConfig {
            sample_n: 32,
            ..MatchConfig::default()
        };
        let labels = label_anchors(g.boxes(), &target, &cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let (pos, neg) = sample_minibatch(&labels, &cfg, &mut rng);
        assert!(pos.len() + neg.len() <= 32);
        assert!(pos.len() <= 16);
        assert!(!pos.is_empty());
        for i in &pos {
            assert_eq!(labels[*i], AnchorLabel::Positive);
        }
        for i in &neg {
            assert_eq!(labels[*i], AnchorLabel::Negative);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let g = grid();
        let target = BBox::from_center(30.0, 20.0, 20.0, 16.0);
        let cfg = MatchConfig::default();
        let labels = label_anchors(g.boxes(), &target, &cfg);
        let a = sample_minibatch(&labels, &cfg, &mut StdRng::seed_from_u64(9));
        let b = sample_minibatch(&labels, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
