//! Bounding-box geometry, anchor grids, IoU matching and NMS.
//!
//! This crate is the detection substrate shared by the one-stage YOLLO head
//! (`yollo-core`) and the two-stage proposal generator (`yollo-twostage`):
//! box arithmetic and IoU, RPN-style anchor grids, the positive/negative
//! anchor labelling rule with the paper's thresholds
//! (ρ_high = 0.5, ρ_low = 0.25, §3.3), offset encode/decode, and greedy
//! non-maximum suppression.
//!
//! ```
//! use yollo_detect::BBox;
//! let a = BBox::new(0.0, 0.0, 10.0, 10.0);
//! let b = BBox::new(5.0, 5.0, 10.0, 10.0);
//! assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
//! ```

mod anchors;
mod bbox;
mod matcher;
mod nms;

pub use anchors::{AnchorGrid, AnchorSpec};
pub use bbox::{BBox, OffsetEncoding};
pub use matcher::{label_anchors, sample_minibatch, AnchorLabel, MatchConfig};
pub use nms::nms;
