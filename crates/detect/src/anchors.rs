use crate::BBox;
use serde::{Deserialize, Serialize};

/// Anchor hyper-parameters: one anchor per (scale × ratio) per feature-map
/// cell, as in RPN [28] (§3.3: "K anchors with different scales and aspect
/// ratios for each sliding window").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorSpec {
    /// Anchor side lengths in *input-image* pixels.
    pub scales: Vec<f64>,
    /// Width/height aspect ratios.
    pub ratios: Vec<f64>,
    /// Feature-map stride in input pixels (8 for the C4 backbones here).
    pub stride: usize,
}

impl Default for AnchorSpec {
    fn default() -> Self {
        AnchorSpec {
            scales: vec![12.0, 24.0, 40.0],
            ratios: vec![0.5, 1.0, 2.0],
            stride: 8,
        }
    }
}

impl AnchorSpec {
    /// Anchors per feature-map cell (`K`).
    pub fn per_cell(&self) -> usize {
        self.scales.len() * self.ratios.len()
    }
}

/// The dense grid of anchors for one feature-map size.
///
/// Anchor order is row-major over cells, then scale-major × ratio within a
/// cell — the same order the detection head emits its logits in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnchorGrid {
    boxes: Vec<BBox>,
    feat_h: usize,
    feat_w: usize,
    per_cell: usize,
}

impl AnchorGrid {
    /// Generates anchors for a `feat_h`×`feat_w` feature map.
    ///
    /// # Panics
    /// Panics if the spec has no scales or ratios.
    pub fn generate(feat_h: usize, feat_w: usize, spec: &AnchorSpec) -> Self {
        assert!(
            !spec.scales.is_empty() && !spec.ratios.is_empty(),
            "anchor spec must define scales and ratios"
        );
        let mut boxes = Vec::with_capacity(feat_h * feat_w * spec.per_cell());
        for i in 0..feat_h {
            for j in 0..feat_w {
                let cx = (j as f64 + 0.5) * spec.stride as f64;
                let cy = (i as f64 + 0.5) * spec.stride as f64;
                for &s in &spec.scales {
                    for &r in &spec.ratios {
                        // preserve area s^2 while skewing aspect
                        let w = s * r.sqrt();
                        let h = s / r.sqrt();
                        boxes.push(BBox::from_center(cx, cy, w, h));
                    }
                }
            }
        }
        AnchorGrid {
            boxes,
            feat_h,
            feat_w,
            per_cell: spec.per_cell(),
        }
    }

    /// All anchors, in head-output order.
    pub fn boxes(&self) -> &[BBox] {
        &self.boxes
    }

    /// Total anchor count (`feat_h * feat_w * K`).
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Anchors per cell (`K`).
    pub fn per_cell(&self) -> usize {
        self.per_cell
    }

    /// Feature-map height.
    pub fn feat_h(&self) -> usize {
        self.feat_h
    }

    /// Feature-map width.
    pub fn feat_w(&self) -> usize {
        self.feat_w
    }

    /// The `(cell_row, cell_col, k)` coordinates of anchor `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn cell_of(&self, idx: usize) -> (usize, usize, usize) {
        assert!(idx < self.len(), "anchor index out of range");
        let cell = idx / self.per_cell;
        (cell / self.feat_w, cell % self.feat_w, idx % self.per_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_count_and_order() {
        let spec = AnchorSpec::default();
        let g = AnchorGrid::generate(2, 3, &spec);
        assert_eq!(g.len(), 2 * 3 * 9);
        assert_eq!(g.per_cell(), 9);
        // first anchor centred on cell (0,0) => (4, 4) with stride 8
        assert_eq!(g.boxes()[0].center(), (4.0, 4.0));
        // anchor of cell (1, 2)
        let idx = (1 * 3 + 2) * 9;
        assert_eq!(g.boxes()[idx].center(), (20.0, 12.0));
        assert_eq!(g.cell_of(idx), (1, 2, 0));
    }

    #[test]
    fn ratios_preserve_area() {
        let spec = AnchorSpec {
            scales: vec![16.0],
            ratios: vec![0.5, 1.0, 2.0],
            stride: 8,
        };
        let g = AnchorGrid::generate(1, 1, &spec);
        for b in g.boxes() {
            assert!((b.area() - 256.0).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn every_image_point_is_covered_by_some_anchor() {
        // with default spec on a 6x9 map (48x72 image), any target-sized
        // object centre lies inside at least one anchor
        let spec = AnchorSpec::default();
        let g = AnchorGrid::generate(6, 9, &spec);
        for py in (2..46).step_by(4) {
            for px in (2..70).step_by(4) {
                assert!(
                    g.boxes()
                        .iter()
                        .any(|b| b.contains_point(px as f64, py as f64)),
                    "uncovered point ({px},{py})"
                );
            }
        }
    }
}
