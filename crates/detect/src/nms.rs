use crate::BBox;

/// Greedy non-maximum suppression.
///
/// Returns the indices of kept boxes, highest score first. A box is dropped
/// when its IoU with an already-kept box exceeds `iou_threshold`. Used by
/// the two-stage proposal generator (the one-stage YOLLO picks top-1
/// directly, §3.3, and never needs this).
///
/// # Panics
/// Panics if `boxes.len() != scores.len()`.
pub fn nms(boxes: &[BBox], scores: &[f64], iou_threshold: f64, max_keep: usize) -> Vec<usize> {
    assert_eq!(boxes.len(), scores.len(), "boxes/scores length mismatch");
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    // sort by score descending; NaNs sink to the end
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut keep = Vec::new();
    for &i in &order {
        if keep.len() >= max_keep {
            break;
        }
        if keep
            .iter()
            .all(|&k: &usize| boxes[i].iou(&boxes[k]) <= iou_threshold)
        {
            keep.push(i);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn suppresses_overlapping_lower_scores() {
        let boxes = vec![
            BBox::new(0.0, 0.0, 10.0, 10.0),
            BBox::new(1.0, 1.0, 10.0, 10.0), // heavy overlap with 0
            BBox::new(50.0, 50.0, 10.0, 10.0),
        ];
        let scores = vec![0.9, 0.8, 0.7];
        let keep = nms(&boxes, &scores, 0.5, 10);
        assert_eq!(keep, vec![0, 2]);
    }

    #[test]
    fn respects_max_keep() {
        let boxes: Vec<BBox> = (0..10)
            .map(|i| BBox::new(i as f64 * 100.0, 0.0, 10.0, 10.0))
            .collect();
        let scores: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let keep = nms(&boxes, &scores, 0.5, 3);
        assert_eq!(keep, vec![9, 8, 7]);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(nms(&[], &[], 0.5, 5).is_empty());
    }

    proptest! {
        #[test]
        fn kept_boxes_are_mutually_non_overlapping(
            n in 1usize..20, seed in 0u64..500, thr in 0.1..0.9f64,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let boxes: Vec<BBox> = (0..n)
                .map(|_| BBox::new(
                    rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0),
                    rng.gen_range(1.0..20.0), rng.gen_range(1.0..20.0)))
                .collect();
            let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let keep = nms(&boxes, &scores, thr, n);
            for (a, &i) in keep.iter().enumerate() {
                for &j in &keep[a + 1..] {
                    prop_assert!(boxes[i].iou(&boxes[j]) <= thr + 1e-12);
                }
            }
            // scores of kept sequence are non-increasing
            for w in keep.windows(2) {
                prop_assert!(scores[w[0]] >= scores[w[1]]);
            }
        }

        #[test]
        fn top_scorer_is_always_kept(n in 1usize..20, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let boxes: Vec<BBox> = (0..n)
                .map(|_| BBox::new(
                    rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0),
                    rng.gen_range(1.0..20.0), rng.gen_range(1.0..20.0)))
                .collect();
            let scores: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let best = (0..n).max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap()).unwrap();
            let keep = nms(&boxes, &scores, 0.5, n);
            prop_assert_eq!(keep[0], best);
        }
    }
}
