use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `{x, y, w, h}` (top-left corner plus size),
/// in pixel units, matching the paper's `B = {x, y, w, h}` notation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

/// How box-regression targets are parameterised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OffsetEncoding {
    /// Standard R-CNN encoding: `tx=(x−xa)/wa, ty=(y−ya)/ha,
    /// tw=ln(w/wa), th=ln(h/ha)` (what RPN [28] uses).
    #[default]
    RcnnLog,
    /// The paper's literal Eq. (8) form: the plain difference `B − B_a`,
    /// normalised by the anchor size for scale invariance.
    PlainDiff,
}

impl BBox {
    /// Creates a box from its top-left corner and size.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        BBox { x, y, w, h }
    }

    /// Creates a box from centre coordinates and size.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        BBox {
            x: cx - w / 2.0,
            y: cy - h / 2.0,
            w,
            h,
        }
    }

    /// Creates a box from two corners `(x1,y1)-(x2,y2)`.
    pub fn from_corners(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        BBox {
            x: x1.min(x2),
            y: y1.min(y2),
            w: (x2 - x1).abs(),
            h: (y2 - y1).abs(),
        }
    }

    /// Right edge.
    pub fn x2(&self) -> f64 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn y2(&self) -> f64 {
        self.y + self.h
    }

    /// Centre point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area (`0` for degenerate boxes).
    pub fn area(&self) -> f64 {
        (self.w.max(0.0)) * (self.h.max(0.0))
    }

    /// Area of the intersection with `other`.
    pub fn intersection(&self, other: &BBox) -> f64 {
        let ix = (self.x2().min(other.x2()) - self.x.max(other.x)).max(0.0);
        let iy = (self.y2().min(other.y2()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection over union, in `[0, 1]`. Degenerate pairs yield 0;
    /// identical non-degenerate boxes yield exactly 1.
    pub fn iou(&self, other: &BBox) -> f64 {
        // The intersection width is computed as `(x + w) − x`, which can
        // round differently than `w` itself, so the ratio of a box with
        // (a copy of) itself would land a few ulps off 1. Answer the
        // identical case exactly and clamp the rest into range.
        if self == other {
            return if self.area() > 0.0 { 1.0 } else { 0.0 };
        }
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            (inter / union).clamp(0.0, 1.0)
        }
    }

    /// True when `(px, py)` lies inside (inclusive of the top-left edge).
    pub fn contains_point(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.x2() && py >= self.y && py < self.y2()
    }

    /// Clips the box to an image of size `width`×`height`.
    pub fn clip_to(&self, width: f64, height: f64) -> BBox {
        let x1 = self.x.clamp(0.0, width);
        let y1 = self.y.clamp(0.0, height);
        let x2 = self.x2().clamp(0.0, width);
        let y2 = self.y2().clamp(0.0, height);
        BBox::from_corners(x1, y1, x2, y2)
    }

    /// Uniformly scales all coordinates (e.g. image → feature-map space,
    /// §3.2's "scale down B to match the size of the feature map").
    pub fn scale(&self, s: f64) -> BBox {
        BBox {
            x: self.x * s,
            y: self.y * s,
            w: self.w * s,
            h: self.h * s,
        }
    }

    /// Encodes `self` (a ground-truth box) as a regression target relative
    /// to `anchor`.
    ///
    /// # Panics
    /// Panics if the anchor or (for [`OffsetEncoding::RcnnLog`]) the target
    /// has non-positive size.
    pub fn encode(&self, anchor: &BBox, enc: OffsetEncoding) -> [f64; 4] {
        assert!(anchor.w > 0.0 && anchor.h > 0.0, "degenerate anchor");
        let (cx, cy) = self.center();
        let (ax, ay) = anchor.center();
        match enc {
            OffsetEncoding::RcnnLog => {
                assert!(self.w > 0.0 && self.h > 0.0, "degenerate target box");
                [
                    (cx - ax) / anchor.w,
                    (cy - ay) / anchor.h,
                    (self.w / anchor.w).ln(),
                    (self.h / anchor.h).ln(),
                ]
            }
            OffsetEncoding::PlainDiff => [
                (cx - ax) / anchor.w,
                (cy - ay) / anchor.h,
                (self.w - anchor.w) / anchor.w,
                (self.h - anchor.h) / anchor.h,
            ],
        }
    }

    /// Applies a predicted offset to `anchor`, producing the decoded box.
    /// Exact inverse of [`BBox::encode`].
    pub fn decode(anchor: &BBox, t: [f64; 4], enc: OffsetEncoding) -> BBox {
        let (ax, ay) = anchor.center();
        match enc {
            OffsetEncoding::RcnnLog => {
                let cx = ax + t[0] * anchor.w;
                let cy = ay + t[1] * anchor.h;
                // clamp exp to avoid inf from an untrained regressor
                let w = anchor.w * t[2].clamp(-8.0, 8.0).exp();
                let h = anchor.h * t[3].clamp(-8.0, 8.0).exp();
                BBox::from_center(cx, cy, w, h)
            }
            OffsetEncoding::PlainDiff => {
                let cx = ax + t[0] * anchor.w;
                let cy = ay + t[1] * anchor.h;
                let w = anchor.w * (1.0 + t[2]).max(1e-6);
                let h = anchor.h * (1.0 + t[3]).max(1e-6);
                BBox::from_center(cx, cy, w, h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(1.0, 2.0, 3.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_known_value() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 1.0, 2.0, 2.0);
        // inter 1, union 7
        assert!((a.iou(&b) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_boxes_do_not_divide_by_zero() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
        assert_eq!(a.area(), 0.0);
    }

    #[test]
    fn clip_limits_to_image() {
        let b = BBox::new(-5.0, -5.0, 20.0, 20.0).clip_to(10.0, 8.0);
        assert_eq!(b, BBox::new(0.0, 0.0, 10.0, 8.0));
    }

    #[test]
    fn contains_point_edges() {
        let b = BBox::new(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains_point(0.0, 0.0));
        assert!(!b.contains_point(2.0, 2.0));
    }

    #[test]
    fn center_roundtrip() {
        let b = BBox::from_center(5.0, 6.0, 4.0, 2.0);
        assert_eq!(b.center(), (5.0, 6.0));
        assert_eq!(b.x, 3.0);
        assert_eq!(b.y, 5.0);
    }

    fn arb_box() -> impl Strategy<Value = BBox> {
        (0.0..50.0f64, 0.0..50.0f64, 0.5..20.0f64, 0.5..20.0f64)
            .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
    }

    proptest! {
        #[test]
        fn iou_is_symmetric(a in arb_box(), b in arb_box()) {
            prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
        }

        #[test]
        fn iou_is_bounded(a in arb_box(), b in arb_box()) {
            let v = a.iou(&b);
            prop_assert!((0.0..=1.0).contains(&v));
        }

        #[test]
        fn intersection_bounded_by_min_area(a in arb_box(), b in arb_box()) {
            prop_assert!(a.intersection(&b) <= a.area().min(b.area()) + 1e-9);
        }

        #[test]
        fn encode_decode_roundtrip_rcnn(gt in arb_box(), anchor in arb_box()) {
            let t = gt.encode(&anchor, OffsetEncoding::RcnnLog);
            let back = BBox::decode(&anchor, t, OffsetEncoding::RcnnLog);
            prop_assert!(gt.iou(&back) > 0.999, "{gt:?} vs {back:?}");
        }

        #[test]
        fn encode_decode_roundtrip_plain(gt in arb_box(), anchor in arb_box()) {
            let t = gt.encode(&anchor, OffsetEncoding::PlainDiff);
            let back = BBox::decode(&anchor, t, OffsetEncoding::PlainDiff);
            prop_assert!(gt.iou(&back) > 0.999, "{gt:?} vs {back:?}");
        }

        #[test]
        fn perfect_anchor_encodes_to_zero(gt in arb_box()) {
            for enc in [OffsetEncoding::RcnnLog, OffsetEncoding::PlainDiff] {
                let t = gt.encode(&gt, enc);
                for v in t {
                    prop_assert!(v.abs() < 1e-9);
                }
            }
        }

        #[test]
        fn scale_commutes_with_iou(a in arb_box(), b in arb_box(), s in 0.1..4.0f64) {
            prop_assert!((a.scale(s).iou(&b.scale(s)) - a.iou(&b)).abs() < 1e-9);
        }
    }
}
