//! Criterion version of Table 5: one-stage vs two-stage inference latency.
//!
//! `cargo bench -p yollo-bench --bench table5_speed` times YOLLO inference
//! (tiny and deep backbones) against the two-stage pipeline's stages. See
//! the `exp_table5_speed` binary for the formatted paper-style table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yollo_backbone::BackboneKind;
use yollo_core::{Yollo, YolloConfig};
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind, Split};
use yollo_twostage::{
    Listener, ListenerConfig, ProposalConfig, ProposalNetwork, ProposalScorer, RoiExtractor,
    Speaker, SpeakerConfig,
};

fn setup() -> Dataset {
    Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0))
}

fn bench_one_stage(c: &mut Criterion) {
    let ds = setup();
    let vocab = ds.build_vocab();
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let query = vocab.encode_padded(&sample.tokens, ds.max_query_len().max(4));
    let mut g = c.benchmark_group("one_stage");
    g.sample_size(20);
    for (label, backbone) in [
        ("yollo_resnet50_standin", BackboneKind::TinyResNet),
        ("yollo_resnet101_standin", BackboneKind::DeepResNet),
    ] {
        let cfg = YolloConfig {
            backbone,
            vocab_size: vocab.len(),
            max_query_len: ds.max_query_len().max(4),
            ..YolloConfig::default()
        };
        let mut model = Yollo::new(cfg, 1);
        model.set_vocab(vocab.clone());
        let img = scene.render().reshape(&[1, 5, scene.height, scene.width]);
        g.bench_function(label, |b| {
            b.iter(|| black_box(model.predict_batch(img.clone(), std::slice::from_ref(&query))))
        });
    }
    g.finish();
}

fn bench_two_stage(c: &mut Criterion) {
    let ds = setup();
    let vocab = ds.build_vocab();
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let query = vocab.encode_padded(&sample.tokens, ds.max_query_len().max(4));
    let rpn = ProposalNetwork::new(
        ProposalConfig {
            proposals_per_image: 60,
            ..ProposalConfig::default()
        },
        0,
    );
    let roi = RoiExtractor::new(8, 2);
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 1);
    let speaker = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 2);
    let (proposals, feat_map) = rpn.propose(scene);
    let feats: Vec<_> = proposals
        .iter()
        .map(|(b, s)| roi.extract(&feat_map, *b, *s, scene.width, scene.height))
        .collect();

    let mut g = c.benchmark_group("two_stage");
    g.sample_size(10);
    g.bench_function("stage1_propose", |b| {
        b.iter(|| black_box(rpn.propose(scene)))
    });
    g.bench_function("stage2_listener", |b| {
        b.iter(|| black_box(listener.score_proposals(&feats, &query)))
    });
    g.bench_function("stage2_speaker", |b| {
        b.iter(|| black_box(speaker.score_proposals(&feats, &query)))
    });
    // the paper-faithful [42] pipeline: a CNN pass per proposal crop
    let crop_listener = Listener::new(ListenerConfig::small(rpn.crop_feat_dim(), vocab.len()), 3);
    g.bench_function("stage2_per_region_cnn_listener", |b| {
        b.iter(|| {
            let crop_feats = rpn.crop_features(scene, &proposals);
            black_box(crop_listener.score_proposals(&crop_feats, &query))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_one_stage, bench_two_stage);
criterion_main!(benches);
