//! Criterion micro-benchmarks of the computational substrate: the tensor
//! ops that dominate YOLLO's forward pass, plus the detection geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yollo_detect::{label_anchors, nms, AnchorGrid, AnchorSpec, BBox, MatchConfig};
use yollo_tensor::{conv2d_forward, im2col, matmul_naive, Conv2dSpec, ConvScratch, Graph, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut g = c.benchmark_group("matmul");
    // small sizes stay on the serial path; 64x256x64 and up exercise the
    // blocked (and, on multi-core hosts, parallel) kernel
    for &(m, k, n) in &[
        (54usize, 48usize, 48usize),
        (64, 64, 64),
        (128, 128, 128),
        (64, 256, 64),
        (256, 1024, 256),
    ] {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        if m * k * n > 1 << 22 {
            g.sample_size(10);
        }
        g.bench_function(format!("{m}x{k}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    // naive reference at the headline size, so the blocked speedup is
    // visible side by side in criterion output
    {
        let (m, k, n) = (256usize, 1024usize, 256usize);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        g.sample_size(10);
        g.bench_function(format!("{m}x{k}x{n}_naive_ref"), |bench| {
            bench.iter(|| {
                let mut out = vec![0.0; m * n];
                matmul_naive(a.as_slice(), b.as_slice(), &mut out, m, k, n);
                black_box(out)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("matmul_batched");
    g.sample_size(10);
    let (bt, m, k, n) = (8usize, 64usize, 256usize, 64usize);
    let a = Tensor::randn(&[bt, m, k], &mut rng);
    let b = Tensor::randn(&[bt, k, n], &mut rng);
    g.bench_function(format!("{bt}x{m}x{k}x{n}"), |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn(&[1, 5, 48, 72], &mut rng);
    let spec = Conv2dSpec { stride: 2, pad: 1 };
    c.bench_function("im2col_stem", |b| {
        b.iter(|| black_box(im2col(&x, 3, 3, spec)))
    });
    let w = Tensor::randn(&[12, 5, 3, 3], &mut rng);
    c.bench_function("conv2d_stem_fwd", |b| {
        b.iter(|| {
            let g = Graph::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(w.clone());
            black_box(xv.conv2d(wv, spec).value())
        })
    });
    // heavier 3x3 conv on a mid-network shape, graph-free with scratch reuse
    let xh = Tensor::randn(&[2, 32, 32, 32], &mut rng);
    let wh = Tensor::randn(&[64, 32, 3, 3], &mut rng);
    let spec1 = Conv2dSpec { stride: 1, pad: 1 };
    let mut scratch = ConvScratch::new();
    c.bench_function("conv3x3_32c_64c_32x32", |b| {
        b.iter(|| black_box(conv2d_forward(&xh, &wh, spec1, &mut scratch)))
    });
}

fn bench_softmax_and_autodiff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn(&[70, 70], &mut rng);
    c.bench_function("softmax_70x70", |b| {
        b.iter(|| black_box(x.softmax_lastdim()))
    });
    c.bench_function("autodiff_relation_map", |b| {
        b.iter(|| {
            let g = Graph::new();
            let v = g.leaf(Tensor::randn(&[54, 48], &mut rng));
            let r = v.matmul(v.transpose()).softmax_lastdim().sum_all();
            r.backward();
            black_box(v.grad())
        })
    });
}

fn bench_detection_geometry(c: &mut Criterion) {
    let grid = AnchorGrid::generate(6, 9, &AnchorSpec::default());
    let target = BBox::from_center(36.0, 24.0, 20.0, 16.0);
    c.bench_function("label_486_anchors", |b| {
        b.iter(|| {
            black_box(label_anchors(
                grid.boxes(),
                &target,
                &MatchConfig::default(),
            ))
        })
    });
    let mut rng = StdRng::seed_from_u64(3);
    let boxes: Vec<BBox> = (0..486)
        .map(|_| {
            BBox::new(
                rand::Rng::gen_range(&mut rng, 0.0..60.0),
                rand::Rng::gen_range(&mut rng, 0.0..40.0),
                rand::Rng::gen_range(&mut rng, 4.0..24.0),
                rand::Rng::gen_range(&mut rng, 4.0..24.0),
            )
        })
        .collect();
    let scores: Vec<f64> = (0..486).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("nms_486_to_60", |b| {
        b.iter(|| black_box(nms(&boxes, &scores, 0.7, 60)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv, bench_softmax_and_autodiff, bench_detection_geometry
);
criterion_main!(benches);
