//! Criterion benchmarks of the full YOLLO forward pass and one training
//! step — ablation-style performance evidence for the design choices in
//! DESIGN.md (Rel2Att stack depth).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use yollo_core::{Yollo, YolloConfig};
use yollo_nn::Binder;
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind, Split};
use yollo_tensor::Graph;

fn bench_full_forward(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let mut g = c.benchmark_group("yollo_forward");
    g.sample_size(15);
    for depth in [1usize, 3] {
        let cfg = YolloConfig {
            n_rel2att: depth,
            ..YolloConfig::for_dataset(&ds)
        };
        let mut model = Yollo::new(cfg, 1);
        model.set_vocab(ds.build_vocab());
        let sample = &ds.samples(Split::Val)[0];
        let refs = vec![sample];
        let (images, queries, _) = model.encode_batch(&ds, &refs);
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| black_box(model.predict_batch(images.clone(), &queries)))
        });
    }
    g.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
    let model = Yollo::for_dataset(&ds, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let samples: Vec<_> = ds.samples(Split::Train).iter().take(4).collect();
    let (images, queries, targets) = model.encode_batch(&ds, &samples);
    let mut g = c.benchmark_group("yollo_train_step");
    g.sample_size(10);
    g.bench_function("fwd_bwd_batch4", |b| {
        b.iter(|| {
            let graph = Graph::new();
            let bind = Binder::new(&graph);
            let out = model.forward(&bind, graph.leaf(images.clone()), &queries);
            let (loss, _) = model.loss(&bind, &out, &targets, &mut rng);
            loss.backward();
            bind.harvest();
            black_box(loss.value())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_full_forward, bench_train_step);
criterion_main!(benches);
