//! Shared scaffolding for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md's experiment index).
//!
//! Each `src/bin/exp_*.rs` binary prints a markdown table mirroring one
//! paper table/figure; EXPERIMENTS.md records paper-vs-measured values.
//! The `YOLLO_SCALE` environment variable selects the preset:
//! `tiny` (seconds, CI smoke), `standard` (default, minutes), `full`
//! (tens of minutes, tightest numbers).

use std::time::Instant;

use yollo_core::{TrainConfig, Trainer, Yollo};
use yollo_synthref::{Dataset, DatasetConfig, DatasetKind};
use yollo_text::Vocab;
use yollo_twostage::{
    Listener, ListenerConfig, ProposalConfig, ProposalNetwork, ProposalScorer, RoiExtractor,
    Speaker, SpeakerConfig, TwoStageGrounder,
};

/// Experiment scale preset, selected via the `YOLLO_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per experiment; loose numbers (CI smoke).
    Tiny,
    /// The default: a few minutes per table.
    Standard,
    /// Larger datasets and longer training.
    Full,
}

impl Scale {
    /// Reads `YOLLO_SCALE` (defaults to [`Scale::Standard`]).
    pub fn from_env() -> Scale {
        match std::env::var("YOLLO_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Dataset preset for this scale.
    pub fn dataset_config(self, kind: DatasetKind, seed: u64) -> DatasetConfig {
        match self {
            Scale::Tiny => DatasetConfig {
                train_images: 60,
                val_images: 24,
                test_images: 16,
                targets_per_image: 2,
                queries_per_target: 2,
                kind,
                seed,
            },
            Scale::Standard => DatasetConfig {
                train_images: 400,
                val_images: 80,
                test_images: 50,
                targets_per_image: 2,
                queries_per_target: 2,
                kind,
                seed,
            },
            Scale::Full => DatasetConfig {
                train_images: 600,
                val_images: 100,
                test_images: 60,
                targets_per_image: 2,
                queries_per_target: 2,
                kind,
                seed,
            },
        }
    }

    /// YOLLO training preset for this scale.
    pub fn train_config(self, seed: u64) -> TrainConfig {
        match self {
            Scale::Tiny => TrainConfig {
                iterations: 300,
                batch_size: 8,
                eval_every: 100,
                eval_samples: 24,
                seed,
                ..TrainConfig::default()
            },
            Scale::Standard => TrainConfig {
                iterations: 2000,
                batch_size: 16,
                eval_every: 200,
                eval_samples: 40,
                seed,
                ..TrainConfig::default()
            },
            Scale::Full => TrainConfig {
                iterations: 3200,
                batch_size: 16,
                eval_every: 400,
                eval_samples: 60,
                seed,
                ..TrainConfig::default()
            },
        }
    }
}

/// Generates the dataset for `kind` at the current scale (seed fixed so all
/// experiment binaries agree).
pub fn dataset(scale: Scale, kind: DatasetKind) -> Dataset {
    Dataset::generate(scale.dataset_config(kind, 2022))
}

/// Trains a fresh YOLLO on `ds`, printing progress, and returns it with its
/// training log.
pub fn train_yollo(scale: Scale, ds: &Dataset, seed: u64) -> (Yollo, yollo_core::TrainLog) {
    let mut model = Yollo::for_dataset(ds, seed);
    let t0 = Instant::now();
    let log = Trainer::new(scale.train_config(seed)).train(&mut model, ds);
    eprintln!(
        "  trained YOLLO ({} iters) in {:.1}s; loss {:.3} -> {:.3}",
        log.points.len(),
        t0.elapsed().as_secs_f64(),
        log.early_loss(10).unwrap_or(f64::NAN),
        log.late_loss(10).unwrap_or(f64::NAN),
    );
    (model, log)
}

/// Cache location for a trained model, so experiment binaries share one
/// training run per (dataset, ablation, scale) instead of retraining.
pub fn model_cache_path(
    scale: Scale,
    kind: DatasetKind,
    ablation: yollo_core::AttentionAblation,
) -> std::path::PathBuf {
    let slug = kind.name().to_lowercase().replace('+', "plus");
    output_dir().join(format!("yollo_{slug}_{ablation:?}_{scale:?}.json"))
}

fn log_cache_path(scale: Scale, kind: DatasetKind) -> std::path::PathBuf {
    let slug = kind.name().to_lowercase().replace('+', "plus");
    output_dir().join(format!("yollo_{slug}_{scale:?}_log.json"))
}

/// Loads the cached trained model for `(scale, kind)` or trains and caches
/// it (plus its training log). Returns the model and the training curve.
pub fn load_or_train_yollo(
    scale: Scale,
    ds: &Dataset,
    kind: DatasetKind,
    seed: u64,
) -> (Yollo, yollo_core::TrainLog) {
    let path = model_cache_path(scale, kind, yollo_core::AttentionAblation::Full);
    let log_path = log_cache_path(scale, kind);
    if path.exists() && log_path.exists() {
        if let (Ok(model), Ok(json)) = (Yollo::load(&path), std::fs::read_to_string(&log_path)) {
            if let Ok(log) = serde_json::from_str(&json) {
                eprintln!("  loaded cached model {}", path.display());
                return (model, log);
            }
        }
    }
    let (model, log) = train_yollo(scale, ds, seed);
    model.save(&path).expect("can cache model");
    std::fs::write(
        &log_path,
        serde_json::to_string(&log).expect("serialisable"),
    )
    .expect("can cache log");
    (model, log)
}

/// Trains a YOLLO variant with a Rel2Att quadrant ablation (Table 4 rows).
pub fn train_yollo_with_ablation(
    scale: Scale,
    ds: &Dataset,
    seed: u64,
    ablation: yollo_core::AttentionAblation,
) -> Yollo {
    // the Full "ablation" is the shared baseline model — reuse its cache
    let kind = ds.config().kind;
    let path = model_cache_path(scale, kind, ablation);
    if path.exists() {
        if let Ok(model) = Yollo::load(&path) {
            eprintln!("  loaded cached model {}", path.display());
            return model;
        }
    }
    if ablation == yollo_core::AttentionAblation::Full {
        return load_or_train_yollo(scale, ds, kind, seed).0;
    }
    let cfg = yollo_core::YolloConfig {
        ablation,
        ..yollo_core::YolloConfig::for_dataset(ds)
    };
    let mut model = Yollo::new(cfg, seed);
    model.set_vocab(ds.build_vocab());
    let t0 = Instant::now();
    // ablated variants train on a reduced budget (they are contrasts, not
    // headline numbers; six of them retrain in Table 4 alone)
    let base = scale.train_config(seed);
    let tc = TrainConfig {
        iterations: base.iterations / 2,
        eval_every: 0,
        ..base
    };
    let log = Trainer::new(tc).train(&mut model, ds);
    eprintln!(
        "  trained {} in {:.1}s; loss {:.3} -> {:.3}",
        ablation.name(),
        t0.elapsed().as_secs_f64(),
        log.early_loss(10).unwrap_or(f64::NAN),
        log.late_loss(10).unwrap_or(f64::NAN),
    );
    model.save(&path).expect("can cache model");
    model
}

/// The trained two-stage baseline family for one dataset (Table 2/5 rows).
#[derive(Debug)]
pub struct Baselines {
    /// Stage-i proposal network (shared by all stage-ii scorers).
    pub rpn: ProposalNetwork,
    /// RoI feature extractor.
    pub roi: RoiExtractor,
    /// Joint-embedding matcher.
    pub listener: Listener,
    /// Conditional-LM matcher.
    pub speaker: Speaker,
    /// Listener trained with the MMI contrastive margin.
    pub listener_mmi: Listener,
    /// Speaker trained with the MMI contrastive margin.
    pub speaker_mmi: Speaker,
    /// Vocabulary shared with the dataset.
    pub vocab: Vocab,
    /// Query padding length.
    pub max_query_len: usize,
}

impl Baselines {
    /// A grounder over the shared stage i and the given stage-ii scorer.
    pub fn grounder<'a>(&'a self, scorer: &'a dyn ProposalScorer) -> TwoStageGrounder<'a> {
        TwoStageGrounder::new(&self.rpn, self.roi, scorer, &self.vocab, self.max_query_len)
    }
}

/// Baseline training budgets per scale: (rpn iters, matcher iters).
fn baseline_iters(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Tiny => (60, 250),
        Scale::Standard => (150, 900),
        Scale::Full => (300, 1800),
    }
}

/// Trains the full two-stage baseline family on `ds`.
pub fn train_baselines(scale: Scale, ds: &Dataset, seed: u64) -> Baselines {
    use yollo_twostage::CandidateCache;
    let (rpn_iters, match_iters) = baseline_iters(scale);
    let t0 = Instant::now();
    let mut rpn = ProposalNetwork::new(
        ProposalConfig {
            proposals_per_image: 60,
            ..ProposalConfig::default()
        },
        seed,
    );
    let rpn_loss = rpn.train(ds, rpn_iters, 4, seed ^ 0xA11);
    let roi = RoiExtractor::new(8, 2);
    let cache = CandidateCache::build(&rpn, roi, ds);
    let vocab = ds.build_vocab();
    let feat_dim = roi.feat_dim(rpn.backbone().out_channels());
    let l_cfg = ListenerConfig::small(feat_dim, vocab.len());
    let s_cfg = SpeakerConfig::small(feat_dim, vocab.len());

    let mut listener = Listener::new(l_cfg, seed ^ 1);
    listener.train(ds, &vocab, &cache, match_iters, seed ^ 2);
    let mut listener_mmi = Listener::new(
        ListenerConfig {
            mmi_margin: Some(0.5),
            ..l_cfg
        },
        seed ^ 3,
    );
    listener_mmi.train(ds, &vocab, &cache, match_iters, seed ^ 4);
    let mut speaker = Speaker::new(s_cfg, seed ^ 5);
    speaker.train(ds, &vocab, &cache, match_iters, seed ^ 6);
    let mut speaker_mmi = Speaker::new(
        SpeakerConfig {
            mmi_margin: Some(0.5),
            ..s_cfg
        },
        seed ^ 7,
    );
    speaker_mmi.train(ds, &vocab, &cache, match_iters, seed ^ 8);
    eprintln!(
        "  trained two-stage baselines in {:.1}s (rpn loss {rpn_loss:.3})",
        t0.elapsed().as_secs_f64()
    );
    Baselines {
        rpn,
        roi,
        listener,
        speaker,
        listener_mmi,
        speaker_mmi,
        vocab,
        max_query_len: ds.max_query_len(),
    }
}

/// Directory where experiment outputs (CSV, PPM, JSON) are written.
pub fn output_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("can create experiment output dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_standard() {
        // (env var not set in tests)
        if std::env::var("YOLLO_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Standard);
        }
    }

    #[test]
    fn presets_are_ordered_by_size() {
        let k = DatasetKind::SynthRef;
        assert!(
            Scale::Tiny.dataset_config(k, 0).train_images
                < Scale::Standard.dataset_config(k, 0).train_images
        );
        assert!(
            Scale::Standard.train_config(0).iterations < Scale::Full.train_config(0).iterations
        );
    }
}
