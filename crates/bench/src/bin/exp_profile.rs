//! **Profiling harness** — traces one training step and times repeated
//! inference passes, writing `BENCH_obs.json` at the repository root plus a
//! Chrome `trace_event` file loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! The trace of the training step must contain spans for the encoder, every
//! Rel2Att layer, the detection head, the matmul kernels and the optimizer
//! step; the binary exits non-zero if any of them is missing (a regression
//! in the instrumentation). `YOLLO_TRACE_PATH` overrides the trace output
//! location; `YOLLO_SCALE` selects the usual tiny/standard/full preset.
//!
//! `YOLLO_PROFILE_MODE=trace` switches the binary into **trace-validation
//! mode**: instead of profiling, it pushes a traced request load through
//! the threaded serving stack and exits non-zero unless every request
//! trace forms a causally complete span chain (one `serve.request` root
//! per submission, all parents resolving in-trace). CI uses this as the
//! tracing smoke gate.

use std::collections::HashSet;

use yollo_bench::{dataset, output_dir, Scale};
use yollo_core::{TrainConfig, Trainer, Yollo};
use yollo_eval::time_inference;
use yollo_obs::Snapshot;
use yollo_serve::{validate_request_chains, ServeConfig, Server};
use yollo_synthref::{DatasetKind, Split};

/// Spans that one traced training step must contain (plus one `rel2att.{i}`
/// per layer, appended in `main`).
const REQUIRED_SPANS: &[&str] = &[
    "train.step",
    "model.forward",
    "model.encoder",
    "encoder.image",
    "encoder.query",
    "model.rel2att",
    "head.forward",
    "tensor.matmul",
    "tensor.graph.backward",
    "optim.adam.step",
];

/// `YOLLO_PROFILE_MODE=trace`: a traced request load through the real
/// threaded [`Server`], validated for causal completeness. Small hot set,
/// so both batch-served chains (root + queued + exec) and cache-hit
/// chains (bare root) appear.
fn trace_validation(scale: Scale) {
    let ds = dataset(scale, DatasetKind::SynthRef);
    let model = Yollo::for_dataset(&ds, 7);
    let model_cfg = model.config().clone();
    let vocab = model.vocab().clone();
    let n = match scale {
        Scale::Tiny => 24usize,
        Scale::Standard => 64,
        Scale::Full => 128,
    };
    eprintln!("trace validation: {n} traced requests through the threaded server…");
    yollo_obs::registry().reset();
    let _ = yollo_obs::drain_spans();
    let _ = yollo_obs::take_dropped_spans();
    let cfg = ServeConfig {
        queue_capacity: n,
        cache_capacity: 8,
        workers: 2,
        ..ServeConfig::for_model(&model_cfg)
    };
    let scenes = ds.scenes().to_vec();
    let samples = ds.samples(Split::Train).to_vec();
    let factory_vocab = vocab.clone();
    let server = Server::start(cfg, vocab, move || {
        let mut m = Yollo::new(model_cfg.clone(), 7);
        m.set_vocab(factory_vocab.clone());
        m
    });
    let hot = samples.len().min(8);
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let s = &samples[i % hot];
            server
                .submit(&scenes[s.scene_idx], &s.sentence)
                .expect("queue has room")
        })
        .collect();
    let ok = pending
        .into_iter()
        .map(|r| r.wait())
        .filter(Result::is_ok)
        .count();
    drop(server);

    let spans = yollo_obs::drain_spans();
    let summary =
        validate_request_chains(&spans).expect("every request trace is causally complete");
    assert_eq!(
        summary.direct_requests, n,
        "one serve.request root per submission"
    );
    let trace_path = yollo_obs::trace_path_from_env()
        .unwrap_or_else(|| output_dir().join("trace_validation.json"));
    yollo_obs::write_chrome_trace(&trace_path, &spans).expect("can write trace");
    println!("# Trace validation ({scale:?} scale)\n");
    println!(
        "{n} requests ({ok} ok): {} request chains, {} spans — all causally complete",
        summary.direct_requests, summary.spans
    );
    println!("trace: {}", trace_path.display());
}

fn main() {
    yollo_obs::set_enabled(true);
    let scale = Scale::from_env();
    if std::env::var("YOLLO_PROFILE_MODE").as_deref() == Ok("trace") {
        trace_validation(scale);
        return;
    }
    let ds = dataset(scale, DatasetKind::SynthRef);
    let mut model = Yollo::for_dataset(&ds, 7);

    // dataset generation and model init record too; start the profile clean
    yollo_obs::registry().reset();
    let _ = yollo_obs::drain_spans();

    // --- one traced training step ---
    eprintln!("tracing one training step…");
    Trainer::new(TrainConfig {
        iterations: 1,
        batch_size: 4,
        eval_every: 0,
        checkpoint_every: 0,
        word2vec_init: false,
        pretrain_backbone_steps: 0,
        seed: 7,
        ..TrainConfig::default()
    })
    .train(&mut model, &ds);
    let train_spans = yollo_obs::drain_spans();
    let train_snapshot = yollo_obs::registry().snapshot();

    let mut required: Vec<String> = REQUIRED_SPANS.iter().map(|s| s.to_string()).collect();
    for i in 0..model.config().n_rel2att {
        required.push(format!("rel2att.{i}"));
    }
    let have: HashSet<&str> = train_spans.iter().map(|e| e.name.as_ref()).collect();
    let missing: Vec<&String> = required
        .iter()
        .filter(|r| !have.contains(r.as_str()))
        .collect();
    if !missing.is_empty() {
        eprintln!("missing required spans in the training-step trace: {missing:?}");
        std::process::exit(1);
    }

    // --- timed inference passes ---
    let (warmup, reps) = match scale {
        Scale::Tiny => (1, 5),
        Scale::Standard => (3, 20),
        Scale::Full => (5, 50),
    };
    eprintln!("timing {reps} inference passes…");
    yollo_obs::registry().reset();
    let sample = &ds.samples(Split::Val)[0];
    let (images, queries, _) = model.encode_batch(&ds, &[sample]);
    let stats = time_inference(
        || {
            model.predict_batch(images.clone(), &queries);
        },
        warmup,
        reps,
    );
    let infer_snapshot = yollo_obs::registry().snapshot();
    let infer_spans = yollo_obs::drain_spans();

    // --- Chrome trace: the training step followed by the inference passes ---
    let trace_path =
        yollo_obs::trace_path_from_env().unwrap_or_else(|| output_dir().join("trace_profile.json"));
    let train_span_count = train_spans.len();
    let mut events = train_spans;
    events.extend(infer_spans);
    yollo_obs::write_chrome_trace(&trace_path, &events).expect("can write trace");

    // --- BENCH_obs.json ---
    let stage = |name: &str| -> serde_json::Value {
        match infer_snapshot.histogram(name) {
            Some(h) => serde_json::json!({
                "count": h.count,
                "mean_ns": h.mean,
                "p50_ns": h.p50,
                "p95_ns": h.p95,
                "p99_ns": h.p99,
            }),
            None => serde_json::Value::Null,
        }
    };
    let counters = |snap: &Snapshot| -> serde_json::Value {
        serde_json::Value::Object(
            snap.counters
                .iter()
                .map(|(n, v)| (n.clone(), serde_json::json!(*v)))
                .collect(),
        )
    };
    let stages = serde_json::json!({
        "encoder": stage("model.encoder_ns"),
        "rel2att": stage("model.rel2att_ns"),
        "head": stage("model.head_ns"),
        "batch": stage("infer.batch_ns"),
        "matmul": stage("tensor.matmul_ns"),
    });
    let inference = serde_json::json!({
        "reps": stats.reps,
        "mean_s": stats.mean_s,
        "p50_s": stats.p50_s,
        "p95_s": stats.p95_s,
        "p99_s": stats.p99_s,
        "min_s": stats.min_s,
        "stages": stages,
        "counters": counters(&infer_snapshot),
    });
    let train_step = serde_json::json!({
        "spans": train_span_count,
        "counters": counters(&train_snapshot),
    });
    let results = serde_json::json!({
        "scale": format!("{scale:?}"),
        "trace_path": trace_path.display().to_string(),
        "trace_events": events.len(),
        "inference": inference,
        "train_step": train_step,
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write BENCH_obs.json");

    println!("# Profile ({scale:?} scale)\n");
    println!(
        "inference over {} reps: mean {:.4}s, p50 {:.4}s, p95 {:.4}s, p99 {:.4}s",
        stats.reps, stats.mean_s, stats.p50_s, stats.p95_s, stats.p99_s
    );
    for (label, name) in [
        ("encoder", "model.encoder_ns"),
        ("rel2att", "model.rel2att_ns"),
        ("head", "model.head_ns"),
    ] {
        if let Some(h) = infer_snapshot.histogram(name) {
            println!(
                "  {label:>8}: p50 {:.3}ms  p95 {:.3}ms  ({} calls)",
                h.p50 as f64 / 1e6,
                h.p95 as f64 / 1e6,
                h.count
            );
        }
    }
    println!("trace ({} events): {}", events.len(), trace_path.display());
    println!("raw results: {}", path.display());
}
