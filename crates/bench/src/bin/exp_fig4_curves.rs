//! **Figure 4 — Training curves.**
//!
//! Paper: loss curves on RefCOCO (red), RefCOCO+ (green), RefCOCOg (blue);
//! "YOLLO is able to converge within 5000 iterations" — i.e. fast, early
//! convergence on all three datasets.
//!
//! Here: trains one YOLLO per synthetic dataset, writes per-iteration
//! loss/accuracy curves to `target/experiments/fig4_<dataset>.csv` and
//! `fig4_<dataset>.jsonl` (the machine-readable twin), and prints a coarse
//! ASCII rendition plus the convergence evidence (early vs late loss,
//! iteration at which half the total loss drop was reached).

use yollo_bench::{dataset, load_or_train_yollo, output_dir, Scale};
use yollo_synthref::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let dir = output_dir();
    println!("# Figure 4 — training curves ({scale:?} scale)\n");
    for kind in DatasetKind::ALL {
        let ds = dataset(scale, kind);
        eprintln!("training on {}…", kind.name());
        let (_, log) = load_or_train_yollo(scale, &ds, kind, 42);
        let slug = kind.name().to_lowercase().replace('+', "plus");
        let path = dir.join(format!("fig4_{slug}.csv"));
        log.write_csv(&path).expect("can write curve CSV");
        let jsonl_path = dir.join(format!("fig4_{slug}.jsonl"));
        log.write_jsonl(&jsonl_path).expect("can write curve JSONL");

        let total_points = log.points.len();
        let first = log.early_loss(10).expect("curve has applied steps");
        let last = log.late_loss(10).expect("curve has applied steps");
        // iteration where half of the total loss drop is already achieved
        let target = first - (first - last) / 2.0;
        let half_iter = log
            .points
            .iter()
            .find(|p| p.loss.total <= target)
            .map_or(total_points, |p| p.iteration);
        println!("## {}", kind.name());
        println!("- curve: {} (+ {})", path.display(), jsonl_path.display());
        println!("- loss: {first:.3} → {last:.3} over {total_points} iterations");
        println!(
            "- half of the total loss drop reached by iteration {half_iter} ({:.0}% of the run)",
            100.0 * half_iter as f64 / total_points as f64
        );
        // coarse ASCII sparkline of the loss (10 buckets)
        let buckets = 10.min(total_points);
        let mut line = String::from("- shape: ");
        for b in 0..buckets {
            let lo = b * total_points / buckets;
            let hi = ((b + 1) * total_points / buckets).max(lo + 1);
            let mean: f64 =
                log.points[lo..hi].iter().map(|p| p.loss.total).sum::<f64>() / (hi - lo) as f64;
            let norm = ((mean - last) / (first - last).max(1e-9)).clamp(0.0, 1.0);
            line.push(match (norm * 4.0) as usize {
                0 => '_',
                1 => '.',
                2 => '-',
                3 => '^',
                _ => '#',
            });
        }
        println!("{line}\n");
    }
    println!("Paper shape to match: steep early drop, flat tail, on all three datasets.");
}
