//! **Tensor backend speed.** Times the blocked/parallel compute paths
//! against the retained naive reference kernel on fixed seeds — at both
//! dtype instantiations (`f64` = reference, `f32` = serve fast path) —
//! and writes `BENCH_tensor.json` at the repository root: one record per
//! (op, dtype, shape, threads) with ns/iter.
//!
//! Run with `cargo run --release -p yollo-bench --bin exp_tensor_speed`.
//! `YOLLO_TENSOR_REPS=<n>` overrides the repetition count.

use std::time::Instant;
use yollo_tensor::{
    conv2d_forward, im2col_into, matmul_blocked, matmul_naive, matmul_nt, matmul_tn, parallel,
    Conv2dSpec, ConvScratch, Element, Graph, TapeArena, Tensor,
};

struct Record {
    op: &'static str,
    dtype: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: f64,
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (min filters scheduler
/// noise better than the mean at these durations).
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, prime caches
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn randn_vec<E: Element>(len: usize, seed: u64) -> Vec<E> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::<E>::randn(&[len], &mut rng).into_vec()
}

fn seeded_randn<E: Element>(dims: &[usize], seed: u64) -> Tensor<E> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::<E>::randn(dims, &mut rng)
}

/// Runs the full op suite at one dtype instantiation, appending
/// dtype-tagged records. Identical shapes, seeds, and rep counts across
/// dtypes, so rows are directly comparable.
fn run_suite<E: Element>(reps: usize, records: &mut Vec<Record>) {
    let ambient = parallel::num_threads();
    let dtype = E::DTYPE;
    let mut push = |op: &'static str, shape: String, threads: usize, ns: f64| {
        eprintln!("{op:>20} [{dtype}] {shape:>18} threads={threads}: {ns:.0} ns/iter");
        records.push(Record {
            op,
            dtype,
            shape,
            threads,
            ns_per_iter: ns,
        });
    };

    // --- matmul: naive reference vs blocked, serial and ambient ---
    for &(m, k, n) in &[(64usize, 256usize, 64usize), (256, 1024, 256)] {
        let a: Vec<E> = randn_vec(m * k, 11);
        let b: Vec<E> = randn_vec(k * n, 13);
        let shape = format!("{m}x{k}x{n}");
        let mut out = vec![E::ZERO; m * n];

        let ns = time_ns(reps, || {
            out.fill(E::ZERO);
            matmul_naive(&a, &b, &mut out, m, k, n);
        });
        push("matmul_naive", shape.clone(), 1, ns);

        for &threads in &[1usize, ambient] {
            let ns = time_ns(reps, || {
                out.fill(E::ZERO);
                matmul_blocked(&a, &b, &mut out, m, k, n, threads);
            });
            push("matmul_blocked", shape.clone(), threads, ns);
            if threads == ambient {
                break; // ambient may itself be 1
            }
        }
    }

    // --- matmul backward: materialised-transpose reference vs the fused
    // nt/tn kernels the tape actually uses (∂A = ∂Y·Bᵀ, ∂B = Aᵀ·∂Y) ---
    for &(m, k, n) in &[(64usize, 256usize, 64usize), (256, 1024, 256)] {
        let a: Vec<E> = randn_vec(m * k, 29);
        let b: Vec<E> = randn_vec(k * n, 31);
        let gy: Vec<E> = randn_vec(m * n, 37);
        let shape = format!("{m}x{k}x{n}");
        let mut ga = vec![E::ZERO; m * k];
        let mut gb = vec![E::ZERO; k * n];

        // pre-optimisation strategy: transpose each operand into a scratch
        // buffer, then run the plain blocked kernel on the copies
        let mut bt = vec![E::ZERO; n * k];
        let mut at = vec![E::ZERO; k * m];
        let ns = time_ns(reps, || {
            for r in 0..k {
                for c in 0..n {
                    bt[c * k + r] = b[r * n + c];
                }
            }
            ga.fill(E::ZERO);
            matmul_blocked(&gy, &bt, &mut ga, m, n, k, 1);
            for r in 0..m {
                for c in 0..k {
                    at[c * m + r] = a[r * k + c];
                }
            }
            gb.fill(E::ZERO);
            matmul_blocked(&at, &gy, &mut gb, k, m, n, 1);
        });
        push("matmul_bwd_transposed", shape.clone(), 1, ns);

        for &threads in &[1usize, ambient] {
            let ns = time_ns(reps, || {
                ga.fill(E::ZERO);
                matmul_nt(&gy, &b, &mut ga, m, n, k, threads);
                gb.fill(E::ZERO);
                matmul_tn(&a, &gy, &mut gb, m, k, n, threads);
            });
            push("matmul_bwd_fused", shape.clone(), threads, ns);
            if threads == ambient {
                break;
            }
        }
    }

    // --- full tape round trip: forward + backward through Graph, with a
    // fresh tape per iteration vs an arena recycling tape buffers ---
    {
        let (m, k, n) = (128usize, 256usize, 128usize);
        let ta: Tensor<E> = seeded_randn(&[m, k], 41);
        let tb: Tensor<E> = seeded_randn(&[k, n], 42);
        let shape = format!("{m}x{k}x{n}");

        let ns = time_ns(reps, || {
            let g = Graph::<E>::new();
            let a = g.leaf(ta.clone());
            let b = g.leaf(tb.clone());
            a.matmul(b).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("matmul_fwd_bwd", shape.clone(), ambient, ns);

        let arena = TapeArena::<E>::new();
        let ns = time_ns(reps, || {
            let g = Graph::with_arena(arena.clone());
            let a = g.leaf(ta.clone());
            let b = g.leaf(tb.clone());
            a.matmul(b).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("matmul_fwd_bwd_arena", shape, ambient, ns);
    }

    // --- conv2d forward + backward through the tape ---
    {
        let x: Tensor<E> = seeded_randn(&[2, 8, 16, 16], 43);
        let w: Tensor<E> = seeded_randn(&[16, 8, 3, 3], 44);
        let spec = Conv2dSpec { stride: 1, pad: 1 };
        let ns = time_ns(reps, || {
            let g = Graph::<E>::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(w.clone());
            xv.conv2d(wv, spec).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("conv2d_fwd_bwd", "2x8x16x16_o16".to_string(), ambient, ns);
    }

    // --- batched matmul through the public Tensor API ---
    {
        let (bt, m, k, n) = (8usize, 64usize, 256usize, 64usize);
        let a: Tensor<E> = seeded_randn(&[bt, m, k], 17);
        let b: Tensor<E> = seeded_randn(&[bt, k, n], 18);
        let ns = time_ns(reps, || {
            std::hint::black_box(a.matmul(&b));
        });
        push("matmul_batched", format!("{bt}x{m}x{k}x{n}"), ambient, ns);
    }

    // --- conv 3x3: per-call allocation vs scratch reuse ---
    {
        let x: Tensor<E> = seeded_randn(&[2, 32, 32, 32], 19);
        let w: Tensor<E> = seeded_randn(&[64, 32, 3, 3], 20);
        let spec = Conv2dSpec { stride: 1, pad: 1 };
        let mut scratch = ConvScratch::new();
        let ns = time_ns(reps, || {
            std::hint::black_box(conv2d_forward(&x, &w, spec, &mut scratch));
        });
        push("conv3x3_scratch", "2x32x32x32_o64".to_string(), ambient, ns);

        let mut cols = Vec::new();
        let ns = time_ns(reps, || {
            std::hint::black_box(im2col_into(&x, 3, 3, spec, &mut cols));
        });
        push("im2col", "2x32x32x32_k3".to_string(), ambient, ns);
    }

    // --- large elementwise map (above the fan-out threshold) ---
    {
        let n = 1 << 20;
        let t = Tensor::from_vec(randn_vec::<E>(n, 23), &[n]);
        let scale = E::from_f64(1.0001);
        let shift = E::from_f64(0.5);
        let ns = time_ns(reps, || {
            std::hint::black_box(t.map(|v| v * scale + shift));
        });
        push("map", format!("{n}"), ambient, ns);
        let ns = time_ns(reps, || {
            std::hint::black_box(t.sum_all());
        });
        push("sum_all", format!("{n}"), ambient, ns);
    }
}

fn main() {
    let reps: usize = std::env::var("YOLLO_TENSOR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut records: Vec<Record> = Vec::new();
    run_suite::<f64>(reps, &mut records);
    run_suite::<f32>(reps, &mut records);

    // headline ratios the acceptance criteria track
    let ns_of = |op: &str, dtype: &str, shape: &str| {
        records
            .iter()
            .find(|r| r.op == op && r.dtype == dtype && r.shape == shape)
            .map(|r| r.ns_per_iter)
    };
    if let (Some(naive), Some(blocked)) = (
        ns_of("matmul_naive", "f64", "256x1024x256"),
        ns_of("matmul_blocked", "f64", "256x1024x256"),
    ) {
        println!(
            "256x1024x256 blocked speedup vs naive: {:.2}x",
            naive / blocked
        );
    }
    if let (Some(transposed), Some(fused)) = (
        ns_of("matmul_bwd_transposed", "f64", "256x1024x256"),
        ns_of("matmul_bwd_fused", "f64", "256x1024x256"),
    ) {
        println!(
            "256x1024x256 fused backward speedup vs transposed: {:.2}x",
            transposed / fused
        );
    }
    if let (Some(f64_ns), Some(f32_ns)) = (
        ns_of("matmul_blocked", "f64", "256x1024x256"),
        ns_of("matmul_blocked", "f32", "256x1024x256"),
    ) {
        println!(
            "256x1024x256 f32 blocked speedup vs f64: {:.2}x",
            f64_ns / f32_ns
        );
    }

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"op\": \"{}\", \"dtype\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.0}}}",
                r.op, r.dtype, r.shape, r.threads, r.ns_per_iter
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tensor.json");
    std::fs::write(&path, json).expect("can write BENCH_tensor.json");
    println!("wrote {}", path.display());
}
