//! **Tensor backend speed.** Times the blocked/parallel compute paths
//! against the retained naive reference kernel on fixed seeds and writes
//! `BENCH_tensor.json` at the repository root — one record per (op, shape,
//! threads) with ns/iter — seeding the repo's performance trajectory.
//!
//! Run with `cargo run --release -p yollo-bench --bin exp_tensor_speed`.
//! `YOLLO_TENSOR_REPS=<n>` overrides the repetition count.

use std::time::Instant;
use yollo_tensor::{
    conv2d_forward, im2col_into, matmul_blocked, matmul_naive, matmul_nt, matmul_tn, parallel,
    Conv2dSpec, ConvScratch, Graph, TapeArena, Tensor,
};

struct Record {
    op: &'static str,
    shape: String,
    threads: usize,
    ns_per_iter: f64,
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (min filters scheduler
/// noise better than the mean at these durations).
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: page in buffers, prime caches
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

fn randn_vec(len: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(&[len], &mut rng).into_vec()
}

fn main() {
    let reps: usize = std::env::var("YOLLO_TENSOR_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let ambient = parallel::num_threads();
    let mut records: Vec<Record> = Vec::new();
    let mut push = |op, shape: String, threads, ns| {
        eprintln!("{op:>16} {shape:>18} threads={threads}: {:.0} ns/iter", ns);
        records.push(Record {
            op,
            shape,
            threads,
            ns_per_iter: ns,
        });
    };

    // --- matmul: naive reference vs blocked, serial and ambient ---
    for &(m, k, n) in &[(64usize, 256usize, 64usize), (256, 1024, 256)] {
        let a = randn_vec(m * k, 11);
        let b = randn_vec(k * n, 13);
        let shape = format!("{m}x{k}x{n}");
        let mut out = vec![0.0; m * n];

        let ns = time_ns(reps, || {
            out.fill(0.0);
            matmul_naive(&a, &b, &mut out, m, k, n);
        });
        push("matmul_naive", shape.clone(), 1, ns);

        for &threads in &[1usize, ambient] {
            let ns = time_ns(reps, || {
                out.fill(0.0);
                matmul_blocked(&a, &b, &mut out, m, k, n, threads);
            });
            push("matmul_blocked", shape.clone(), threads, ns);
            if threads == ambient {
                break; // ambient may itself be 1
            }
        }
    }

    // --- matmul backward: materialised-transpose reference vs the fused
    // nt/tn kernels the tape actually uses (∂A = ∂Y·Bᵀ, ∂B = Aᵀ·∂Y) ---
    for &(m, k, n) in &[(64usize, 256usize, 64usize), (256, 1024, 256)] {
        let a = randn_vec(m * k, 29);
        let b = randn_vec(k * n, 31);
        let gy = randn_vec(m * n, 37);
        let shape = format!("{m}x{k}x{n}");
        let mut ga = vec![0.0; m * k];
        let mut gb = vec![0.0; k * n];

        // pre-optimisation strategy: transpose each operand into a scratch
        // buffer, then run the plain blocked kernel on the copies
        let mut bt = vec![0.0; n * k];
        let mut at = vec![0.0; k * m];
        let ns = time_ns(reps, || {
            for r in 0..k {
                for c in 0..n {
                    bt[c * k + r] = b[r * n + c];
                }
            }
            ga.fill(0.0);
            matmul_blocked(&gy, &bt, &mut ga, m, n, k, 1);
            for r in 0..m {
                for c in 0..k {
                    at[c * m + r] = a[r * k + c];
                }
            }
            gb.fill(0.0);
            matmul_blocked(&at, &gy, &mut gb, k, m, n, 1);
        });
        push("matmul_bwd_transposed", shape.clone(), 1, ns);

        for &threads in &[1usize, ambient] {
            let ns = time_ns(reps, || {
                ga.fill(0.0);
                matmul_nt(&gy, &b, &mut ga, m, n, k, threads);
                gb.fill(0.0);
                matmul_tn(&a, &gy, &mut gb, m, k, n, threads);
            });
            push("matmul_bwd_fused", shape.clone(), threads, ns);
            if threads == ambient {
                break;
            }
        }
    }

    // --- full tape round trip: forward + backward through Graph, with a
    // fresh tape per iteration vs an arena recycling tape buffers ---
    {
        let (m, k, n) = (128usize, 256usize, 128usize);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(41);
        let ta = Tensor::randn(&[m, k], &mut rng);
        let tb = Tensor::randn(&[k, n], &mut rng);
        let shape = format!("{m}x{k}x{n}");

        let ns = time_ns(reps, || {
            let g = Graph::new();
            let a = g.leaf(ta.clone());
            let b = g.leaf(tb.clone());
            a.matmul(b).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("matmul_fwd_bwd", shape.clone(), ambient, ns);

        let arena = TapeArena::new();
        let ns = time_ns(reps, || {
            let g = Graph::with_arena(arena.clone());
            let a = g.leaf(ta.clone());
            let b = g.leaf(tb.clone());
            a.matmul(b).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("matmul_fwd_bwd_arena", shape, ambient, ns);
    }

    // --- conv2d forward + backward through the tape ---
    {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(43);
        let x = Tensor::randn(&[2, 8, 16, 16], &mut rng);
        let w = Tensor::randn(&[16, 8, 3, 3], &mut rng);
        let spec = Conv2dSpec { stride: 1, pad: 1 };
        let ns = time_ns(reps, || {
            let g = Graph::new();
            let xv = g.leaf(x.clone());
            let wv = g.leaf(w.clone());
            xv.conv2d(wv, spec).sum_all().backward();
            std::hint::black_box(g.len());
        });
        push("conv2d_fwd_bwd", "2x8x16x16_o16".to_string(), ambient, ns);
    }

    // --- batched matmul through the public Tensor API ---
    {
        let (bt, m, k, n) = (8usize, 64usize, 256usize, 64usize);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);
        let a = Tensor::randn(&[bt, m, k], &mut rng);
        let b = Tensor::randn(&[bt, k, n], &mut rng);
        let ns = time_ns(reps, || {
            std::hint::black_box(a.matmul(&b));
        });
        push("matmul_batched", format!("{bt}x{m}x{k}x{n}"), ambient, ns);
    }

    // --- conv 3x3: per-call allocation vs scratch reuse ---
    {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(19);
        let x = Tensor::randn(&[2, 32, 32, 32], &mut rng);
        let w = Tensor::randn(&[64, 32, 3, 3], &mut rng);
        let spec = Conv2dSpec { stride: 1, pad: 1 };
        let mut scratch = ConvScratch::new();
        let ns = time_ns(reps, || {
            std::hint::black_box(conv2d_forward(&x, &w, spec, &mut scratch));
        });
        push("conv3x3_scratch", "2x32x32x32_o64".to_string(), ambient, ns);

        let mut cols = Vec::new();
        let ns = time_ns(reps, || {
            std::hint::black_box(im2col_into(&x, 3, 3, spec, &mut cols));
        });
        push("im2col", "2x32x32x32_k3".to_string(), ambient, ns);
    }

    // --- large elementwise map (above the fan-out threshold) ---
    {
        let n = 1 << 20;
        let t = Tensor::from_vec(randn_vec(n, 23), &[n]);
        let ns = time_ns(reps, || {
            std::hint::black_box(t.map(|v| v * 1.0001 + 0.5));
        });
        push("map", format!("{n}"), ambient, ns);
        let ns = time_ns(reps, || {
            std::hint::black_box(t.sum_all());
        });
        push("sum_all", format!("{n}"), ambient, ns);
    }

    // headline ratio the acceptance criteria track
    let ns_of = |op: &str, shape: &str| {
        records
            .iter()
            .find(|r| r.op == op && r.shape == shape)
            .map(|r| r.ns_per_iter)
    };
    if let (Some(naive), Some(blocked)) = (
        ns_of("matmul_naive", "256x1024x256"),
        ns_of("matmul_blocked", "256x1024x256"),
    ) {
        println!(
            "256x1024x256 blocked speedup vs naive: {:.2}x",
            naive / blocked
        );
    }
    if let (Some(transposed), Some(fused)) = (
        ns_of("matmul_bwd_transposed", "256x1024x256"),
        ns_of("matmul_bwd_fused", "256x1024x256"),
    ) {
        println!(
            "256x1024x256 fused backward speedup vs transposed: {:.2}x",
            transposed / fused
        );
    }

    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.0}}}",
                r.op, r.shape, r.threads, r.ns_per_iter
            )
        })
        .collect();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tensor.json");
    std::fs::write(&path, json).expect("can write BENCH_tensor.json");
    println!("wrote {}", path.display());
}
