//! **Proposal-model comparison** (extension; backs §2's related-work
//! claims).
//!
//! §2: cheap objectness models (BING, Selective Search, MultiBox) are
//! "faster but less accurate … they have to increase the number of
//! proposals to improve the recall rate", while learned detectors propose
//! better but cost a full network pass. This binary measures target
//! recall@0.5 and proposal latency for the trained RPN vs the
//! training-free colour-contrast grid proposer at several budgets.

use yollo_bench::{dataset, output_dir, Scale};
use yollo_detect::BBox;
use yollo_eval::{pct, time_inference, Table};
use yollo_synthref::{Dataset, DatasetKind, Split};
use yollo_twostage::{GridProposals, ProposalConfig, ProposalNetwork};

fn grid_recall(gp: &GridProposals, ds: &Dataset, split: Split) -> f64 {
    let samples = ds.samples(split);
    let mut hit = 0;
    let mut last = usize::MAX;
    let mut cached: Vec<(BBox, f64)> = Vec::new();
    for s in samples {
        if s.scene_idx != last {
            cached = gp.propose(ds.scene_of(s));
            last = s.scene_idx;
        }
        let t = ds.target_bbox(s);
        hit += cached.iter().any(|(b, _)| b.iou(&t) > 0.5) as usize;
    }
    hit as f64 / samples.len().max(1) as f64
}

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let scene = ds.scene_of(&ds.samples(Split::Val)[0]);

    let rpn_iters = match scale {
        Scale::Tiny => 60,
        Scale::Standard => 150,
        Scale::Full => 300,
    };
    eprintln!("training RPN ({rpn_iters} iters)…");
    let mut rpn = ProposalNetwork::new(
        ProposalConfig {
            proposals_per_image: 60,
            ..ProposalConfig::default()
        },
        7,
    );
    rpn.train(&ds, rpn_iters, 4, 8);

    let mut table = Table::new(["Proposer", "# proposals", "val recall@0.5", "latency (s)"]);
    let t_rpn = time_inference(|| drop(rpn.propose(scene)), 1, 5);
    table.row([
        "RPN (trained, Faster-RCNN stand-in)".to_string(),
        "60".to_string(),
        pct(rpn.target_recall(&ds, Split::Val, 0.5)),
        format!("{:.4}", t_rpn.mean_s),
    ]);
    for budget in [30usize, 60, 120] {
        let gp = GridProposals {
            max_keep: budget,
            ..GridProposals::default()
        };
        let t = time_inference(|| drop(gp.propose(scene)), 1, 5);
        table.row([
            "grid + colour contrast (training-free)".to_string(),
            budget.to_string(),
            pct(grid_recall(&gp, &ds, Split::Val)),
            format!("{:.4}", t.mean_s),
        ]);
    }
    println!("# Proposal models ({scale:?} scale)\n");
    println!("{table}");
    println!("Shape to match (§2): the heuristic needs a larger proposal budget to close");
    println!("the recall gap to the learned detector.");
    let path = output_dir().join("proposers_results.txt");
    std::fs::write(&path, table.to_markdown()).expect("can write results");
}
