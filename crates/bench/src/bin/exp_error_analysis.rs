//! **Error analysis** (extension; not a numbered paper table).
//!
//! Breaks YOLLO's validation accuracy down by target category, target size
//! and query length, and measures confidence calibration — the diagnostics
//! a practitioner would run before deploying the grounder.

use yollo_bench::{dataset, load_or_train_yollo, output_dir, Scale};
use yollo_eval::{pct, CalibrationBins, GroupedMetrics, Table};
use yollo_synthref::{DatasetKind, SizeClass, Split};

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let (model, _) = load_or_train_yollo(scale, &ds, DatasetKind::SynthRef, 42);

    let mut by_kind: GroupedMetrics<&'static str> = GroupedMetrics::new();
    let mut by_size: GroupedMetrics<&'static str> = GroupedMetrics::new();
    let mut by_len: GroupedMetrics<usize> = GroupedMetrics::new();
    let mut calib = CalibrationBins::new(10);

    for s in ds.samples(Split::Val) {
        let pred = model.predict_sample(&ds, s);
        let gt = ds.target_bbox(s);
        let iou = pred.bbox.iou(&gt);
        let scene = ds.scene_of(s);
        let obj = &scene.objects[s.target_idx];
        by_kind.record(obj.kind.word(), iou);
        by_size.record(
            match obj.size_class(scene.median_area()) {
                SizeClass::Small => "small",
                SizeClass::Large => "big",
            },
            iou,
        );
        by_len.record(s.tokens.len().min(8), iou);
        calib.record(pred.score, iou > 0.5);
    }

    println!("# Error analysis ({scale:?} scale, SynthRef val)\n");
    let mut t = Table::new(["Target category", "ACC@0.5", "MIOU", "n"]);
    for (k, m) in by_kind.iter() {
        t.row([
            k.to_string(),
            pct(m.acc_at(0.5)),
            pct(m.miou()),
            m.len().to_string(),
        ]);
    }
    println!("## By category\n\n{t}");
    if let Some((k, acc)) = by_kind.weakest(0.5) {
        println!("weakest category: {k} ({})\n", pct(acc));
    }

    let mut t = Table::new(["Target size", "ACC@0.5", "MIOU", "n"]);
    for (k, m) in by_size.iter() {
        t.row([
            k.to_string(),
            pct(m.acc_at(0.5)),
            pct(m.miou()),
            m.len().to_string(),
        ]);
    }
    println!("## By size\n\n{t}");

    let mut t = Table::new(["Query length (words, capped 8)", "ACC@0.5", "n"]);
    for (k, m) in by_len.iter() {
        t.row([k.to_string(), pct(m.acc_at(0.5)), m.len().to_string()]);
    }
    println!("## By query length\n\n{t}");

    println!("## Confidence calibration\n");
    let mut t = Table::new(["mean confidence", "accuracy", "n"]);
    for (conf, acc, n) in calib.bins() {
        t.row([format!("{conf:.2}"), format!("{acc:.2}"), n.to_string()]);
    }
    println!("{t}");
    println!("expected calibration error (ECE): {:.3}", calib.ece());

    let path = output_dir().join("error_analysis.json");
    let blob = serde_json::json!({
        "ece": calib.ece(),
        "overall_acc50": by_kind.overall().acc_at(0.5),
        "overall_miou": by_kind.overall().miou(),
    });
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&blob).expect("serialisable"),
    )
    .expect("can write results");
    println!("raw results: {}", path.display());
}
