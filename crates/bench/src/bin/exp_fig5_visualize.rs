//! **Figure 5 (and Figure 3) — Qualitative visualisation.**
//!
//! Paper: scenes with the Rel2Att attention mask highlighted and the
//! predicted box in red; "the highlighted areas … perfectly match with the
//! final predicted bounding boxes"; query-swap pairs on the same image
//! ("left most toilet" vs "right urinal") move the attention and the box.
//!
//! Here: trains YOLLO on SynthRef, renders validation scenes to
//! `target/experiments/fig5_*.ppm` with the attention heat map (red tint),
//! the predicted box (red) and the ground truth (white outline), plus a
//! query-swap pair, and prints the attention/box agreement statistic.

use yollo_bench::{dataset, load_or_train_yollo, output_dir, Scale};
use yollo_detect::BBox;
use yollo_synthref::{render_ppm, DatasetKind, Overlay, Split};

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let (model, _) = load_or_train_yollo(scale, &ds, DatasetKind::SynthRef, 42);
    let dir = output_dir();
    let (fh, fw) = (model.config().feat_h(), model.config().feat_w());
    let stride = model.config().anchors.stride as f64;

    println!("# Figure 5 — qualitative results ({scale:?} scale)\n");
    let mut agree = 0usize;
    let mut total = 0usize;
    for (i, sample) in ds.samples(Split::Val).iter().take(8).enumerate() {
        let scene = ds.scene_of(sample);
        let pred = model.predict_sample(&ds, sample);
        let gt = ds.target_bbox(sample);
        let path = dir.join(format!("fig5_val{i}.ppm"));
        render_ppm(
            scene,
            &[
                Overlay::Heat {
                    values: pred.attention.clone(),
                    fh,
                    fw,
                },
                Overlay::Box {
                    bbox: pred.bbox,
                    rgb: [1.0, 0.0, 0.0],
                },
                Overlay::Box {
                    bbox: gt,
                    rgb: [1.0, 1.0, 1.0],
                },
            ],
            &path,
        )
        .expect("can write figure");
        // does the attention peak fall inside the predicted box?
        let peak = pred
            .attention
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(idx, _)| idx)
            .expect("non-empty attention");
        let (py, px) = (peak / fw, peak % fw);
        let peak_point = ((px as f64 + 0.5) * stride, (py as f64 + 0.5) * stride);
        let inside = pred.bbox.contains_point(peak_point.0, peak_point.1);
        agree += inside as usize;
        total += 1;
        println!(
            "- {}: \"{}\" IoU={:.2}, attention peak {} predicted box",
            path.file_name().expect("file name").to_string_lossy(),
            sample.sentence,
            pred.bbox.iou(&gt),
            if inside { "inside" } else { "OUTSIDE" },
        );
    }
    println!("\nattention-peak-inside-predicted-box: {agree}/{total} (paper: \"perfectly match\")");

    // query swaps: same image, opposite queries — the Figure 5 pairs
    // ("left most toilet" vs "right urinal"). Sweep several scenes and
    // kinds, count how often the box moves, and render the first moving
    // pair.
    let kinds = ["circle", "square", "triangle", "cross", "diamond"];
    let pairs = [("left", "right"), ("top", "bottom")];
    let mut moved = 0usize;
    let mut tried = 0usize;
    let mut rendered = false;
    for sample in ds.samples(Split::Val).iter().take(24) {
        let scene = ds.scene_of(sample);
        for kind in kinds {
            let k = yollo_synthref::ShapeKind::ALL
                .iter()
                .find(|s| s.word() == kind)
                .copied()
                .expect("known kind");
            if scene.of_kind(k).len() < 2 {
                continue;
            }
            for (a, b) in pairs {
                let qa = format!("{a} {kind}");
                let qb = format!("{b} {kind}");
                let pa = model.predict_scene_query(scene, &qa);
                let pb = model.predict_scene_query(scene, &qb);
                tried += 1;
                let did_move = pa.bbox.iou(&pb.bbox) < 0.5;
                moved += did_move as usize;
                if did_move && !rendered {
                    rendered = true;
                    for (i, (q, p)) in [(&qa, &pa), (&qb, &pb)].iter().enumerate() {
                        render_ppm(
                            scene,
                            &[
                                Overlay::Heat {
                                    values: p.attention.clone(),
                                    fh,
                                    fw,
                                },
                                Overlay::Box {
                                    bbox: p.bbox,
                                    rgb: [1.0, 0.0, 0.0],
                                },
                            ],
                            dir.join(format!("fig5_swap{i}.ppm")),
                        )
                        .expect("can write figure");
                        println!("- swap render \"{q}\" -> {:?}", p.bbox);
                    }
                }
            }
        }
    }
    println!(
        "query swap moved the box in {moved}/{tried} opposite-direction pairs \
         (paper: box follows the query on the same image)"
    );
    let _ = BBox::default();
}
