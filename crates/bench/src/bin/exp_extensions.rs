//! **Extensions & future-work ablations** (not a numbered paper table).
//!
//! The paper leaves three threads open; this binary runs all of them:
//!
//! 1. §4.3: "we can improve … ACC and ACC@0.75 by setting ρ_high to a
//!    properly larger value, e.g. 0.7, but we leave this to the future
//!    work" — rows compare ρ_high ∈ {0.5, 0.7}.
//! 2. Footnote 1: "We also evaluate our model with VGGNet as the backbone,
//!    where we do not observe a big drop" — rows compare TinyResNet /
//!    DeepResNet / VggStyle backbones.
//! 3. DESIGN.md's offset-encoding deviation: the paper's literal Eq. (8)
//!    plain-difference targets vs the standard R-CNN log encoding.
//!
//! Each variant trains on SynthRef at the current scale and reports
//! val ACC@0.5 / ACC@0.75 / MIOU.

use yollo_backbone::BackboneKind;
use yollo_bench::{dataset, output_dir, Scale};
use yollo_core::{TrainConfig, Trainer, Yollo, YolloConfig};
use yollo_detect::{MatchConfig, OffsetEncoding};
use yollo_eval::{pct, Table};
use yollo_synthref::{Dataset, DatasetKind, Split};

fn train_variant(scale: Scale, ds: &Dataset, label: &str, cfg: YolloConfig) -> [f64; 3] {
    eprintln!("training variant: {label}");
    let mut model = Yollo::new(cfg, 42);
    model.set_vocab(ds.build_vocab());
    let base = scale.train_config(42);
    // six variants train in this binary: cap each run so the whole sweep
    // stays affordable — relative ordering, not absolute accuracy, is the
    // point here
    let tc = TrainConfig {
        eval_every: 0,
        iterations: base.iterations.min(400),
        ..base
    };
    Trainer::new(tc).train(&mut model, ds);
    let m = model.evaluate(ds, Split::Val);
    [m.acc_at(0.5), m.acc_at(0.75), m.miou()]
}

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let base = YolloConfig::for_dataset(&ds);
    println!("# Extensions — future-work & footnote ablations ({scale:?} scale)\n");

    let variants: Vec<(String, YolloConfig)> = vec![
        (
            "baseline (rho_high=0.5, RcnnLog, tiny ResNet)".into(),
            base.clone(),
        ),
        (
            "rho_high=0.7 (paper future work)".into(),
            YolloConfig {
                matcher: MatchConfig {
                    rho_high: 0.7,
                    rho_low: 0.3,
                    ..base.matcher
                },
                ..base.clone()
            },
        ),
        (
            "VGG-style backbone (footnote 1)".into(),
            YolloConfig {
                backbone: BackboneKind::VggStyle,
                ..base.clone()
            },
        ),
        (
            "plain-difference offsets (paper Eq. 8 literal)".into(),
            YolloConfig {
                offset_encoding: OffsetEncoding::PlainDiff,
                ..base.clone()
            },
        ),
    ];

    let mut table = Table::new(["Variant", "val ACC@0.5", "val ACC@0.75", "val MIOU"]);
    let mut results = std::collections::BTreeMap::new();
    for (label, cfg) in variants {
        let [a50, a75, miou] = train_variant(scale, &ds, &label, cfg);
        table.row([label.clone(), pct(a50), pct(a75), pct(miou)]);
        results.insert(label, (a50, a75, miou));
    }
    println!("{table}");
    let path = output_dir().join("extensions_results.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write results");
    println!("raw results: {}", path.display());
    println!("\nExpectations: rho_high=0.7 trades ACC@0.5 for ACC@0.75;");
    println!("VGG backbone shows no big drop (footnote); deep backbone ≈ tiny at higher cost;");
    println!("offset encodings roughly tie on this box-size distribution.");
}
