//! **Table 4 — Rel2Att ablations.**
//!
//! Paper: removing image & query self-attention costs ~30 points of
//! ACC@0.5; removing co-attention (the model then grounds *blind to the
//! query*) collapses to ~35 ACC@0.5 — which is still well above zero
//! because dataset biases make some targets guessable from the image alone.
//!
//! Here: retrains YOLLO with each relation-map quadrant family wiped out
//! (`AttentionAblation`). Shape to match: Full > NoSelfAttention >
//! NoCoAttention on every dataset, with NoCoAttention clearly above zero.

use yollo_bench::{dataset, output_dir, train_yollo_with_ablation, Scale};
use yollo_core::AttentionAblation;
use yollo_eval::{pct, Table};
use yollo_synthref::{DatasetKind, Split};

fn main() {
    let scale = Scale::from_env();
    println!("# Table 4 — Rel2Att ablations ({scale:?} scale)\n");
    let mut table = Table::new([
        "Method",
        "SynthRef val",
        "testA",
        "testB",
        "SynthRef+ val",
        "testA",
        "testB",
        "SynthRefG val",
    ]);
    let mut results = std::collections::BTreeMap::new();
    let ablations = [
        AttentionAblation::Full,
        AttentionAblation::NoSelfAttention,
        AttentionAblation::NoCoAttention,
    ];
    // train per (dataset, ablation); collect rows per ablation
    let mut rows: Vec<Vec<String>> = ablations
        .iter()
        .map(|a| vec![a.name().to_string()])
        .collect();
    for kind in DatasetKind::ALL {
        let ds = dataset(scale, kind);
        eprintln!("== {} ==", kind.name());
        for (ai, ablation) in ablations.iter().enumerate() {
            eprintln!("  ablation: {}", ablation.name());
            let model = train_yollo_with_ablation(scale, &ds, 42, *ablation);
            let splits: &[Split] = if kind == DatasetKind::SynthRefG {
                &[Split::Val] // the paper reports only val for RefCOCOg
            } else {
                &[Split::Val, Split::TestA, Split::TestB]
            };
            for split in splits {
                let acc = model.evaluate(&ds, *split).acc_at(0.5);
                rows[ai].push(pct(acc));
                results.insert(
                    format!("{}|{}|{}", kind.name(), ablation.name(), split.name()),
                    acc,
                );
            }
        }
    }
    for row in rows {
        table.row(row);
    }
    println!("{table}");
    let path = output_dir().join("table4_results.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write results");
    println!("raw results: {}", path.display());
    println!("\nPaper shape to match: Full > without-self-attention > without-co-attention,");
    println!("with the query-blind model still above chance (dataset bias, §4.4).");
}
