//! **Table 2 — Main comparison + cross-dataset generalisation.**
//!
//! Paper: YOLLO reaches 89–92 ACC@0.5 on all splits of all three datasets,
//! 18–41 points above the two-stage speaker/listener/MMI/ensemble
//! baselines (which sit in the 40–74 range); trained-on-X-tested-on-Y rows
//! degrade but stay competitive (e.g. RefCOCO+→RefCOCO 68.32 vs the
//! previous SOTA 67.44).
//!
//! Here: trains YOLLO and the full baseline family on each synthetic
//! dataset, evaluates every split, then evaluates each trained YOLLO on
//! the other two datasets. Shape to match: YOLLO ≫ every baseline on every
//! split; cross-dataset numbers clearly below in-domain but above chance.

use std::collections::BTreeMap;

use yollo_bench::{dataset, load_or_train_yollo, output_dir, train_baselines, Scale};
use yollo_core::Yollo;
use yollo_eval::{pct, Table};
use yollo_synthref::{Dataset, DatasetKind, Split};
use yollo_twostage::{EnsembleScorer, ProposalScorer};

const EVAL_SPLITS: [Split; 3] = [Split::Val, Split::TestA, Split::TestB];

fn main() {
    let scale = Scale::from_env();
    println!("# Table 2 — main comparison ({scale:?} scale)\n");
    let mut results: BTreeMap<String, f64> = BTreeMap::new();
    let mut yollos: Vec<(DatasetKind, Yollo)> = Vec::new();
    let mut datasets: Vec<(DatasetKind, Dataset)> = Vec::new();

    for kind in DatasetKind::ALL {
        eprintln!("== {} ==", kind.name());
        let ds = dataset(scale, kind);
        let (model, _) = load_or_train_yollo(scale, &ds, kind, 42);
        let baselines = train_baselines(scale, &ds, 7);

        let mut table = Table::new([
            "Method".to_string(),
            format!("{} val", kind.name()),
            "testA".to_string(),
            "testB".to_string(),
        ]);
        // baselines: the Table-2 method family
        let ensemble = EnsembleScorer::new(vec![&baselines.speaker, &baselines.listener]);
        let ensemble_mmi =
            EnsembleScorer::new(vec![&baselines.speaker_mmi, &baselines.listener_mmi]);
        let scorers: Vec<&dyn ProposalScorer> = vec![
            &baselines.listener,
            &baselines.speaker,
            &baselines.listener_mmi,
            &baselines.speaker_mmi,
            &ensemble,
            &ensemble_mmi,
        ];
        for scorer in scorers {
            let grounder = baselines.grounder(scorer);
            let mut row = vec![grounder.name()];
            for split in EVAL_SPLITS {
                let acc = grounder.evaluate(&ds, split).acc_at(0.5);
                results.insert(
                    format!("{}|{}|{}", kind.name(), grounder.name(), split.name()),
                    acc,
                );
                row.push(pct(acc));
            }
            table.row(row);
            eprintln!("  evaluated {}", table.len());
        }
        // YOLLO
        let mut row = vec!["YOLLO".to_string()];
        for split in EVAL_SPLITS {
            let acc = model.evaluate(&ds, split).acc_at(0.5);
            results.insert(format!("{}|YOLLO|{}", kind.name(), split.name()), acc);
            row.push(pct(acc));
        }
        table.row(row);
        println!("## {}\n\n{table}", kind.name());
        yollos.push((kind, model));
        datasets.push((kind, ds));
    }

    // cross-dataset generalisation: trained on X, tested on Y
    println!("## Cross-dataset generalisation (train → test, ACC@0.5 on val/testA/testB)\n");
    let mut cross = Table::new(["Trained on", "Tested on", "val", "testA", "testB"]);
    for (train_kind, model) in &yollos {
        for (test_kind, ds) in &datasets {
            let mut row = vec![train_kind.name().to_string(), test_kind.name().to_string()];
            for split in EVAL_SPLITS {
                let acc = model.evaluate(ds, split).acc_at(0.5);
                results.insert(
                    format!(
                        "cross|{}->{}|{}",
                        train_kind.name(),
                        test_kind.name(),
                        split.name()
                    ),
                    acc,
                );
                row.push(pct(acc));
            }
            cross.row(row);
        }
    }
    println!("{cross}");

    let json = serde_json::to_string_pretty(&results).expect("serialisable");
    let path = output_dir().join("table2_results.json");
    std::fs::write(&path, json).expect("can write results");
    println!("raw results: {}", path.display());
    println!("\nPaper shape to match: YOLLO above every baseline on every split;");
    println!("cross-dataset rows below the in-domain diagonal but above chance.");
}
