//! **Table 1 — Dataset statistics.**
//!
//! Paper: #images / #queries / #targets for ReferCOCO, ReferCOCO+,
//! ReferCOCOg (19,994/142,209/50,000 etc.), avg query length ≈3.6 for
//! RefCOCO(+) and ≈8.43 for RefCOCOg, same-type object counts ≈3.9 vs ≈1.6.
//!
//! Here: the same statistics for the synthetic stand-ins at the current
//! `YOLLO_SCALE`. Absolute counts are scaled down; the *relationships*
//! (G has longer queries and fewer same-kind distractors; queries ≫
//! targets ≫ images) must match.

use yollo_bench::{dataset, Scale};
use yollo_eval::Table;
use yollo_synthref::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    let mut table = Table::new([
        "Dataset",
        "# images",
        "# queries",
        "# targets",
        "avg query len",
        "avg same-kind objects",
    ]);
    for kind in DatasetKind::ALL {
        let ds = dataset(scale, kind);
        let stats = ds.stats();
        // same-kind statistic: average number of objects sharing the
        // target's category (including the target), over all samples
        let mut same = 0.0;
        let mut n = 0.0;
        for split in yollo_synthref::Split::ALL {
            for s in ds.samples(split) {
                let scene = ds.scene_of(s);
                same += scene.of_kind(scene.objects[s.target_idx].kind).len() as f64;
                n += 1.0;
            }
        }
        table.row([
            kind.name().to_string(),
            stats.images.to_string(),
            stats.queries.to_string(),
            stats.targets.to_string(),
            format!("{:.2}", stats.avg_query_len),
            format!("{:.2}", same / n),
        ]);
    }
    println!("# Table 1 — dataset statistics (synthetic stand-ins, {scale:?} scale)\n");
    println!("{table}");
    println!("Paper reference: RefCOCO 19,994/142,209/50,000; RefCOCO+ 19,992/141,564/49,856;");
    println!("RefCOCOg 26,711/85,474/49,822; avg query length 3.6 / 3.6 / 8.43;");
    println!("same-type objects ≈3.9 (RefCOCO/+) vs ≈1.6 (RefCOCOg).");
}
