//! **Train-step throughput.** Times the serial trainer against the
//! data-parallel trainer (`num_shards = 4`) at 1, 2 and 4 worker threads,
//! checks the determinism contract — final weights bit-identical across
//! worker-thread counts — and writes `BENCH_train.json` at the repository
//! root.
//!
//! Thread scaling is reported against the machine it ran on (`cores` is
//! recorded in the output): on a single-core box the 4-thread row measures
//! scheduling overhead, not speedup, while the bitwise-equality check is
//! meaningful everywhere.
//!
//! Run with `cargo run --release -p yollo-bench --bin exp_train_speed`.
//! `YOLLO_SCALE=tiny|standard|full` picks the preset;
//! `YOLLO_TRAIN_ITERS=<n>` overrides the timed iteration count.

use std::time::Instant;
use yollo_bench::Scale;
use yollo_core::{TrainConfig, Trainer, Yollo, YolloConfig};
use yollo_nn::Module;
use yollo_synthref::{Dataset, DatasetKind};

struct Row {
    mode: &'static str,
    num_shards: usize,
    worker_threads: usize,
    ns_per_step: f64,
    steps_per_s: f64,
}

/// Every weight of every parameter, as raw bits.
fn weight_bits(model: &Yollo) -> Vec<Vec<u64>> {
    model
        .parameters()
        .iter()
        .map(|p| p.value().as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Standard => "standard",
        Scale::Full => "full",
    };
    let iterations: usize = std::env::var("YOLLO_TRAIN_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(match scale {
            Scale::Tiny => 4,
            Scale::Standard => 10,
            Scale::Full => 24,
        });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let ds = Dataset::generate(scale.dataset_config(DatasetKind::SynthRef, 2022));
    let batch_size = scale.train_config(0).batch_size;
    let model_cfg = |ds: &Dataset| match scale {
        // CI smoke: shrink the model so the whole sweep runs in seconds
        Scale::Tiny => YolloConfig {
            d_rel: 12,
            ffn_hidden: 16,
            n_rel2att: 1,
            ..YolloConfig::for_dataset(ds)
        },
        _ => YolloConfig::for_dataset(ds),
    };

    // One fresh model per run (same init seed), so runs are independent and
    // final weights are comparable across worker-thread counts. The timer
    // covers the whole training call, pool startup included — that cost is
    // real and amortises over the run.
    let run = |num_shards: usize, worker_threads: usize| {
        let mut model = Yollo::new(model_cfg(&ds), 7);
        model.set_vocab(ds.build_vocab());
        let cfg = TrainConfig {
            iterations,
            batch_size,
            eval_every: 0,
            word2vec_init: false,
            pretrain_backbone_steps: 0,
            num_shards,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(cfg);
        if num_shards > 1 {
            trainer = trainer.with_worker_threads(worker_threads);
        }
        let t = Instant::now();
        let log = trainer.train(&mut model, &ds);
        let ns = t.elapsed().as_nanos() as f64 / iterations as f64;
        assert_eq!(log.points.len(), iterations);
        (ns, weight_bits(&model))
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut push = |mode, num_shards, worker_threads, ns: f64| {
        let steps_per_s = 1e9 / ns;
        eprintln!(
            "{mode:>8} shards={num_shards} workers={worker_threads}: \
             {:.2} ms/step ({steps_per_s:.2} steps/s)",
            ns / 1e6
        );
        rows.push(Row {
            mode,
            num_shards,
            worker_threads,
            ns_per_step: ns,
            steps_per_s,
        });
    };

    let (serial_ns, _) = run(1, 1);
    push("serial", 1, 1, serial_ns);

    let shards = 4usize;
    let mut parallel_bits = Vec::new();
    let mut parallel_ns = Vec::new();
    for &wt in &[1usize, 2, 4] {
        let (ns, bits) = run(shards, wt);
        push("parallel", shards, wt, ns);
        parallel_ns.push(ns);
        parallel_bits.push(bits);
    }

    // the contract every parallel_train test enforces, re-checked on the
    // exact configuration this benchmark publishes
    let bitwise_equal = parallel_bits.iter().all(|b| *b == parallel_bits[0]);
    assert!(
        bitwise_equal,
        "determinism violated: final weights differ across worker-thread counts"
    );

    let speedup_vs_one_thread = parallel_ns[0] / parallel_ns[2];
    let speedup_vs_serial = serial_ns / parallel_ns[2];
    println!("scale={scale_name} cores={cores} iterations={iterations} batch={batch_size}");
    println!("parallel(4 shards) 4 workers vs 1 worker: {speedup_vs_one_thread:.2}x");
    println!("parallel(4 shards, 4 workers) vs serial:  {speedup_vs_serial:.2}x");
    println!("weights bitwise-equal across 1/2/4 worker threads: {bitwise_equal}");

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"mode\": \"{}\", \"num_shards\": {}, \"worker_threads\": {}, \
                 \"ns_per_step\": {:.0}, \"steps_per_s\": {:.3}}}",
                r.mode, r.num_shards, r.worker_threads, r.ns_per_step, r.steps_per_s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": \"{scale_name}\",\n  \"cores\": {cores},\n  \
         \"iterations_timed\": {iterations},\n  \"batch_size\": {batch_size},\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"speedup_4_workers_vs_1_worker\": {speedup_vs_one_thread:.3},\n  \
         \"speedup_4_workers_vs_serial\": {speedup_vs_serial:.3},\n  \
         \"determinism\": {{\"num_shards\": {shards}, \"worker_threads\": [1, 2, 4], \
         \"weights_bitwise_equal\": {bitwise_equal}}}\n}}\n",
        row_json.join(",\n")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_train.json");
    std::fs::write(&path, json).expect("can write BENCH_train.json");
    println!("wrote {}", path.display());
}
