//! Utility: evaluates the cached trained model for a dataset kind without
//! retraining (used to inspect checkpoints mid-experiment).
//!
//! Usage: `cargo run -p yollo-bench --bin exp_quick_eval [synthref|synthref+|synthrefg]`

use yollo_bench::{dataset, model_cache_path, Scale};
use yollo_core::{AttentionAblation, Yollo};
use yollo_synthref::{DatasetKind, Split};

fn main() {
    let scale = Scale::from_env();
    let arg = std::env::args().nth(1).unwrap_or_else(|| "synthref".into());
    let kind = match arg.as_str() {
        "synthref+" => DatasetKind::SynthRefPlus,
        "synthrefg" => DatasetKind::SynthRefG,
        _ => DatasetKind::SynthRef,
    };
    let path = model_cache_path(scale, kind, AttentionAblation::Full);
    let model = Yollo::load(&path).unwrap_or_else(|e| {
        eprintln!("no cached model at {}: {e}", path.display());
        std::process::exit(1);
    });
    let ds = dataset(scale, kind);
    for split in [Split::Val, Split::TestA, Split::TestB] {
        let m = model.evaluate(&ds, split);
        println!(
            "{:6} ACC@0.5={:.3} ACC@0.75={:.3} MIOU={:.3} (n={})",
            split.name(),
            m.acc_at(0.5),
            m.acc_at(0.75),
            m.miou(),
            m.len()
        );
    }
}
