//! Quick end-to-end smoke run: trains YOLLO on a tiny SynthRef and reports
//! accuracy + per-iteration timing. Not a paper table — a development aid.

use std::time::Instant;
use yollo_bench::{dataset, train_yollo, Scale};
use yollo_synthref::{DatasetKind, Split};

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {scale:?}");
    let t0 = Instant::now();
    let ds = dataset(scale, DatasetKind::SynthRef);
    eprintln!(
        "dataset: {} scenes, {} train samples in {:.1}s",
        ds.scenes().len(),
        ds.samples(Split::Train).len(),
        t0.elapsed().as_secs_f64()
    );
    let (model, log) = train_yollo(scale, &ds, 42);
    for p in &log.points {
        if let Some(acc) = p.val_acc {
            eprintln!(
                "  iter {}: val ACC@0.5 = {acc:.3} (att {:.3} cls {:.3} reg {:.3})",
                p.iteration, p.loss.att, p.loss.cls, p.loss.reg
            );
        }
    }
    for split in [Split::Val, Split::TestA, Split::TestB] {
        let m = model.evaluate(&ds, split);
        println!(
            "{:6} ACC@0.5={:.3} ACC@0.75={:.3} MIOU={:.3} (n={})",
            split.name(),
            m.acc_at(0.5),
            m.acc_at(0.75),
            m.miou(),
            m.len()
        );
    }
}
