//! **Table 5 — Inference speed comparison.**
//!
//! Paper (one NVIDIA Titan XP): speaker 1.235s (+0.291s stage-i), listener
//! 1.332s (+0.293s), speaker+listener 1.547s (+0.289s), YOLLO ResNet-50
//! 0.065s, YOLLO ResNet-101 0.103s → a 20×∼30× speedup.
//!
//! Here (one CPU, f64): the same six rows. Latency is weight-independent,
//! so models are timed as constructed; the two-stage rows time the
//! *paper-faithful* pipeline of [42]: stage-i proposal generation, then,
//! per proposal, a separate CNN pass over the cropped region followed by
//! the matcher — ~100 crops per image, the "embed each proposal" cost
//! structure §1 criticises. The stage-i share is reported in parentheses
//! exactly as the paper does. (The accuracy experiments use the modern
//! shared-feature-map RoI pooling instead, which is why they are fast;
//! Table 5 measures the historical architecture the paper compared
//! against.) Shape to match: YOLLO several times to an order of magnitude
//! faster; the deep backbone costs ~1.5–2×.

use yollo_backbone::BackboneKind;
use yollo_bench::{dataset, output_dir, Scale};
use yollo_core::{Yollo, YolloConfig};
use yollo_eval::{time_inference, Table, TimingStats};
use yollo_synthref::{DatasetKind, Split};
use yollo_twostage::{
    EnsembleScorer, Listener, ListenerConfig, ProposalConfig, ProposalNetwork, ProposalScorer,
    RoiExtractor, Speaker, SpeakerConfig,
};

fn main() {
    let scale = Scale::from_env();
    let (warmup, reps) = match scale {
        Scale::Tiny => (1, 5),
        Scale::Standard => (3, 15),
        Scale::Full => (5, 40),
    };
    let ds = dataset(scale, DatasetKind::SynthRef);
    let vocab = ds.build_vocab();
    let sample = &ds.samples(Split::Val)[0];
    let scene = ds.scene_of(sample);
    let query = vocab.encode_padded(&sample.tokens, ds.max_query_len());

    // --- two-stage parts (the [42]-style per-region-CNN pipeline) ---
    let rpn = ProposalNetwork::new(
        ProposalConfig {
            proposals_per_image: 100, // "tens or even hundreds" (§1)
            ..ProposalConfig::default()
        },
        0,
    );
    let _ = RoiExtractor::new(8, 2); // accuracy path; not timed here
    let feat_dim = rpn.crop_feat_dim();
    let listener = Listener::new(ListenerConfig::small(feat_dim, vocab.len()), 1);
    let speaker = Speaker::new(SpeakerConfig::small(feat_dim, vocab.len()), 2);
    let ensemble = EnsembleScorer::new(vec![&speaker, &listener]);

    // stage-i time (the paper's parenthesised "+0.29s")
    let stage1 = time_inference(
        || {
            rpn.propose(scene);
        },
        warmup,
        reps,
    );
    let (proposals, _) = rpn.propose(scene);
    eprintln!("timing stage ii over {} proposals…", proposals.len());

    // stage-ii = per-proposal crop + CNN pass + matcher, as in [42]
    let time_scorer = |scorer: &dyn ProposalScorer| -> TimingStats {
        time_inference(
            || {
                let feats = rpn.crop_features(scene, &proposals);
                scorer.score_proposals(&feats, &query);
            },
            warmup,
            reps,
        )
    };
    let t_speaker = time_scorer(&speaker);
    let t_listener = time_scorer(&listener);
    let t_ensemble = time_scorer(&ensemble);

    // --- YOLLO, both backbones ---
    let time_yollo = |backbone: BackboneKind| -> TimingStats {
        let cfg = YolloConfig {
            backbone,
            vocab_size: vocab.len(),
            max_query_len: ds.max_query_len().max(4),
            ..YolloConfig::default()
        };
        let mut model = Yollo::new(cfg, 3);
        model.set_vocab(vocab.clone());
        let img = scene.render().reshape(&[1, 5, scene.height, scene.width]);
        time_inference(
            || {
                model.predict_batch(img.clone(), std::slice::from_ref(&query));
            },
            warmup,
            reps,
        )
    };
    eprintln!("timing YOLLO…");
    let t_tiny = time_yollo(BackboneKind::TinyResNet);
    let t_deep = time_yollo(BackboneKind::DeepResNet);

    let fmt_two_stage = |t: &TimingStats| format!("{:.4} (+{:.4})", t.mean_s, stage1.mean_s);
    let mut table = Table::new(["Models", "Seconds"]);
    table.row(["speaker".to_string(), fmt_two_stage(&t_speaker)]);
    table.row(["listener".to_string(), fmt_two_stage(&t_listener)]);
    table.row(["speaker+listener".to_string(), fmt_two_stage(&t_ensemble)]);
    table.row([
        "YOLLO (ResNet-50 C4 stand-in)".to_string(),
        format!("{:.4}", t_tiny.mean_s),
    ]);
    table.row([
        "YOLLO (ResNet-101 C4 stand-in)".to_string(),
        format!("{:.4}", t_deep.mean_s),
    ]);
    println!("# Table 5 — inference speed ({scale:?} scale, CPU)\n");
    println!("{table}");
    let full = |t: &TimingStats| t.mean_s + stage1.mean_s; // total two-stage latency incl. stage i
    println!(
        "speedups over YOLLO (tiny backbone): speaker {:.1}x, listener {:.1}x, s+l {:.1}x",
        full(&t_speaker) / t_tiny.mean_s,
        full(&t_listener) / t_tiny.mean_s,
        full(&t_ensemble) / t_tiny.mean_s,
    );
    println!(
        "deep backbone costs {:.2}x the tiny backbone (paper: 0.103/0.065 = 1.58x)",
        t_deep.mean_s / t_tiny.mean_s
    );

    let results = serde_json::json!({
        "stage1_s": stage1.mean_s,
        "speaker_s": t_speaker.mean_s,
        "listener_s": t_listener.mean_s,
        "speaker_listener_s": t_ensemble.mean_s,
        "yollo_tiny_s": t_tiny.mean_s,
        "yollo_deep_s": t_deep.mean_s,
        "proposals": proposals.len(),
    });
    let path = output_dir().join("table5_results.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write results");
    println!("raw results: {}", path.display());
}
