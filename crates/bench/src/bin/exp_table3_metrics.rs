//! **Table 3 — Different evaluation metrics.**
//!
//! Paper: on every dataset/split, ACC@0.5 ≈ 90, ACC@0.75 much lower
//! (ACC@0.5 ≫ ACC@0.75 because positives are only trained down to
//! IoU ≥ ρ_high = 0.5), COCO-averaged ACC between the two, MIOU ≈ 47–57.
//!
//! Here: the same four metrics for YOLLO on each synthetic dataset/split.
//! Shape to match: ACC@0.5 > ACC (COCO avg) > ACC@0.75 and a respectable
//! MIOU, on every split.

use yollo_bench::{dataset, load_or_train_yollo, output_dir, Scale};
use yollo_eval::{pct, Table};
use yollo_synthref::{DatasetKind, Split};

fn main() {
    let scale = Scale::from_env();
    println!("# Table 3 — different evaluation metrics ({scale:?} scale)\n");
    let mut table = Table::new(["Dataset", "Split", "ACC", "ACC@0.5", "ACC@0.75", "MIOU"]);
    let mut results = std::collections::BTreeMap::new();
    for kind in DatasetKind::ALL {
        let ds = dataset(scale, kind);
        eprintln!("== {} ==", kind.name());
        let (model, _) = load_or_train_yollo(scale, &ds, kind, 42);
        for split in [Split::Val, Split::TestA, Split::TestB] {
            let m = model.evaluate(&ds, split);
            table.row([
                kind.name().to_string(),
                split.name().to_string(),
                pct(m.acc_coco()),
                pct(m.acc_at(0.5)),
                pct(m.acc_at(0.75)),
                pct(m.miou()),
            ]);
            results.insert(
                format!("{}|{}", kind.name(), split.name()),
                (m.acc_coco(), m.acc_at(0.5), m.acc_at(0.75), m.miou()),
            );
        }
    }
    println!("{table}");
    let path = output_dir().join("table3_results.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write results");
    println!("raw results: {}", path.display());
    println!("\nPaper shape to match: ACC@0.5 > ACC > ACC@0.75 on every row");
    println!("(ACC@0.75 is depressed because anchors are only supervised to IoU ≥ ρ_high = 0.5).");
}
