//! Diagnostic (not a paper table): how well does the Rel2Att attention
//! alone learn to localise the target? Trains with the full loss and
//! reports, per eval, the fraction of validation samples whose final-layer
//! attention peak falls inside the ground-truth box.

use rand::rngs::StdRng;
use rand::SeedableRng;
use yollo_bench::{dataset, Scale};
use yollo_core::{TrainConfig, Trainer, Yollo};
use yollo_synthref::{Dataset, DatasetKind, Split};

fn att_peak_hit_rate(model: &Yollo, ds: &Dataset, n: usize) -> f64 {
    let fw = model.config().feat_w();
    let stride = model.config().anchors.stride as f64;
    let samples = &ds.samples(Split::Val)[..n.min(ds.samples(Split::Val).len())];
    let mut hits = 0;
    for s in samples {
        let pred = model.predict_sample(ds, s);
        let peak = pred
            .attention
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (py, px) = (peak / fw, peak % fw);
        let gt = ds.target_bbox(s);
        if gt.contains_point((px as f64 + 0.5) * stride, (py as f64 + 0.5) * stride) {
            hits += 1;
        }
    }
    hits as f64 / samples.len() as f64
}

fn main() {
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let mut model = Yollo::for_dataset(&ds, 42);
    let _ = StdRng::seed_from_u64(0);
    let cfg = TrainConfig {
        eval_every: 0,
        ..scale.train_config(42)
    };
    let trainer = Trainer::new(cfg);
    eprintln!(
        "probe: att-peak hit rate before training: {:.3}",
        att_peak_hit_rate(&model, &ds, 60)
    );
    let chunks = 4;
    let per_chunk = TrainConfig {
        iterations: cfg.iterations / chunks,
        ..cfg
    };
    let mut first = true;
    for c in 0..chunks {
        let t = Trainer::new(TrainConfig {
            word2vec_init: per_chunk.word2vec_init && first,
            pretrain_backbone_steps: if first {
                per_chunk.pretrain_backbone_steps
            } else {
                0
            },
            seed: 42 + c as u64,
            ..per_chunk
        });
        first = false;
        let log = t.train(&mut model, &ds);
        eprintln!(
            "after {} iters: loss {:.3} (att {:.3}) peak-hit {:.3} val-acc {:.3}",
            (c + 1) * per_chunk.iterations,
            log.late_loss(10).unwrap_or(f64::NAN),
            log.points.last().expect("points").loss.att,
            att_peak_hit_rate(&model, &ds, 60),
            model
                .evaluate_samples(&ds, &ds.samples(Split::Val)[..40])
                .acc_at(0.5),
        );
    }
    let _ = trainer;
}
