//! **Serving load test** — measures the dynamic-batching server against a
//! naive serial client and writes `BENCH_serve.json` at the repository
//! root: throughput and p50/p95/p99 request latency at several offered
//! loads, the batch-size histogram, and the speedup over serial inference.
//!
//! The workload models serving traffic with a *hot set*: requests cycle
//! through `K` distinct (scene, query) pairs, the way production grounding
//! traffic repeats popular scenes and phrasings. Each offered load is
//! measured twice — once with the response cache disabled (`cache: "off"`,
//! isolating the batching path) and once with it enabled at production
//! capacity (`cache: "on"`, the full serving stack). On a single-core host
//! batching alone is roughly throughput-neutral (per-image model cost is
//! flat in batch size), so the cold numbers hover near 1×; the serving win
//! comes from coalescing + caching, and both rows land in the JSON so the
//! report never conflates them.
//!
//! The serial baseline is end-to-end: render + encode + predict for one
//! request at a time over the same request sequence, no cache — what a
//! naive client loop would do. Offered load is modelled closed-loop: `L`
//! outstanding requests are kept in flight; each completion immediately
//! funds the next submission. `YOLLO_SCALE` selects tiny/standard/full.
//!
//! The final `slo` section is a deterministic traced chaos run through
//! the virtual-clock router: per-request flight records reconcile against
//! the router's event log, every request trace must form a causally
//! complete admission→outcome span chain, and the latency breakdown
//! splits p50/p95/p99 into queue wait vs model service. Set
//! `YOLLO_TRACE_PATH` to also write that run as a Chrome trace.

use std::collections::VecDeque;
use std::time::Instant;

use yollo_bench::{dataset, Scale};
use yollo_core::{ReplicaFaultPlan, Yollo};
use yollo_obs::{Snapshot, TraceExemplars};
use yollo_serve::{
    reconcile_flights, validate_request_chains, GroundingModel, Percentiles, Priority, RetryPolicy,
    RouterArrival, RouterConfig, RouterServer, RouterSim, ServeConfig, ServeDtype, Server,
    ServiceModel, SloReport, YolloBackend,
};
use yollo_synthref::{DatasetKind, Scene, Split};

struct LoadResult {
    offered: usize,
    cache_capacity: usize,
    requests: usize,
    wall_s: f64,
    throughput_rps: f64,
    snapshot: Snapshot,
}

#[allow(clippy::too_many_arguments)]
fn run_load<M: GroundingModel>(
    model_factory: impl Fn() -> M + Send + Sync + Clone + 'static,
    vocab: yollo_text::Vocab,
    cfg_template: &ServeConfig,
    scenes: &[Scene],
    queries: &[String],
    hot_set: &[(usize, usize)],
    offered: usize,
    total: usize,
    workers: usize,
    cache_capacity: usize,
) -> LoadResult {
    yollo_obs::registry().reset();
    let cfg = ServeConfig {
        queue_capacity: offered.max(1),
        cache_capacity,
        workers,
        ..cfg_template.clone()
    };
    let server = Server::start(cfg, vocab, model_factory);
    let started = Instant::now();
    let mut pending = VecDeque::new();
    for i in 0..total {
        if pending.len() >= offered {
            let resp: yollo_serve::Response = pending.pop_front().unwrap();
            resp.wait().expect("request grounded");
        }
        let (si, qi) = hot_set[i % hot_set.len()];
        pending.push_back(
            server
                .submit(&scenes[si], &queries[qi])
                .expect("queue has room"),
        );
    }
    for resp in pending {
        resp.wait().expect("request grounded");
    }
    let wall_s = started.elapsed().as_secs_f64();
    drop(server);
    LoadResult {
        offered,
        cache_capacity,
        requests: total,
        wall_s,
        throughput_rps: total as f64 / wall_s,
        snapshot: yollo_obs::registry().snapshot(),
    }
}

fn hist_json(snap: &Snapshot, name: &str) -> serde_json::Value {
    match snap.histogram(name) {
        Some(h) => serde_json::json!({
            "count": h.count,
            "mean": h.mean,
            "p50": h.p50,
            "p95": h.p95,
            "p99": h.p99,
        }),
        None => serde_json::Value::Null,
    }
}

fn main() {
    yollo_obs::set_enabled(true);
    let scale = Scale::from_env();
    let ds = dataset(scale, DatasetKind::SynthRef);
    let model = Yollo::for_dataset(&ds, 7);
    let model_cfg = model.config().clone();
    let vocab = model.vocab().clone();
    let serve_template = ServeConfig::for_model(&model_cfg);

    let (total, loads, workers, serial_n, hot) = match scale {
        Scale::Tiny => (32usize, vec![4usize, 8], 2usize, 16usize, 8usize),
        Scale::Standard => (256, vec![8, 64], 2, 64, 32),
        Scale::Full => (1024, vec![8, 64, 256], 2, 64, 64),
    };

    let scenes: Vec<Scene> = ds.scenes().to_vec();
    let queries: Vec<String> = ds
        .samples(Split::Train)
        .iter()
        .take(64)
        .map(|s| s.sentence.clone())
        .collect();
    // The hot set: K distinct (scene, query) pairs the traffic cycles over.
    // Strides keep the pairs distinct even when K exceeds one of the pools.
    let hot_set: Vec<(usize, usize)> = (0..hot)
        .map(|i| {
            (
                i % scenes.len(),
                (i * 3 + i / queries.len()) % queries.len(),
            )
        })
        .collect();

    // --- serial baseline: a naive client, one end-to-end request at a
    // time (render + encode + predict), over the same request sequence ---
    eprintln!("serial baseline: {serial_n} single-request passes…");
    let train = ds.samples(Split::Train);
    let serial_started = Instant::now();
    for i in 0..serial_n {
        let (si, _) = hot_set[i % hot_set.len()];
        // encode_batch renders the scene and tokenizes the sentence; pick
        // any sample from the hot scene so the image cost is representative
        let sample = train
            .iter()
            .find(|s| s.scene_idx == si)
            .unwrap_or(&train[0]);
        let (images, ids, _) = model.encode_batch(&ds, &[sample]);
        let preds = model.predict_batch(images, &ids);
        assert_eq!(preds.len(), 1);
    }
    let serial_wall_s = serial_started.elapsed().as_secs_f64();
    let serial_rps = serial_n as f64 / serial_wall_s;
    eprintln!("serial: {serial_rps:.1} req/s");

    // --- batched server at each offered load, cache off then on ---
    let mut load_reports = Vec::new();
    let mut load_lines = Vec::new();
    for &offered in &loads {
        for cache_capacity in [0usize, 2 * hot] {
            let mode = if cache_capacity == 0 { "off" } else { "on" };
            eprintln!("offered load {offered} (cache {mode}): {total} requests…");
            let ds_vocab = vocab.clone();
            let factory_cfg = model_cfg.clone();
            let factory = move || {
                let mut m = Yollo::new(factory_cfg.clone(), 7);
                m.set_vocab(ds_vocab.clone());
                m
            };
            let result = run_load(
                factory,
                vocab.clone(),
                &serve_template,
                &scenes,
                &queries,
                &hot_set,
                offered,
                total,
                workers,
                cache_capacity,
            );
            let speedup = result.throughput_rps / serial_rps;
            let latency = hist_json(&result.snapshot, "serve.request_ns");
            let batch_ns = hist_json(&result.snapshot, "serve.batch_ns");
            let batch_size = hist_json(&result.snapshot, "serve.batch_size");
            let counter = |name: &str| result.snapshot.counter(name).unwrap_or(0);
            let report = serde_json::json!({
                "offered_load": result.offered,
                "cache": mode,
                "cache_capacity": result.cache_capacity,
                "requests": result.requests,
                "wall_s": result.wall_s,
                "throughput_rps": result.throughput_rps,
                "speedup_vs_serial": speedup,
                "latency_ns": latency,
                "batch_ns": batch_ns,
                "batch_size": batch_size,
                "batches": counter("serve.batches"),
                "shed": counter("serve.shed"),
                "cache_hits": counter("serve.cache.hits"),
                "worker_panics": counter("serve.worker_panics"),
            });
            load_reports.push(report);
            let line = format!(
                "offered {offered} (cache {mode}): {:.1} req/s ({speedup:.2}x serial, {} hits)",
                result.throughput_rps,
                counter("serve.cache.hits"),
            );
            eprintln!("{line}");
            load_lines.push(line);
        }
    }

    // --- dtype fast path: served throughput at each precision, plus the
    // f64-vs-f32 accuracy delta over the hot set (IoU where areas are
    // positive, raw coordinate/score drift always) ---
    let dtype_offered = *loads.last().expect("at least one offered load");
    let mut dtype_rows = Vec::new();
    let mut dtype_rps = [0.0f64; 2];
    for (di, dtype) in [ServeDtype::F64, ServeDtype::F32].into_iter().enumerate() {
        eprintln!(
            "dtype {} at offered load {dtype_offered}: {total} requests…",
            dtype.name()
        );
        let ds_vocab = vocab.clone();
        let factory_cfg = model_cfg.clone();
        let factory = move || {
            let mut m = Yollo::new(factory_cfg.clone(), 7);
            m.set_vocab(ds_vocab.clone());
            YolloBackend::new(m, dtype)
        };
        let result = run_load(
            factory,
            vocab.clone(),
            &serve_template,
            &scenes,
            &queries,
            &hot_set,
            dtype_offered,
            total,
            workers,
            0, // cache off: measure the model path, not the cache
        );
        dtype_rps[di] = result.throughput_rps;
        dtype_rows.push(serde_json::json!({
            "dtype": dtype.name(),
            "offered_load": result.offered,
            "requests": result.requests,
            "wall_s": result.wall_s,
            "throughput_rps": result.throughput_rps,
            "speedup_vs_serial": result.throughput_rps / serial_rps,
            "latency_ns": hist_json(&result.snapshot, "serve.request_ns"),
        }));
        let line = format!(
            "dtype {}: {:.1} req/s ({:.2}x serial)",
            dtype.name(),
            result.throughput_rps,
            result.throughput_rps / serial_rps,
        );
        eprintln!("{line}");
        load_lines.push(line);
    }

    let model32 = model.cast::<f32>();
    let mut ious = Vec::new();
    let mut max_coord_drift = 0.0f64;
    let mut max_score_drift = 0.0f64;
    let mut peak_agree = 0usize;
    for &(si, _) in &hot_set {
        let sample = train
            .iter()
            .find(|s| s.scene_idx == si)
            .unwrap_or(&train[0]);
        let (images, ids, _) = model.encode_batch(&ds, &[sample]);
        let p64 = model.predict_batch(images.clone(), &ids).remove(0);
        let p32 = model32.predict_batch(images.cast::<f32>(), &ids).remove(0);
        if p64.bbox.w * p64.bbox.h > 0.0 {
            ious.push(p64.bbox.iou(&p32.bbox));
        }
        for (a, b) in [
            (p64.bbox.x, p32.bbox.x),
            (p64.bbox.y, p32.bbox.y),
            (p64.bbox.w, p32.bbox.w),
            (p64.bbox.h, p32.bbox.h),
        ] {
            max_coord_drift = max_coord_drift.max((a - b).abs());
        }
        max_score_drift = max_score_drift.max((p64.score - p32.score).abs());
        if p64.attention_peak() == p32.attention_peak() {
            peak_agree += 1;
        }
    }
    let mean_iou = if ious.is_empty() {
        serde_json::Value::Null
    } else {
        serde_json::json!(ious.iter().sum::<f64>() / ious.len() as f64)
    };
    let accuracy = serde_json::json!({
        "pairs": hot_set.len(),
        "mean_iou_f32_vs_f64": mean_iou,
        "iou_pairs": ious.len(),
        "max_coord_drift_px": max_coord_drift,
        "max_score_drift": max_score_drift,
        "attention_peak_agreement": peak_agree as f64 / hot_set.len() as f64,
    });
    let acc_line = format!(
        "f32 vs f64 accuracy: max coord drift {max_coord_drift:.2e} px, \
         max score drift {max_score_drift:.2e}, peak agreement {peak_agree}/{}",
        hot_set.len()
    );
    eprintln!("{acc_line}");
    load_lines.push(acc_line);
    load_lines.push(format!(
        "f32 serve speedup vs f64: {:.2}x",
        dtype_rps[1] / dtype_rps[0]
    ));

    // --- router tier: 1/2/4 replicas under skewed hot-key traffic,
    // healthy and with replica 0 crash-looping. Scene-affinity keeps the
    // hot keys cached on their owning replica; with ≥ 2 replicas the
    // health checks + retries must hold availability at ≥ 99% even while
    // one replica panics on every batch it takes ---
    let (router_total, router_clients) = match scale {
        Scale::Tiny => (48usize, 2usize),
        Scale::Standard => (160, 4),
        Scale::Full => (320, 4),
    };
    // Skewed traffic: half of all requests hit the single hottest pair,
    // the rest cycle the remaining hot set.
    let skewed: Vec<(usize, usize)> = (0..router_total)
        .map(|i| {
            if i % 2 == 0 {
                hot_set[0]
            } else {
                hot_set[1 + (i / 2) % (hot_set.len() - 1)]
            }
        })
        .collect();
    let mut router_rows = Vec::new();
    for &replicas in &[1usize, 2, 4] {
        for crash_looping in [false, true] {
            let label = if crash_looping {
                "crash-loop"
            } else {
                "healthy"
            };
            eprintln!("router {replicas} replica(s) ({label}): {router_total} requests…");
            yollo_obs::registry().reset();
            let router_cfg = RouterConfig {
                replicas,
                deadline_ns: 0, // rely on retries; wall deadlines are load-sensitive
                retry: RetryPolicy {
                    max_attempts: 4,
                    base_backoff_ns: 50_000,
                    max_backoff_ns: 1_000_000,
                },
                ..RouterConfig::default()
            };
            let ds_vocab = vocab.clone();
            let factory_cfg = model_cfg.clone();
            let serve_cfg = ServeConfig {
                queue_capacity: router_total,
                cache_capacity: 2 * hot,
                workers,
                ..serve_template.clone()
            };
            let router = RouterServer::start(router_cfg, serve_cfg, vocab.clone(), move |_| {
                let mut m = Yollo::new(factory_cfg.clone(), 7);
                m.set_vocab(ds_vocab.clone());
                m
            });
            if crash_looping {
                router.set_fault_plan(0, ReplicaFaultPlan::new().crash_from(1));
            }
            let started = Instant::now();
            let mut latencies_ns: Vec<u64> = Vec::with_capacity(router_total);
            let mut ok = 0usize;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..router_clients)
                    .map(|c| {
                        let router = &router;
                        let skewed = &skewed;
                        let scenes = &scenes;
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut lat = Vec::new();
                            let mut ok = 0usize;
                            for i in (c..router_total).step_by(router_clients) {
                                let (si, qi) = skewed[i];
                                let t0 = Instant::now();
                                if router.call(&scenes[si], &queries[qi]).is_ok() {
                                    ok += 1;
                                }
                                lat.push(t0.elapsed().as_nanos() as u64);
                            }
                            (lat, ok)
                        })
                    })
                    .collect();
                for h in handles {
                    let (lat, n) = h.join().expect("router client");
                    latencies_ns.extend(lat);
                    ok += n;
                }
            });
            let wall_s = started.elapsed().as_secs_f64();
            let stats = router.stats();
            drop(router);
            latencies_ns.sort_unstable();
            let pct = |q: f64| {
                latencies_ns
                    .get(((latencies_ns.len() as f64 - 1.0) * q) as usize)
                    .copied()
                    .unwrap_or(0)
            };
            let snap = yollo_obs::registry().snapshot();
            let counter = |name: &str| snap.counter(name).unwrap_or(0);
            let cache_hits = counter("serve.cache.hits");
            let cache_requests = counter("serve.requests").max(1);
            let availability = ok as f64 / router_total as f64;
            let throughput_rps = router_total as f64 / wall_s;
            let cache_hit_rate = cache_hits as f64 / cache_requests as f64;
            let latency = serde_json::json!({
                "p50": pct(0.50),
                "p95": pct(0.95),
                "p99": pct(0.99),
            });
            router_rows.push(serde_json::json!({
                "replicas": replicas,
                "condition": label,
                "requests": router_total,
                "clients": router_clients,
                "wall_s": wall_s,
                "throughput_rps": throughput_rps,
                "availability": availability,
                "cache_hit_rate": cache_hit_rate,
                "latency_ns": latency,
                "retries": stats.retries,
                "unavailable": stats.unavailable,
                "worker_panics": counter("serve.worker_panics"),
            }));
            let line = format!(
                "router x{replicas} ({label}): {throughput_rps:.1} req/s, \
                 availability {availability:.3}, {} retries",
                stats.retries
            );
            eprintln!("{line}");
            load_lines.push(line);
        }
    }

    // --- SLO accounting: one deterministic traced chaos run under the
    // virtual clock. Flight records split every answered request's
    // latency into queue wait vs model service, must reconcile against
    // the RouterEvent fingerprint, and the span dump must form a causally
    // complete admission→outcome chain per request. The ci.sh trace gate
    // reruns this at tiny scale with YOLLO_TRACE_PATH set; chain or
    // reconciliation failures abort the binary ---
    let slo_total = match scale {
        Scale::Tiny => 48usize,
        Scale::Standard => 128,
        Scale::Full => 256,
    };
    eprintln!("slo: traced deterministic chaos run, {slo_total} requests…");
    yollo_obs::registry().reset();
    let _ = yollo_obs::drain_spans(); // earlier sections' spans are not this trace
    let _ = yollo_obs::take_dropped_spans();
    let slo_cfg = RouterConfig {
        replicas: 3,
        deadline_ns: 50_000_000,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100_000,
            max_backoff_ns: 1_000_000,
        },
        hedge_delay_ns: 3_000_000,
        service: ServiceModel {
            base_ns: 500_000,
            per_item_ns: 100_000,
        },
        ..RouterConfig::default()
    };
    let slo_serve = ServeConfig {
        queue_capacity: slo_total,
        cache_capacity: 0, // batch-serve everything: isolate queue vs service
        ..serve_template.clone()
    };
    let slo_arrivals: Vec<RouterArrival> = (0..slo_total)
        .map(|i| {
            let (si, qi) = skewed[i % skewed.len()];
            let class = match i % 3 {
                0 => Priority::Interactive,
                1 => Priority::Standard,
                _ => Priority::Bulk,
            };
            RouterArrival::new(i as u64 * 1_500_000, si, &queries[qi], class)
        })
        .collect();
    let ds_vocab = vocab.clone();
    let factory_cfg = model_cfg.clone();
    let mut sim = RouterSim::new(slo_cfg, slo_serve, vocab.clone(), move |_| {
        let mut m = Yollo::new(factory_cfg.clone(), 7);
        m.set_vocab(ds_vocab.clone());
        m
    });
    sim.router_mut()
        .set_fault_plan(0, ReplicaFaultPlan::new().crash_from(3));
    sim.router_mut()
        .set_fault_plan(2, ReplicaFaultPlan::new().slow_by(4.0));
    let slo_run = sim.run(&scenes, &slo_arrivals);
    reconcile_flights(&slo_run.flights, &slo_run.events)
        .expect("flight records reconcile with the router event log");
    let slo = SloReport::from_flights(&slo_run.flights);
    let slo_spans = yollo_obs::drain_spans();
    let chains = validate_request_chains(&slo_spans)
        .expect("every request trace is a causally complete chain");
    assert_eq!(
        chains.router_requests,
        slo_run.flights.len(),
        "one admission→outcome chain per flight record"
    );
    let mut exemplars = TraceExemplars::new(3);
    exemplars.observe(&slo_spans);
    if let Some(trace_path) = yollo_obs::trace_path_from_env() {
        yollo_obs::write_chrome_trace(&trace_path, &slo_spans).expect("can write serve trace");
        eprintln!(
            "slo: wrote {} trace events to {}",
            slo_spans.len(),
            trace_path.display()
        );
    }
    let pct_json =
        |p: &Percentiles| serde_json::json!({ "p50": p.p50, "p95": p.p95, "p99": p.p99 });
    let slowest: Vec<serde_json::Value> = exemplars
        .slowest()
        .iter()
        .map(|e| {
            serde_json::json!({
                "trace": e.trace,
                "root": e.root_name,
                "dur_ns": e.dur_ns,
                "spans": e.events.len(),
            })
        })
        .collect();
    let breakdown_json = serde_json::json!({
        "total": pct_json(&slo.total),
        "queue": pct_json(&slo.queue),
        "service": pct_json(&slo.service),
    });
    let trace_json = serde_json::json!({
        "request_chains": chains.router_requests,
        "spans": chains.spans,
        "slowest": serde_json::Value::Array(slowest),
    });
    let slo_json = serde_json::json!({
        "requests": slo.submitted,
        "accepted": slo.accepted,
        "shed": slo.shed,
        "unavailable": slo.unavailable,
        "degraded_hits": slo.degraded_hits,
        "delivered_ok": slo.delivered_ok,
        "delivered_err": slo.delivered_err,
        "deadline_exceeded": slo.deadline_exceeded,
        "availability": slo.availability,
        "deadline_miss_rate": slo.deadline_miss_rate,
        "hedges": slo.hedges,
        "hedge_wins": slo.hedge_wins,
        "hedge_win_rate": slo.hedge_win_rate,
        "retry_amplification": slo.retry_amplification,
        "latency_breakdown_ns": breakdown_json,
        "trace": trace_json,
    });
    let slo_line = format!(
        "slo: availability {:.3}, deadline miss {:.3}, retry amp {:.2}, \
         p95 total/queue/service {}/{}/{} µs",
        slo.availability,
        slo.deadline_miss_rate,
        slo.retry_amplification,
        slo.total.p95 / 1000,
        slo.queue.p95 / 1000,
        slo.service.p95 / 1000,
    );
    eprintln!("{slo_line}");
    load_lines.push(slo_line);

    let dtype_json = serde_json::json!({
        "rows": serde_json::Value::Array(dtype_rows),
        "accuracy": accuracy,
    });
    let serial = serde_json::json!({
        "requests": serial_n,
        "wall_s": serial_wall_s,
        "throughput_rps": serial_rps,
    });
    let loads_json = serde_json::Value::Array(load_reports);
    let results = serde_json::json!({
        "scale": format!("{scale:?}"),
        "workers": workers,
        "max_batch": serve_template.max_batch,
        "max_wait_ns": serve_template.max_wait_ns,
        "hot_set": hot,
        "serial": serial,
        "loads": loads_json,
        "dtype": dtype_json,
        "router": serde_json::Value::Array(router_rows),
        "slo": slo_json,
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&results).expect("serialisable"),
    )
    .expect("can write BENCH_serve.json");

    println!("# Serving load test ({scale:?} scale)\n");
    println!("serial baseline: {serial_rps:.1} req/s over {serial_n} requests");
    for line in &load_lines {
        println!("{line}");
    }
    println!("\nwrote {}", path.display());
}
