//! **Fault-tolerance experiment.**
//!
//! Not a paper table — the robustness evidence behind the fault-tolerant
//! trainer. Three demonstrations on one dataset:
//!
//! 1. **Crash/resume bit-equality**: a run killed mid-training and resumed
//!    from its newest checkpoint must reproduce the uninterrupted run's
//!    final loss, validation curve and weights *bit for bit*.
//! 2. **Corruption fallback**: same, but the newest checkpoint is first
//!    truncated (simulated mid-write crash) so the loader must fall back to
//!    the previous valid snapshot — and still match exactly.
//! 3. **NaN recovery**: seed-injected non-finite steps are skipped, and a
//!    streak of them triggers a rollback with learning-rate backoff; the
//!    run must still finish with a finite, decreasing loss.

use yollo_bench::{dataset, output_dir, Scale};
use yollo_core::{truncate_file, FaultPlan, StepOutcome, TrainConfig, TrainLog, Trainer, Yollo};
use yollo_nn::{CheckpointStore, Module};
use yollo_synthref::{Dataset, DatasetKind};

fn fresh_model(ds: &Dataset) -> Yollo {
    Yollo::for_dataset(ds, 42)
}

fn bits_equal(a: &TrainLog, b: &TrainLog) -> bool {
    a.points.len() == b.points.len()
        && a.points.iter().zip(&b.points).all(|(x, y)| {
            x.loss.total.to_bits() == y.loss.total.to_bits()
                && x.val_acc.map(f64::to_bits) == y.val_acc.map(f64::to_bits)
        })
}

fn weights_equal(a: &Yollo, b: &Yollo) -> bool {
    a.parameters()
        .iter()
        .zip(&b.parameters())
        .all(|(p, q)| p.value() == q.value())
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "bit-identical ✓"
    } else {
        "DIVERGED ✗"
    }
}

fn main() {
    let scale = Scale::from_env();
    let base = scale.train_config(42);
    let cfg = TrainConfig {
        checkpoint_every: (base.iterations / 5).max(1),
        ..base
    };
    let crash_at = cfg.iterations - cfg.iterations / 3;
    let ds = dataset(scale, DatasetKind::SynthRef);
    let dir = output_dir().join("fault_tolerance");
    std::fs::remove_dir_all(&dir).ok();

    println!("# Fault tolerance ({scale:?} scale)\n");
    println!(
        "{} iterations, checkpoint every {} (keep {}), crash before iteration {}\n",
        cfg.iterations, cfg.checkpoint_every, cfg.keep_last, crash_at
    );

    // reference: never interrupted
    eprintln!("training uninterrupted reference…");
    let mut ref_model = fresh_model(&ds);
    let reference = Trainer::new(cfg)
        .train_checkpointed(&mut ref_model, &ds, dir.join("reference"))
        .expect("reference run");

    // scenario 1: killed and resumed
    eprintln!("training crash/resume run…");
    let crash_dir = dir.join("crashed");
    let mut crashed_model = fresh_model(&ds);
    let crashed = Trainer::new(cfg)
        .with_fault_plan(FaultPlan::new().crash_before(crash_at))
        .train_checkpointed(&mut crashed_model, &ds, &crash_dir)
        .expect("crashed run");
    let mut resumed_model = fresh_model(&ds);
    let resumed = Trainer::new(cfg)
        .resume(&mut resumed_model, &ds, &crash_dir)
        .expect("resumed run");

    // scenario 2: killed, newest checkpoint truncated mid-write, resumed
    eprintln!("training truncated-checkpoint run…");
    let trunc_dir = dir.join("truncated");
    let mut trunc_model = fresh_model(&ds);
    Trainer::new(cfg)
        .with_fault_plan(FaultPlan::new().crash_before(crash_at))
        .train_checkpointed(&mut trunc_model, &ds, &trunc_dir)
        .expect("to-be-truncated run");
    let store = CheckpointStore::open(&trunc_dir, cfg.keep_last).expect("store");
    let (newest, newest_path) = store
        .entries()
        .expect("entries")
        .into_iter()
        .last()
        .expect("at least one checkpoint");
    truncate_file(&newest_path, 0.6).expect("truncate");
    let mut trunc_resumed_model = fresh_model(&ds);
    let trunc_resumed = Trainer::new(cfg)
        .resume(&mut trunc_resumed_model, &ds, &trunc_dir)
        .expect("resume past truncation");

    let final_loss = |log: &TrainLog| log.points.last().map_or(f64::NAN, |p| p.loss.total);
    println!("| run | interrupted at | resumed from | final loss | vs. reference |");
    println!("|---|---|---|---|---|");
    println!(
        "| uninterrupted | — | — | {:.6} | (reference) |",
        final_loss(&reference.log)
    );
    println!(
        "| killed + resumed | {} | ckpt-{} | {:.6} | {} |",
        crashed.interrupted_at.expect("crash fired"),
        resumed.resumed_from.expect("resumed"),
        final_loss(&resumed.log),
        verdict(
            bits_equal(&reference.log, &resumed.log) && weights_equal(&ref_model, &resumed_model)
        )
    );
    println!(
        "| killed + ckpt-{newest} truncated + resumed | {} | ckpt-{} | {:.6} | {} |",
        crash_at,
        trunc_resumed.resumed_from.expect("resumed after fallback"),
        final_loss(&trunc_resumed.log),
        verdict(
            bits_equal(&reference.log, &trunc_resumed.log)
                && weights_equal(&ref_model, &trunc_resumed_model)
        )
    );

    // scenario 3: non-finite steps, skip + rollback recovery
    eprintln!("training NaN-injected run…");
    let nan_steps = (cfg.iterations / 10).clamp(2, 8);
    let plan = FaultPlan::random(7, cfg.iterations, nan_steps)
        // a consecutive streak to force an actual rollback
        .nan_loss_at([crash_at, crash_at + 1, crash_at + 2]);
    let mut nan_model = fresh_model(&ds);
    let nan_run = Trainer::new(cfg)
        .with_fault_plan(plan)
        .train_checkpointed(&mut nan_model, &ds, dir.join("nan"))
        .expect("nan run");
    let skipped = nan_run
        .log
        .points
        .iter()
        .filter(|p| p.outcome == StepOutcome::Skipped)
        .count();
    println!("\n## Non-finite recovery\n");
    println!(
        "- injected {} poisoned steps (seeded) + a 3-step streak at {}..={}",
        nan_steps,
        crash_at,
        crash_at + 2
    );
    println!(
        "- skipped steps remaining in final curve: {skipped} (rolled-back stretches are rewound)"
    );
    for r in &nan_run.log.recoveries {
        println!(
            "- rollback at iteration {}: restored ckpt-{}, lr -> {:.2e}",
            r.at_iteration, r.restored_iteration, r.lr
        );
    }
    let early = nan_run.log.early_loss(10).unwrap_or(f64::NAN);
    let late = nan_run.log.late_loss(10).unwrap_or(f64::NAN);
    println!(
        "- completed: {} points, loss {:.3} -> {:.3} ({}finite, {})",
        nan_run.log.points.len(),
        early,
        late,
        if late.is_finite() { "" } else { "NON-" },
        if late < early {
            "decreasing ✓"
        } else {
            "NOT decreasing ✗"
        }
    );
}
