use crate::{ColorName, Scene, SceneObject, ShapeKind};
use yollo_detect::BBox;

/// Builds [`Scene`]s by hand — the public API for applications that ground
/// queries against their own layouts (see the `ground_custom_scene`
/// example) and for tests that need precise object placement.
///
/// ```
/// use yollo_synthref::{SceneBuilder, ShapeKind, ColorName};
/// let scene = SceneBuilder::new(72, 48)
///     .object(ShapeKind::Circle, ColorName::Red, 10.0, 10.0, 14.0, 14.0)
///     .object(ShapeKind::Square, ColorName::Blue, 44.0, 24.0, 16.0, 16.0)
///     .build();
/// assert_eq!(scene.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SceneBuilder {
    width: usize,
    height: usize,
    objects: Vec<SceneObject>,
}

impl SceneBuilder {
    /// Starts a scene of the given pixel size.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "scene must have positive size");
        SceneBuilder {
            width,
            height,
            objects: Vec::new(),
        }
    }

    /// Adds an object at `(x, y)` (top-left) with size `w`×`h`, clipped to
    /// the canvas.
    pub fn object(
        mut self,
        kind: ShapeKind,
        color: ColorName,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    ) -> Self {
        let bbox = BBox::new(x, y, w, h).clip_to(self.width as f64, self.height as f64);
        self.objects.push(SceneObject { kind, color, bbox });
        self
    }

    /// Adds an object centred at `(cx, cy)`.
    pub fn object_centered(
        self,
        kind: ShapeKind,
        color: ColorName,
        cx: f64,
        cy: f64,
        w: f64,
        h: f64,
    ) -> Self {
        self.object(kind, color, cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Number of objects added so far.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects have been added.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Finalises the scene.
    pub fn build(self) -> Scene {
        Scene {
            width: self.width,
            height: self.height,
            objects: self.objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_scene_with_clipped_objects() {
        let scene = SceneBuilder::new(72, 48)
            .object(ShapeKind::Circle, ColorName::Red, -5.0, -5.0, 20.0, 20.0)
            .object_centered(ShapeKind::Square, ColorName::Blue, 36.0, 24.0, 10.0, 10.0)
            .build();
        assert_eq!(scene.len(), 2);
        // first object clipped to canvas
        assert!(scene.objects[0].bbox.x >= 0.0 && scene.objects[0].bbox.y >= 0.0);
        // second object centred
        assert_eq!(scene.objects[1].bbox.center(), (36.0, 24.0));
    }

    #[test]
    fn built_scene_renders() {
        let scene = SceneBuilder::new(32, 24)
            .object(ShapeKind::Diamond, ColorName::Cyan, 8.0, 6.0, 12.0, 12.0)
            .build();
        let img = scene.render();
        assert_eq!(img.dims(), &[5, 24, 32]);
        // the diamond's centre pixel is cyan: low red, high green/blue
        assert!(img.at(&[1, 12, 14]) > 0.7);
        assert!(img.at(&[0, 12, 14]) < 0.3);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_rejected() {
        SceneBuilder::new(0, 48);
    }
}
