//! Referring-expression generation.
//!
//! Queries are built in two stages: first a structured [`QuerySpec`] with
//! formal semantics ([`QuerySpec::matches`]), checked to identify its target
//! *uniquely* within the scene; then a natural-language wording sampled from
//! templates. This mirrors the three benchmarks (§4.1):
//!
//! * [`QueryStyle::Spatial`] (SynthRef ≈ RefCOCO): short phrases, location
//!   words allowed ("left red circle").
//! * [`QueryStyle::AttributeOnly`] (SynthRef+ ≈ RefCOCO+): no location
//!   words; colour/size/category only.
//! * [`QueryStyle::Relational`] (SynthRefG ≈ RefCOCOg): full sentences with
//!   relations to a second object ("the big red circle that is above the
//!   blue square in the picture").

use crate::{ColorName, Scene, ShapeKind, SizeClass};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which benchmark's query distribution to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryStyle {
    /// Short phrases, location words allowed (RefCOCO-like).
    Spatial,
    /// Short phrases, *no* location words (RefCOCO+-like).
    AttributeOnly,
    /// Longer relational sentences (RefCOCOg-like).
    Relational,
}

/// A side of the image / a spatial relation axis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Dir {
    Left,
    Right,
    Top,
    Bottom,
}

/// Attribute constraints: category plus optional colour and size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct AttrSpec {
    kind: ShapeKind,
    color: Option<ColorName>,
    size: Option<SizeClass>,
}

impl AttrSpec {
    fn matches(&self, scene: &Scene, idx: usize) -> bool {
        let o = &scene.objects[idx];
        o.kind == self.kind
            && self.color.is_none_or(|c| o.color == c)
            && self
                .size
                .is_none_or(|s| o.size_class(scene.median_area()) == s)
    }

    fn words(&self, out: &mut Vec<&'static str>) {
        if let Some(s) = self.size {
            out.push(s.word());
        }
        if let Some(c) = self.color {
            out.push(c.word());
        }
        out.push(self.kind.word());
    }
}

/// The formal meaning of a query. `matches` defines exactly which objects a
/// query describes, so generation can guarantee a unique referent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    attrs: AttrSpec,
    qualifier: Qualifier,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Qualifier {
    /// Attributes alone.
    None,
    /// The extreme object in `dir` among those matching the attributes.
    Extreme(Dir),
    /// Related to the (unique) anchor object: target lies in `dir` of it.
    Rel { dir: Dir, anchor: AttrSpec },
}

/// Margin (pixels) a relation must hold by at generation time.
const GEN_MARGIN: f64 = 4.0;

fn rel_holds(scene: &Scene, idx: usize, anchor_idx: usize, dir: Dir, margin: f64) -> bool {
    let (tx, ty) = scene.objects[idx].bbox.center();
    let (ax, ay) = scene.objects[anchor_idx].bbox.center();
    match dir {
        Dir::Left => tx <= ax - margin,
        Dir::Right => tx >= ax + margin,
        Dir::Top => ty <= ay - margin,
        Dir::Bottom => ty >= ay + margin,
    }
}

impl QuerySpec {
    /// True when object `idx` satisfies this query in `scene`.
    pub fn matches(&self, scene: &Scene, idx: usize) -> bool {
        if !self.attrs.matches(scene, idx) {
            return false;
        }
        match &self.qualifier {
            Qualifier::None => true,
            Qualifier::Extreme(dir) => {
                let key = |i: usize| {
                    let (cx, cy) = scene.objects[i].bbox.center();
                    match dir {
                        Dir::Left => cx,
                        Dir::Right => -cx,
                        Dir::Top => cy,
                        Dir::Bottom => -cy,
                    }
                };
                (0..scene.len())
                    .filter(|&i| i != idx && self.attrs.matches(scene, i))
                    .all(|i| key(idx) < key(i))
            }
            Qualifier::Rel { dir, anchor } => {
                // the anchor phrase must denote a unique object
                let anchors: Vec<usize> = (0..scene.len())
                    .filter(|&i| anchor.matches(scene, i))
                    .collect();
                match anchors.as_slice() {
                    [a] if *a != idx => rel_holds(scene, idx, *a, *dir, 0.0),
                    _ => false,
                }
            }
        }
    }

    /// The indices this query describes.
    pub fn referents(&self, scene: &Scene) -> Vec<usize> {
        (0..scene.len())
            .filter(|&i| self.matches(scene, i))
            .collect()
    }

    /// True when exactly `idx` matches.
    pub fn unique_for(&self, scene: &Scene, idx: usize) -> bool {
        self.referents(scene) == [idx]
    }
}

/// Referring-expression generator for one [`QueryStyle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryGen {
    style: QueryStyle,
}

impl QueryGen {
    /// Creates a generator for `style`.
    pub fn new(style: QueryStyle) -> Self {
        QueryGen { style }
    }

    /// The style this generator imitates.
    pub fn style(&self) -> QueryStyle {
        self.style
    }

    /// Produces a query uniquely identifying `target_idx`, or `None` when
    /// the style's vocabulary cannot disambiguate it (callers then pick a
    /// different target or scene).
    ///
    /// # Panics
    /// Panics if `target_idx` is out of range.
    pub fn generate(
        &self,
        scene: &Scene,
        target_idx: usize,
        rng: &mut impl Rng,
    ) -> Option<(QuerySpec, String)> {
        assert!(target_idx < scene.len(), "target index out of range");
        let specs = self.candidate_specs(scene, target_idx);
        let valid: Vec<QuerySpec> = specs
            .into_iter()
            .filter(|s| s.unique_for(scene, target_idx))
            .collect();
        let spec = valid.choose(rng)?.clone();
        let sentence = self.word(&spec, rng);
        Some((spec, sentence))
    }

    fn candidate_specs(&self, scene: &Scene, idx: usize) -> Vec<QuerySpec> {
        let o = &scene.objects[idx];
        let size = o.size_class(scene.median_area());
        let kind_only = AttrSpec {
            kind: o.kind,
            color: None,
            size: None,
        };
        let color_kind = AttrSpec {
            kind: o.kind,
            color: Some(o.color),
            size: None,
        };
        let full = AttrSpec {
            kind: o.kind,
            color: Some(o.color),
            size: Some(size),
        };
        let mut specs = vec![
            QuerySpec {
                attrs: kind_only,
                qualifier: Qualifier::None,
            },
            QuerySpec {
                attrs: color_kind,
                qualifier: Qualifier::None,
            },
            QuerySpec {
                attrs: full,
                qualifier: Qualifier::None,
            },
        ];
        match self.style {
            QueryStyle::AttributeOnly => specs,
            QueryStyle::Spatial => {
                for dir in [Dir::Left, Dir::Right, Dir::Top, Dir::Bottom] {
                    specs.push(QuerySpec {
                        attrs: kind_only,
                        qualifier: Qualifier::Extreme(dir),
                    });
                    specs.push(QuerySpec {
                        attrs: color_kind,
                        qualifier: Qualifier::Extreme(dir),
                    });
                }
                specs
            }
            QueryStyle::Relational => {
                // relate to any object that is itself colour+kind unique
                for (ai, a) in scene.objects.iter().enumerate() {
                    if ai == idx {
                        continue;
                    }
                    let anchor = AttrSpec {
                        kind: a.kind,
                        color: Some(a.color),
                        size: None,
                    };
                    let unique_anchor = (0..scene.len())
                        .filter(|&i| anchor.matches(scene, i))
                        .count()
                        == 1;
                    if !unique_anchor {
                        continue;
                    }
                    for dir in [Dir::Left, Dir::Right, Dir::Top, Dir::Bottom] {
                        if rel_holds(scene, idx, ai, dir, GEN_MARGIN) {
                            for attrs in [color_kind, full] {
                                specs.push(QuerySpec {
                                    attrs,
                                    qualifier: Qualifier::Rel { dir, anchor },
                                });
                            }
                        }
                    }
                }
                specs
            }
        }
    }

    fn word(&self, spec: &QuerySpec, rng: &mut impl Rng) -> String {
        let mut attr_words = Vec::new();
        spec.attrs.words(&mut attr_words);
        let attrs = attr_words.join(" ");
        match (&spec.qualifier, self.style) {
            (Qualifier::None, QueryStyle::Relational) => {
                // RefCOCOg queries are full sentences even when attributes
                // suffice — pad with sentence templates
                let templates = [
                    format!("the {attrs} that you can see in the picture"),
                    format!("there is a {attrs} in the image"),
                    format!("the {attrs} shown somewhere in this scene"),
                ];
                templates.choose(rng).expect("non-empty").clone()
            }
            (Qualifier::None, _) => {
                let templates = [attrs.clone(), format!("the {attrs}")];
                templates.choose(rng).expect("non-empty").clone()
            }
            (Qualifier::Extreme(dir), _) => {
                let d = match dir {
                    Dir::Left => "left",
                    Dir::Right => "right",
                    Dir::Top => "top",
                    Dir::Bottom => "bottom",
                };
                let templates = [
                    format!("{d} {attrs}"),
                    format!("{d} most {attrs}"),
                    format!("the {attrs} on the {d}"),
                ];
                templates.choose(rng).expect("non-empty").clone()
            }
            (Qualifier::Rel { dir, anchor }, _) => {
                let mut anchor_words = Vec::new();
                anchor.words(&mut anchor_words);
                let aw = anchor_words.join(" ");
                let r = match dir {
                    Dir::Left => "to the left of",
                    Dir::Right => "to the right of",
                    Dir::Top => "above",
                    Dir::Bottom => "below",
                };
                let templates = [
                    format!("the {attrs} that is {r} the {aw}"),
                    format!("the {attrs} located {r} the {aw} in the picture"),
                    format!("find the {attrs} sitting {r} the {aw}"),
                ];
                templates.choose(rng).expect("non-empty").clone()
            }
        }
    }
}

/// Words that [`QueryStyle::AttributeOnly`] must never emit (§4.1: RefCOCO+
/// queries contain no location words).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) const LOCATION_WORDS: [&str; 8] = [
    "left", "right", "top", "bottom", "above", "below", "most", "of",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scenes(n: usize, seed: u64) -> Vec<Scene> {
        let cfg = SceneConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Scene::generate(&cfg, &mut rng)).collect()
    }

    #[test]
    fn generated_queries_are_unique_referents() {
        let mut rng = StdRng::seed_from_u64(1);
        for style in [
            QueryStyle::Spatial,
            QueryStyle::AttributeOnly,
            QueryStyle::Relational,
        ] {
            let gen = QueryGen::new(style);
            let mut produced = 0;
            for scene in scenes(40, 7) {
                for idx in 0..scene.len() {
                    if let Some((spec, sentence)) = gen.generate(&scene, idx, &mut rng) {
                        produced += 1;
                        assert!(
                            spec.unique_for(&scene, idx),
                            "{style:?}: '{sentence}' ambiguous in {scene:?}"
                        );
                        assert!(!sentence.is_empty());
                    }
                }
            }
            assert!(produced > 50, "{style:?} produced only {produced} queries");
        }
    }

    #[test]
    fn attribute_only_never_uses_location_words() {
        let gen = QueryGen::new(QueryStyle::AttributeOnly);
        let mut rng = StdRng::seed_from_u64(2);
        for scene in scenes(40, 8) {
            for idx in 0..scene.len() {
                if let Some((_, s)) = gen.generate(&scene, idx, &mut rng) {
                    for w in s.split_whitespace() {
                        assert!(
                            !LOCATION_WORDS.contains(&w),
                            "location word '{w}' in attribute-only query '{s}'"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn relational_queries_are_longer() {
        let mut rng = StdRng::seed_from_u64(3);
        let avg_len = |style| {
            let gen = QueryGen::new(style);
            let mut total = 0usize;
            let mut count = 0usize;
            for scene in scenes(60, 9) {
                for idx in 0..scene.len() {
                    if let Some((_, s)) =
                        gen.generate(&scene, idx, &mut StdRng::seed_from_u64(idx as u64))
                    {
                        total += s.split_whitespace().count();
                        count += 1;
                    }
                }
            }
            total as f64 / count as f64
        };
        let _ = &mut rng;
        let spatial = avg_len(QueryStyle::Spatial);
        let relational = avg_len(QueryStyle::Relational);
        assert!(
            relational > spatial + 2.0,
            "relational {relational} vs spatial {spatial}"
        );
        assert!(spatial < 5.5, "spatial queries too long: {spatial}");
    }

    #[test]
    fn extreme_spec_semantics() {
        use crate::SceneObject;
        use yollo_detect::BBox;
        let mk = |x: f64| SceneObject {
            kind: ShapeKind::Circle,
            color: ColorName::Red,
            bbox: BBox::new(x, 10.0, 10.0, 10.0),
        };
        let scene = Scene {
            width: 72,
            height: 48,
            objects: vec![mk(0.0), mk(30.0), mk(60.0)],
        };
        let spec = QuerySpec {
            attrs: AttrSpec {
                kind: ShapeKind::Circle,
                color: Some(ColorName::Red),
                size: None,
            },
            qualifier: Qualifier::Extreme(Dir::Left),
        };
        assert_eq!(spec.referents(&scene), vec![0]);
        let spec_r = QuerySpec {
            qualifier: Qualifier::Extreme(Dir::Right),
            ..spec
        };
        assert_eq!(spec_r.referents(&scene), vec![2]);
    }

    #[test]
    fn rel_spec_requires_unique_anchor() {
        use crate::SceneObject;
        use yollo_detect::BBox;
        let obj = |x: f64, kind, color| SceneObject {
            kind,
            color,
            bbox: BBox::new(x, 10.0, 10.0, 10.0),
        };
        // two blue squares → anchor "blue square" is ambiguous → no match
        let scene = Scene {
            width: 72,
            height: 48,
            objects: vec![
                obj(0.0, ShapeKind::Circle, ColorName::Red),
                obj(30.0, ShapeKind::Square, ColorName::Blue),
                obj(60.0, ShapeKind::Square, ColorName::Blue),
            ],
        };
        let spec = QuerySpec {
            attrs: AttrSpec {
                kind: ShapeKind::Circle,
                color: Some(ColorName::Red),
                size: None,
            },
            qualifier: Qualifier::Rel {
                dir: Dir::Left,
                anchor: AttrSpec {
                    kind: ShapeKind::Square,
                    color: Some(ColorName::Blue),
                    size: None,
                },
            },
        };
        assert!(spec.referents(&scene).is_empty());
    }

    #[test]
    fn determinism_under_seed() {
        let gen = QueryGen::new(QueryStyle::Spatial);
        let scene = &scenes(1, 11)[0];
        let a = gen.generate(scene, 0, &mut StdRng::seed_from_u64(5));
        let b = gen.generate(scene, 0, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
