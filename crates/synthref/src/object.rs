use serde::{Deserialize, Serialize};
use yollo_detect::BBox;

/// Object categories. [`ShapeKind::Circle`] is the privileged "agent"
/// category: scenes whose *target* is a circle go to the testA split, the
/// way images containing people define RefCOCO's TestA (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeKind {
    /// Filled disc (the "person"-analogue agent category).
    Circle,
    /// Filled axis-aligned square.
    Square,
    /// Filled upward triangle.
    Triangle,
    /// Plus-shaped cross.
    Cross,
    /// Filled rotated square.
    Diamond,
}

impl ShapeKind {
    /// All categories, in a stable order.
    pub const ALL: [ShapeKind; 5] = [
        ShapeKind::Circle,
        ShapeKind::Square,
        ShapeKind::Triangle,
        ShapeKind::Cross,
        ShapeKind::Diamond,
    ];

    /// The word used in queries.
    pub fn word(self) -> &'static str {
        match self {
            ShapeKind::Circle => "circle",
            ShapeKind::Square => "square",
            ShapeKind::Triangle => "triangle",
            ShapeKind::Cross => "cross",
            ShapeKind::Diamond => "diamond",
        }
    }
}

/// Object colours, each with a distinct RGB rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColorName {
    /// Pure red.
    Red,
    /// Pure green.
    Green,
    /// Pure blue.
    Blue,
    /// Red + green.
    Yellow,
    /// Red + blue.
    Magenta,
    /// Green + blue.
    Cyan,
    /// Red + half green.
    Orange,
    /// All channels high.
    White,
}

impl ColorName {
    /// All colours, in a stable order.
    pub const ALL: [ColorName; 8] = [
        ColorName::Red,
        ColorName::Green,
        ColorName::Blue,
        ColorName::Yellow,
        ColorName::Magenta,
        ColorName::Cyan,
        ColorName::Orange,
        ColorName::White,
    ];

    /// The word used in queries.
    pub fn word(self) -> &'static str {
        match self {
            ColorName::Red => "red",
            ColorName::Green => "green",
            ColorName::Blue => "blue",
            ColorName::Yellow => "yellow",
            ColorName::Magenta => "magenta",
            ColorName::Cyan => "cyan",
            ColorName::Orange => "orange",
            ColorName::White => "white",
        }
    }

    /// RGB rendering in `[0, 1]`.
    pub fn rgb(self) -> [f64; 3] {
        match self {
            ColorName::Red => [0.9, 0.1, 0.1],
            ColorName::Green => [0.1, 0.9, 0.1],
            ColorName::Blue => [0.1, 0.1, 0.9],
            ColorName::Yellow => [0.9, 0.9, 0.1],
            ColorName::Magenta => [0.9, 0.1, 0.9],
            ColorName::Cyan => [0.1, 0.9, 0.9],
            ColorName::Orange => [0.9, 0.5, 0.1],
            ColorName::White => [0.95, 0.95, 0.95],
        }
    }
}

/// Coarse size class, derived from box area relative to the scene's
/// median object area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Below the median area.
    Small,
    /// At or above the median area.
    Large,
}

impl SizeClass {
    /// The word used in queries.
    pub fn word(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Large => "big",
        }
    }
}

/// One object in a [`Scene`](crate::Scene).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Category.
    pub kind: ShapeKind,
    /// Colour.
    pub color: ColorName,
    /// Bounding box in image pixels.
    pub bbox: BBox,
}

impl SceneObject {
    /// Size class relative to a reference area (the scene median).
    pub fn size_class(&self, median_area: f64) -> SizeClass {
        if self.bbox.area() < median_area {
            SizeClass::Small
        } else {
            SizeClass::Large
        }
    }

    /// True when kind and colour both match.
    pub fn same_attrs(&self, other: &SceneObject) -> bool {
        self.kind == other.kind && self.color == other.color
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_lowercase_singletons() {
        for k in ShapeKind::ALL {
            assert!(k.word().chars().all(|c| c.is_ascii_lowercase()));
        }
        for c in ColorName::ALL {
            assert!(c.word().chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn rgb_values_are_unit_range_and_distinct() {
        let mut seen = Vec::new();
        for c in ColorName::ALL {
            let rgb = c.rgb();
            assert!(rgb.iter().all(|v| (0.0..=1.0).contains(v)));
            assert!(!seen.contains(&rgb), "duplicate rgb for {c:?}");
            seen.push(rgb);
        }
    }

    #[test]
    fn size_class_splits_on_median() {
        let o = SceneObject {
            kind: ShapeKind::Square,
            color: ColorName::Red,
            bbox: BBox::new(0.0, 0.0, 4.0, 4.0),
        };
        assert_eq!(o.size_class(20.0), SizeClass::Small);
        assert_eq!(o.size_class(16.0), SizeClass::Large);
    }
}
