//! Rasterisation of [`Scene`]s into input tensors, and PPM export for the
//! qualitative figures (Figure 5).

use crate::{Scene, SceneObject, ShapeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Write};
use std::path::Path;
use yollo_detect::BBox;
use yollo_tensor::Tensor;

/// Number of channels produced by [`Scene::render`]: RGB plus two
/// normalised coordinate channels.
///
/// The coordinate channels are this reproduction's stand-in for the
/// implicit positional information a deep pretrained CNN carries (padding
/// artefacts, large receptive fields); without them, spatial words like
/// "left" would be unlearnable from 5 shallow conv layers.
pub const RENDER_CHANNELS: usize = 5;

impl Scene {
    /// Rasterises the scene into a `[5, H, W]` tensor: RGB in `[0,1]` over
    /// a dark background with seeded pixel noise, then x/y coordinate
    /// channels in `[-1, 1]`.
    pub fn render(&self) -> Tensor {
        let (w, h) = (self.width, self.height);
        let mut data = vec![0.0; RENDER_CHANNELS * h * w];
        // deterministic per-scene noise so the same sample always renders
        // identically (keyed on object layout)
        let key = self.objects.iter().fold(0u64, |acc, o| {
            acc.wrapping_mul(1_000_003)
                .wrapping_add((o.bbox.x * 7.0 + o.bbox.y * 13.0 + o.bbox.w) as u64)
        });
        let mut rng = StdRng::seed_from_u64(key);
        for c in 0..3 {
            for p in 0..h * w {
                data[c * h * w + p] = 0.12 + 0.02 * rng.gen::<f64>();
            }
        }
        for obj in &self.objects {
            let rgb = obj.color.rgb();
            for py in 0..h {
                for px in 0..w {
                    if covers(obj, px as f64 + 0.5, py as f64 + 0.5) {
                        for c in 0..3 {
                            data[c * h * w + py * w + px] = rgb[c];
                        }
                    }
                }
            }
        }
        // coordinate channels
        for py in 0..h {
            for px in 0..w {
                data[3 * h * w + py * w + px] = 2.0 * (px as f64 + 0.5) / w as f64 - 1.0;
                data[4 * h * w + py * w + px] = 2.0 * (py as f64 + 0.5) / h as f64 - 1.0;
            }
        }
        Tensor::from_vec(data, &[RENDER_CHANNELS, h, w])
    }
}

/// True when pixel centre `(px, py)` is inside the object's shape.
fn covers(obj: &SceneObject, px: f64, py: f64) -> bool {
    let b = &obj.bbox;
    if !b.contains_point(px, py) {
        return false;
    }
    let (cx, cy) = b.center();
    // normalised offsets in [-1, 1]
    let dx = (px - cx) / (b.w / 2.0);
    let dy = (py - cy) / (b.h / 2.0);
    match obj.kind {
        ShapeKind::Square => true,
        ShapeKind::Circle => dx * dx + dy * dy <= 1.0,
        ShapeKind::Diamond => dx.abs() + dy.abs() <= 1.0,
        ShapeKind::Cross => dx.abs() <= 0.34 || dy.abs() <= 0.34,
        // upward triangle: full width at the bottom, apex at the top
        ShapeKind::Triangle => {
            let t = (dy + 1.0) / 2.0; // 0 at top, 1 at bottom
            dx.abs() <= t
        }
    }
}

/// A drawing overlaid on a PPM export.
#[derive(Debug, Clone)]
pub enum Overlay {
    /// An attention heat map over the feature grid `[fh, fw]`, blended in
    /// red (Figure 5's highlighted areas).
    Heat {
        /// Per-cell weights (any non-negative scale; normalised internally).
        values: Vec<f64>,
        /// Feature-grid height.
        fh: usize,
        /// Feature-grid width.
        fw: usize,
    },
    /// A box outline in the given RGB colour (Figure 5's red prediction box).
    Box {
        /// The box, in image pixels.
        bbox: BBox,
        /// Outline colour, `[0,1]` RGB.
        rgb: [f64; 3],
    },
}

/// Writes the scene (plus overlays) as a binary PPM image.
///
/// # Errors
/// Returns any I/O error from writing `path`.
pub fn render_ppm(scene: &Scene, overlays: &[Overlay], path: impl AsRef<Path>) -> io::Result<()> {
    let (w, h) = (scene.width, scene.height);
    let img = scene.render();
    let mut rgb: Vec<f64> = Vec::with_capacity(3 * h * w);
    rgb.extend_from_slice(&img.as_slice()[..3 * h * w]);
    for ov in overlays {
        match ov {
            Overlay::Heat { values, fh, fw } => {
                let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
                for py in 0..h {
                    for px in 0..w {
                        let fy = (py * fh / h).min(fh - 1);
                        let fx = (px * fw / w).min(fw - 1);
                        let a = (values[fy * fw + fx] / max).clamp(0.0, 1.0) * 0.6;
                        let p = py * w + px;
                        rgb[p] = rgb[p] * (1.0 - a) + a; // toward red
                        rgb[h * w + p] *= 1.0 - a;
                        rgb[2 * h * w + p] *= 1.0 - a;
                    }
                }
            }
            Overlay::Box { bbox, rgb: col } => {
                let (x1, y1) = (bbox.x.round() as isize, bbox.y.round() as isize);
                let (x2, y2) = (bbox.x2().round() as isize, bbox.y2().round() as isize);
                for py in y1..=y2 {
                    for px in x1..=x2 {
                        let edge = py == y1 || py == y2 || px == x1 || px == x2;
                        if edge && px >= 0 && py >= 0 && (px as usize) < w && (py as usize) < h {
                            let p = py as usize * w + px as usize;
                            for c in 0..3 {
                                rgb[c * h * w + p] = col[c];
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out = Vec::with_capacity(3 * h * w + 32);
    write!(out, "P6\n{w} {h}\n255\n")?;
    for p in 0..h * w {
        for c in 0..3 {
            out.push((rgb[c * h * w + p].clamp(0.0, 1.0) * 255.0) as u8);
        }
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColorName, SceneConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_object_scene(kind: ShapeKind) -> Scene {
        Scene {
            width: 32,
            height: 24,
            objects: vec![SceneObject {
                kind,
                color: ColorName::Red,
                bbox: BBox::new(8.0, 4.0, 16.0, 16.0),
            }],
        }
    }

    #[test]
    fn render_shape_and_channels() {
        let s = one_object_scene(ShapeKind::Square);
        let t = s.render();
        assert_eq!(t.dims(), &[5, 24, 32]);
        // centre pixel is red
        assert!(t.at(&[0, 12, 16]) > 0.8);
        assert!(t.at(&[1, 12, 16]) < 0.3);
        // background pixel is dark
        assert!(t.at(&[0, 1, 1]) < 0.2);
        // coordinate channels span [-1, 1]
        assert!(t.at(&[3, 0, 0]) < -0.9);
        assert!(t.at(&[3, 0, 31]) > 0.9);
        assert!(t.at(&[4, 23, 0]) > 0.9);
    }

    #[test]
    fn circle_has_empty_corners_square_does_not() {
        let sq = one_object_scene(ShapeKind::Square).render();
        let ci = one_object_scene(ShapeKind::Circle).render();
        // corner of the bbox: inside square, outside circle
        assert!(sq.at(&[0, 5, 9]) > 0.8);
        assert!(ci.at(&[0, 5, 9]) < 0.3);
    }

    #[test]
    fn triangle_is_wider_at_bottom() {
        let tr = one_object_scene(ShapeKind::Triangle).render();
        // near the top of the box, off-centre x is background
        assert!(tr.at(&[0, 6, 10]) < 0.3);
        // near the bottom, same x is filled
        assert!(tr.at(&[0, 18, 10]) > 0.8);
    }

    #[test]
    fn render_is_deterministic() {
        let cfg = SceneConfig::default();
        let s = Scene::generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(s.render(), s.render());
    }

    #[test]
    fn ppm_export_writes_valid_header() {
        let s = one_object_scene(ShapeKind::Circle);
        let dir = std::env::temp_dir().join("yollo_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.ppm");
        render_ppm(
            &s,
            &[
                Overlay::Heat {
                    values: vec![1.0; 12],
                    fh: 3,
                    fw: 4,
                },
                Overlay::Box {
                    bbox: BBox::new(8.0, 4.0, 16.0, 16.0),
                    rgb: [1.0, 0.0, 0.0],
                },
            ],
            &path,
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P6\n32 24\n255\n"));
        assert_eq!(bytes.len(), 13 + 3 * 32 * 24);
        std::fs::remove_file(path).ok();
    }
}
