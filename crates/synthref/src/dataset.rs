use crate::{QueryGen, QueryStyle, Scene, SceneConfig, ShapeKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use yollo_detect::BBox;
use yollo_text::{tokenize, Vocab};

/// Which benchmark a generated dataset imitates (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// RefCOCO-like: short queries, location words allowed, ~3.9 same-kind
    /// objects.
    SynthRef,
    /// RefCOCO+-like: short queries, *no* location words.
    SynthRefPlus,
    /// RefCOCOg-like: longer relational sentences, ~1.6 same-kind objects.
    SynthRefG,
}

impl DatasetKind {
    /// All kinds, in paper order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::SynthRef,
        DatasetKind::SynthRefPlus,
        DatasetKind::SynthRefG,
    ];

    /// The query grammar this dataset uses.
    pub fn query_style(self) -> QueryStyle {
        match self {
            DatasetKind::SynthRef => QueryStyle::Spatial,
            DatasetKind::SynthRefPlus => QueryStyle::AttributeOnly,
            DatasetKind::SynthRefG => QueryStyle::Relational,
        }
    }

    /// The scene distribution this dataset draws from.
    pub fn scene_config(self) -> SceneConfig {
        match self {
            // RefCOCO(+): ~3.9 objects of the target's type
            DatasetKind::SynthRef | DatasetKind::SynthRefPlus => SceneConfig::default(),
            // RefCOCOg: ~1.6 objects of the target's type
            DatasetKind::SynthRefG => SceneConfig {
                same_kind_bias: 0.45,
                ..SceneConfig::default()
            },
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::SynthRef => "SynthRef",
            DatasetKind::SynthRefPlus => "SynthRef+",
            DatasetKind::SynthRefG => "SynthRefG",
        }
    }
}

/// Dataset splits, mirroring the paper: testA holds samples whose *target*
/// is the agent category (circle ↔ person), testB the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Training samples.
    Train,
    /// Validation samples.
    Val,
    /// Agent-category targets.
    TestA,
    /// Non-agent targets.
    TestB,
}

impl Split {
    /// All splits in report order.
    pub const ALL: [Split; 4] = [Split::Train, Split::Val, Split::TestA, Split::TestB];

    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Split::Train => "train",
            Split::Val => "val",
            Split::TestA => "testA",
            Split::TestB => "testB",
        }
    }
}

/// Generation parameters for a [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Which benchmark to imitate.
    pub kind: DatasetKind,
    /// Scenes in the training split.
    pub train_images: usize,
    /// Scenes in the validation split.
    pub val_images: usize,
    /// Scenes in each of testA and testB.
    pub test_images: usize,
    /// Distinct target objects referenced per scene (≈2.5 in RefCOCO).
    pub targets_per_image: usize,
    /// Query wordings generated per target (≈2.8 in RefCOCO).
    pub queries_per_target: usize,
    /// Master seed; every split derives its own stream from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// A laptop-scale preset used by the experiment binaries.
    pub fn standard(kind: DatasetKind, seed: u64) -> Self {
        DatasetConfig {
            kind,
            train_images: 300,
            val_images: 60,
            test_images: 40,
            targets_per_image: 2,
            queries_per_target: 2,
            seed,
        }
    }

    /// A minimal preset for unit tests.
    pub fn tiny(kind: DatasetKind, seed: u64) -> Self {
        DatasetConfig {
            kind,
            train_images: 12,
            val_images: 4,
            test_images: 3,
            targets_per_image: 1,
            queries_per_target: 1,
            seed,
        }
    }
}

/// One grounding sample: a scene, a target object and a query describing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundingSample {
    /// Index into [`Dataset::scenes`].
    pub scene_idx: usize,
    /// Index of the target within the scene's object list.
    pub target_idx: usize,
    /// The natural-language query.
    pub sentence: String,
    /// The tokenised query.
    pub tokens: Vec<String>,
}

/// Counts reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of distinct scenes ("# images").
    pub images: usize,
    /// Number of queries ("# queries").
    pub queries: usize,
    /// Number of distinct (scene, target) pairs ("# targets").
    pub targets: usize,
    /// Mean query length in words.
    pub avg_query_len: f64,
}

/// A fully-materialised synthetic referring-expression dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    config: DatasetConfig,
    scenes: Vec<Scene>,
    train: Vec<GroundingSample>,
    val: Vec<GroundingSample>,
    test_a: Vec<GroundingSample>,
    test_b: Vec<GroundingSample>,
}

impl Dataset {
    /// Generates the dataset described by `config`. Deterministic: the same
    /// config yields the same dataset.
    pub fn generate(config: DatasetConfig) -> Dataset {
        let mut ds = Dataset {
            config,
            scenes: Vec::new(),
            train: Vec::new(),
            val: Vec::new(),
            test_a: Vec::new(),
            test_b: Vec::new(),
        };
        let gen = QueryGen::new(config.kind.query_style());
        let scene_cfg = config.kind.scene_config();
        let jobs: [(Split, usize, u64); 4] = [
            (Split::Train, config.train_images, 1),
            (Split::Val, config.val_images, 2),
            (Split::TestA, config.test_images, 3),
            (Split::TestB, config.test_images, 4),
        ];
        for (split, n_images, stream) in jobs {
            let mut rng =
                StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream));
            let mut made = 0;
            let mut guard = 0;
            while made < n_images && guard < n_images * 50 {
                guard += 1;
                let scene = Scene::generate(&scene_cfg, &mut rng);
                let samples = Self::samples_for_scene(&gen, &scene, split, &config, &mut rng);
                if samples.is_empty() {
                    continue;
                }
                let scene_idx = ds.scenes.len();
                ds.scenes.push(scene);
                let bucket = match split {
                    Split::Train => &mut ds.train,
                    Split::Val => &mut ds.val,
                    Split::TestA => &mut ds.test_a,
                    Split::TestB => &mut ds.test_b,
                };
                for (target_idx, sentence) in samples {
                    let tokens = tokenize(&sentence);
                    bucket.push(GroundingSample {
                        scene_idx,
                        target_idx,
                        sentence,
                        tokens,
                    });
                }
                made += 1;
            }
            assert!(
                made == n_images,
                "could not generate {n_images} scenes for {split:?} (made {made})"
            );
        }
        ds
    }

    fn samples_for_scene(
        gen: &QueryGen,
        scene: &Scene,
        split: Split,
        config: &DatasetConfig,
        rng: &mut StdRng,
    ) -> Vec<(usize, String)> {
        // candidate targets, filtered by the split's category rule
        let mut candidates: Vec<usize> = (0..scene.len())
            .filter(|&i| match split {
                Split::TestA => scene.objects[i].kind == ShapeKind::Circle,
                Split::TestB => scene.objects[i].kind != ShapeKind::Circle,
                _ => true,
            })
            .collect();
        candidates.shuffle(rng);
        let mut out = Vec::new();
        let mut used = 0;
        for idx in candidates {
            if used >= config.targets_per_image {
                break;
            }
            let mut queries = Vec::new();
            for _ in 0..config.queries_per_target {
                if let Some((_, sentence)) = gen.generate(scene, idx, rng) {
                    if !queries.contains(&sentence) {
                        queries.push(sentence);
                    }
                }
            }
            if queries.is_empty() {
                continue;
            }
            used += 1;
            out.extend(queries.into_iter().map(|q| (idx, q)));
        }
        out
    }

    /// The generation config.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// All scenes, shared across splits' samples.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Samples of one split.
    pub fn samples(&self, split: Split) -> &[GroundingSample] {
        match split {
            Split::Train => &self.train,
            Split::Val => &self.val,
            Split::TestA => &self.test_a,
            Split::TestB => &self.test_b,
        }
    }

    /// The scene a sample lives in.
    pub fn scene_of(&self, sample: &GroundingSample) -> &Scene {
        &self.scenes[sample.scene_idx]
    }

    /// Ground-truth box of a sample's target, in image pixels.
    pub fn target_bbox(&self, sample: &GroundingSample) -> BBox {
        self.scene_of(sample).objects[sample.target_idx].bbox
    }

    /// Builds the vocabulary from the *training* queries (as the paper does;
    /// val/test out-of-vocabulary words fall back to UNK).
    pub fn build_vocab(&self) -> Vocab {
        Vocab::build(
            self.train
                .iter()
                .map(|s| s.tokens.iter().map(String::as_str)),
            1,
        )
    }

    /// Longest query (in tokens) across all splits — queries are padded to
    /// this length, following §4.2.
    pub fn max_query_len(&self) -> usize {
        Split::ALL
            .iter()
            .flat_map(|s| self.samples(*s))
            .map(|s| s.tokens.len())
            .max()
            .unwrap_or(0)
    }

    /// Table-1 statistics over all splits.
    pub fn stats(&self) -> DatasetStats {
        let all: Vec<&GroundingSample> = Split::ALL.iter().flat_map(|s| self.samples(*s)).collect();
        let mut targets: Vec<(usize, usize)> =
            all.iter().map(|s| (s.scene_idx, s.target_idx)).collect();
        targets.sort_unstable();
        targets.dedup();
        let total_len: usize = all.iter().map(|s| s.tokens.len()).sum();
        DatasetStats {
            images: self.scenes.len(),
            queries: all.len(),
            targets: targets.len(),
            avg_query_len: if all.is_empty() {
                0.0
            } else {
                total_len as f64 / all.len() as f64
            },
        }
    }

    /// Draws a random training mini-batch of sample indices.
    pub fn sample_batch(&self, batch: usize, rng: &mut impl Rng) -> Vec<&GroundingSample> {
        (0..batch)
            .map(|_| &self.train[rng.gen_range(0..self.train.len())])
            .collect()
    }

    /// Saves the full dataset (scenes + all splits) as JSON, so a generated
    /// benchmark can be shipped or archived byte-exactly.
    ///
    /// # Errors
    /// Returns any I/O or serialisation error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a dataset saved by [`Dataset::save`].
    ///
    /// # Errors
    /// Returns I/O or parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Dataset> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_have_requested_image_counts() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 0));
        let cfg = ds.config();
        assert_eq!(
            ds.scenes().len(),
            cfg.train_images + cfg.val_images + 2 * cfg.test_images
        );
        assert!(!ds.samples(Split::Train).is_empty());
        assert!(!ds.samples(Split::TestA).is_empty());
    }

    #[test]
    fn test_a_targets_are_circles_test_b_are_not() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 1));
        for s in ds.samples(Split::TestA) {
            assert_eq!(ds.scene_of(s).objects[s.target_idx].kind, ShapeKind::Circle);
        }
        for s in ds.samples(Split::TestB) {
            assert_ne!(ds.scene_of(s).objects[s.target_idx].kind, ShapeKind::Circle);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRefG, 5));
        let b = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRefG, 5));
        assert_eq!(a.samples(Split::Train), b.samples(Split::Train));
        assert_eq!(a.scenes(), b.scenes());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 1));
        let b = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 2));
        assert_ne!(a.scenes(), b.scenes());
    }

    #[test]
    fn vocab_covers_training_tokens() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRefPlus, 3));
        let vocab = ds.build_vocab();
        for s in ds.samples(Split::Train) {
            for t in &s.tokens {
                assert!(vocab.id(t).is_some(), "token '{t}' missing from vocab");
            }
        }
        assert!(ds.max_query_len() >= 2);
    }

    #[test]
    fn stats_count_consistently() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 4));
        let st = ds.stats();
        assert_eq!(st.images, ds.scenes().len());
        assert!(st.targets <= st.queries);
        assert!(st.avg_query_len > 1.0);
    }

    #[test]
    fn refg_queries_are_longer_than_refcoco() {
        let a = Dataset::generate(DatasetConfig::standard(DatasetKind::SynthRef, 6));
        let g = Dataset::generate(DatasetConfig::standard(DatasetKind::SynthRefG, 6));
        assert!(
            g.stats().avg_query_len > a.stats().avg_query_len + 1.5,
            "G {} vs RefCOCO {}",
            g.stats().avg_query_len,
            a.stats().avg_query_len,
        );
    }

    #[test]
    fn target_bbox_matches_scene_object() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 7));
        let s = &ds.samples(Split::Val)[0];
        assert_eq!(ds.target_bbox(s), ds.scene_of(s).objects[s.target_idx].bbox);
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn dataset_json_roundtrip() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetKind::SynthRef, 77));
        let dir = std::env::temp_dir().join("yollo_dataset_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(back.scenes(), ds.scenes());
        for split in Split::ALL {
            assert_eq!(back.samples(split), ds.samples(split));
        }
        std::fs::remove_file(path).ok();
    }
}
