//! Synthetic referring-expression datasets: the stand-in for
//! RefCOCO / RefCOCO+ / RefCOCOg (§4.1 of the paper).
//!
//! The real benchmarks pair MS-COCO photographs with crowd-sourced
//! referring expressions. Neither asset is available offline, so this crate
//! generates the closest synthetic equivalent that exercises the same code
//! paths and the same *task structure*:
//!
//! * [`Scene`]s contain coloured geometric objects with bounding boxes;
//!   [`render`](Scene::render) rasterises them into a `[5, H, W]` tensor
//!   (RGB plus two CoordConv-style position channels, so spatial language
//!   is learnable from the pixels alone).
//! * [`QueryGen`] produces referring expressions from a compositional
//!   grammar, with a uniqueness guarantee: each query identifies its target
//!   unambiguously, via attributes, spatial extremes, or relations to a
//!   second object — mirroring how RefCOCO annotators disambiguate.
//! * [`Dataset`] materialises the three benchmark flavours
//!   ([`DatasetKind::SynthRef`] / [`SynthRefPlus`](DatasetKind::SynthRefPlus)
//!   / [`SynthRefG`](DatasetKind::SynthRefG)) with the paper's split scheme:
//!   train / val / testA (targets of the privileged "agent" category — the
//!   stand-in for RefCOCO's person-only testA) / testB (everything else).
//!
//! Everything is deterministic under a seed.

mod builder;
mod dataset;
mod grammar;
mod object;
mod render;
mod scene;

pub use builder::SceneBuilder;
pub use dataset::{Dataset, DatasetConfig, DatasetKind, DatasetStats, GroundingSample, Split};
pub use grammar::{QueryGen, QueryStyle};
pub use object::{ColorName, SceneObject, ShapeKind, SizeClass};
pub use render::{render_ppm, Overlay};
pub use scene::{Scene, SceneConfig};
