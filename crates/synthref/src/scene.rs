use crate::{ColorName, SceneObject, ShapeKind};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use yollo_detect::BBox;

/// Scene-generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Image width in pixels (paper input is 600 wide; scaled to 72).
    pub width: usize,
    /// Image height in pixels (paper input is 400 tall; scaled to 48).
    pub height: usize,
    /// Minimum objects per scene.
    pub min_objects: usize,
    /// Maximum objects per scene.
    pub max_objects: usize,
    /// Smallest object side length.
    pub min_size: f64,
    /// Largest object side length.
    pub max_size: f64,
    /// Maximum IoU allowed between any two objects.
    pub max_overlap: f64,
    /// Expected number of *additional* objects sharing the target's
    /// category. RefCOCO(+) averages ≈3.9 same-type objects, RefCOCOg
    /// limits this to ≈1.6 (§4.1) — this knob reproduces that distinction.
    pub same_kind_bias: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            width: 72,
            height: 48,
            min_objects: 4,
            max_objects: 7,
            min_size: 10.0,
            max_size: 22.0,
            max_overlap: 0.15,
            same_kind_bias: 2.9, // → ~3.9 same-kind objects including target
        }
    }
}

/// A synthetic image: a set of coloured shapes with known boxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// The objects, in generation order.
    pub objects: Vec<SceneObject>,
}

impl Scene {
    /// Generates a random scene. The first object is always present; object
    /// count, kinds, colours and positions are drawn from `cfg`.
    ///
    /// # Panics
    /// Panics if the config is degenerate (zero sizes, min > max).
    pub fn generate(cfg: &SceneConfig, rng: &mut impl Rng) -> Scene {
        assert!(cfg.min_objects >= 1 && cfg.min_objects <= cfg.max_objects);
        assert!(cfg.min_size > 0.0 && cfg.min_size <= cfg.max_size);
        assert!(cfg.max_size < cfg.width.min(cfg.height) as f64);
        let n = rng.gen_range(cfg.min_objects..=cfg.max_objects);
        let mut objects: Vec<SceneObject> = Vec::with_capacity(n);
        // Choose a "dominant" kind so same-kind distractor counts match the
        // benchmark's statistics.
        let dominant = *ShapeKind::ALL.choose(rng).expect("non-empty");
        for i in 0..n {
            let share = cfg.same_kind_bias / (1.0 + cfg.same_kind_bias);
            let kind = if i == 0 || rng.gen::<f64>() < share {
                dominant
            } else {
                *ShapeKind::ALL.choose(rng).expect("non-empty")
            };
            let color = *ColorName::ALL.choose(rng).expect("non-empty");
            // rejection-sample a placement with bounded overlap
            let mut placed = None;
            for _attempt in 0..64 {
                let w = rng.gen_range(cfg.min_size..=cfg.max_size);
                let h = rng.gen_range(cfg.min_size..=cfg.max_size);
                let x = rng.gen_range(0.0..(cfg.width as f64 - w));
                let y = rng.gen_range(0.0..(cfg.height as f64 - h));
                let bbox = BBox::new(x, y, w, h);
                if objects.iter().all(|o| o.bbox.iou(&bbox) <= cfg.max_overlap) {
                    placed = Some(bbox);
                    break;
                }
            }
            if let Some(bbox) = placed {
                objects.push(SceneObject { kind, color, bbox });
            }
            // crowded scenes silently cap at however many fit
        }
        Scene {
            width: cfg.width,
            height: cfg.height,
            objects,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the scene has no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Median object area (reference for [`SizeClass`](crate::SizeClass)).
    pub fn median_area(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        let mut areas: Vec<f64> = self.objects.iter().map(|o| o.bbox.area()).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).expect("areas are finite"));
        areas[areas.len() / 2]
    }

    /// Objects sharing `kind`.
    pub fn of_kind(&self, kind: ShapeKind) -> Vec<usize> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of objects with the same kind *and* colour as `idx`,
    /// excluding `idx` itself.
    pub fn attr_twins(&self, idx: usize) -> Vec<usize> {
        let target = &self.objects[idx];
        self.objects
            .iter()
            .enumerate()
            .filter(|(i, o)| *i != idx && o.same_attrs(target))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_respects_bounds() {
        let cfg = SceneConfig::default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let s = Scene::generate(&cfg, &mut rng);
            assert!(!s.is_empty());
            assert!(s.len() <= cfg.max_objects);
            for o in &s.objects {
                assert!(o.bbox.x >= 0.0 && o.bbox.y >= 0.0);
                assert!(o.bbox.x2() <= cfg.width as f64 + 1e-9);
                assert!(o.bbox.y2() <= cfg.height as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn overlap_is_bounded() {
        let cfg = SceneConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let s = Scene::generate(&cfg, &mut rng);
            for i in 0..s.len() {
                for j in (i + 1)..s.len() {
                    assert!(s.objects[i].bbox.iou(&s.objects[j].bbox) <= cfg.max_overlap + 1e-9);
                }
            }
        }
    }

    #[test]
    fn same_kind_bias_raises_duplicate_kinds() {
        let mut rng = StdRng::seed_from_u64(2);
        let hi = SceneConfig {
            same_kind_bias: 4.0,
            ..SceneConfig::default()
        };
        let lo = SceneConfig {
            same_kind_bias: 0.2,
            ..SceneConfig::default()
        };
        let avg_same = |cfg: &SceneConfig, rng: &mut StdRng| {
            let mut total = 0.0;
            for _ in 0..80 {
                let s = Scene::generate(cfg, rng);
                total += s.of_kind(s.objects[0].kind).len() as f64;
            }
            total / 80.0
        };
        let a = avg_same(&hi, &mut rng);
        let b = avg_same(&lo, &mut rng);
        assert!(a > b + 0.5, "bias had no effect: {a} vs {b}");
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SceneConfig::default();
        let a = Scene::generate(&cfg, &mut StdRng::seed_from_u64(3));
        let b = Scene::generate(&cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn median_area_and_twins() {
        let mk = |x: f64, kind, color| SceneObject {
            kind,
            color,
            bbox: BBox::new(x, 0.0, 10.0, 10.0),
        };
        let s = Scene {
            width: 72,
            height: 48,
            objects: vec![
                mk(0.0, ShapeKind::Circle, ColorName::Red),
                mk(20.0, ShapeKind::Circle, ColorName::Red),
                mk(40.0, ShapeKind::Circle, ColorName::Blue),
            ],
        };
        assert_eq!(s.median_area(), 100.0);
        assert_eq!(s.attr_twins(0), vec![1]);
        assert_eq!(s.attr_twins(2), Vec::<usize>::new());
        assert_eq!(s.of_kind(ShapeKind::Circle).len(), 3);
    }
}
