//! Weight initialisers.

use rand::Rng;
use yollo_tensor::Tensor;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in + fan_out > 0, "zero fan");
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// He/Kaiming normal initialisation: `N(0, sqrt(2 / fan_in))`, suited to
/// ReLU networks (the backbones).
///
/// # Panics
/// Panics if `fan_in == 0`.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "zero fan_in");
    let std = (2.0 / fan_in as f64).sqrt();
    Tensor::randn(dims, rng).scale(std)
}

/// Uniform `U(-1/sqrt(fan_in), 1/sqrt(fan_in))` (PyTorch's default for
/// linear/recurrent layers).
///
/// # Panics
/// Panics if `fan_in == 0`.
pub fn uniform_fan_in(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "zero fan_in");
    let a = 1.0 / (fan_in as f64).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let a = (6.0 / 128.0f64).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= a));
        // not degenerate
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn he_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_normal(&[1000], 50, &mut rng);
        let var: f64 = t.as_slice().iter().map(|x| x * x).sum::<f64>() / 1000.0;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var}");
    }

    #[test]
    fn uniform_fan_in_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = uniform_fan_in(&[10, 10], 25, &mut rng);
        assert!(t.as_slice().iter().all(|&x| x.abs() <= 0.2));
    }
}
