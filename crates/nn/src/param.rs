use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use yollo_tensor::{Element, Tensor};

struct ParamInner<E: Element> {
    value: Tensor<E>,
    grad: Tensor<E>,
}

/// A named, trainable tensor that outlives any single autodiff tape.
///
/// `Parameter` is a cheap reference-counted handle: cloning it clones the
/// handle, not the weights, so a layer, its optimiser and a checkpointer can
/// all address the same storage. Gradients accumulate into the parameter via
/// [`Binder::harvest`](crate::Binder::harvest) after each backward pass and
/// are consumed by an [`Optimizer`](crate::Optimizer).
///
/// Parameters are intentionally single-threaded (`Rc`); training in this
/// reproduction parallelises across *processes/experiments*, never within a
/// model instance.
#[derive(Clone)]
pub struct Parameter<E: Element = f64> {
    name: Rc<str>,
    inner: Rc<RefCell<ParamInner<E>>>,
}

impl<E: Element> Parameter<E> {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor<E>) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter {
            name: Rc::from(name.into()),
            inner: Rc::new(RefCell::new(ParamInner { value, grad })),
        }
    }

    /// The parameter's name (used by checkpointing).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A clone of the current weights.
    pub fn value(&self) -> Tensor<E> {
        self.inner.borrow().value.clone()
    }

    /// Replaces the weights.
    ///
    /// # Panics
    /// Panics if the new shape differs from the old.
    pub fn set_value(&self, value: Tensor<E>) {
        self.try_set_value(value)
            .unwrap_or_else(|e| panic!("parameter {e}"));
    }

    /// Fallible version of [`Parameter::set_value`]: rejects a shape change
    /// with a message naming the parameter and both shapes instead of
    /// panicking (used by checkpoint restore to surface mismatches).
    ///
    /// # Errors
    /// Returns the parameter name plus the stored and offered shapes.
    pub fn try_set_value(&self, value: Tensor<E>) -> Result<(), String> {
        let mut inner = self.inner.borrow_mut();
        if inner.value.dims() != value.dims() {
            return Err(format!(
                "{} shape change: expected {:?}, got {:?}",
                self.name,
                inner.value.dims(),
                value.dims()
            ));
        }
        inner.value = value;
        // grad keeps its shape; no reset needed
        Ok(())
    }

    /// A clone of the accumulated gradient.
    pub fn grad(&self) -> Tensor<E> {
        self.inner.borrow().grad.clone()
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn accumulate_grad(&self, g: &Tensor<E>) {
        self.inner.borrow_mut().grad.add_assign(g);
    }

    /// Adds `scale * g` into the accumulated gradient in one fused pass
    /// (no scaled temporary). The data-parallel trainer reduces shard
    /// gradients with this, folding in each shard's batch-fraction weight.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn accumulate_grad_scaled(&self, g: &Tensor<E>, scale: f64) {
        self.inner
            .borrow_mut()
            .grad
            .add_scaled_assign(g, E::from_f64(scale));
    }

    /// Clears the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.borrow_mut();
        let dims = inner.value.dims().to_vec();
        inner.grad = Tensor::zeros(&dims);
    }

    /// Applies an in-place update `value <- f(value, grad)`.
    pub(crate) fn update(&self, f: impl FnOnce(&mut Tensor<E>, &Tensor<E>)) {
        let mut inner = self.inner.borrow_mut();
        let ParamInner { value, grad } = &mut *inner;
        f(value, grad);
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    /// Dimension sizes of the weights.
    pub fn dims(&self) -> Vec<usize> {
        self.inner.borrow().value.dims().to_vec()
    }

    /// True when both handles address the same storage.
    pub fn same_storage(&self, other: &Parameter<E>) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Global L2 norm of the gradient.
    pub fn grad_norm(&self) -> f64 {
        self.inner.borrow().grad.norm().to_f64()
    }

    /// True when every element of the accumulated gradient is finite.
    /// Scans in place (no clone) — cheap enough to run after every
    /// backward pass as the trainer's non-finite guard.
    pub fn grad_is_finite(&self) -> bool {
        self.inner.borrow().grad.is_finite()
    }

    /// True when every weight is finite.
    pub fn value_is_finite(&self) -> bool {
        self.inner.borrow().value.is_finite()
    }

    /// A new parameter (fresh storage, zero gradient) with the same name
    /// and the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Parameter<F> {
        Parameter::new(self.name.to_string(), self.value().cast())
    }
}

impl<E: Element> fmt::Debug for Parameter<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Parameter({} {:?})", self.name, self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let p: Parameter = Parameter::new("w", Tensor::zeros(&[2, 2]));
        let q = p.clone();
        q.set_value(Tensor::ones(&[2, 2]));
        assert_eq!(p.value().as_slice(), &[1.0; 4]);
        assert!(p.same_storage(&q));
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p: Parameter = Parameter::new("w", Tensor::zeros(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        p.accumulate_grad(&Tensor::ones(&[3]));
        assert_eq!(p.grad().as_slice(), &[2.0; 3]);
        p.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "shape change")]
    fn set_value_rejects_shape_change() {
        let p: Parameter = Parameter::new("w", Tensor::zeros(&[3]));
        p.set_value(Tensor::zeros(&[4]));
    }

    #[test]
    fn try_set_value_reports_name_and_shapes() {
        let p: Parameter = Parameter::new("layer.w", Tensor::zeros(&[2, 3]));
        let err = p.try_set_value(Tensor::zeros(&[3, 2])).unwrap_err();
        assert!(err.contains("layer.w"), "missing name: {err}");
        assert!(err.contains("[2, 3]") && err.contains("[3, 2]"), "{err}");
        // value untouched on failure
        assert_eq!(p.dims(), vec![2, 3]);
        p.try_set_value(Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(p.value().as_slice(), &[1.0; 6]);
    }

    #[test]
    fn finite_scans_cover_grad_and_value() {
        let p: Parameter = Parameter::new("w", Tensor::zeros(&[2]));
        assert!(p.grad_is_finite() && p.value_is_finite());
        p.accumulate_grad(&Tensor::from_vec(vec![f64::NAN, 0.0], &[2]));
        assert!(!p.grad_is_finite());
        assert!(p.value_is_finite());
        p.zero_grad();
        assert!(p.grad_is_finite());
        p.set_value(Tensor::from_vec(vec![1.0, f64::INFINITY], &[2]));
        assert!(!p.value_is_finite());
    }
}
