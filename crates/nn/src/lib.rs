//! Neural-network building blocks on top of [`yollo_tensor`].
//!
//! Provides trainable [`Parameter`]s that outlive any single autodiff tape,
//! a [`Binder`] that connects parameters to a [`yollo_tensor::Graph`] for one
//! forward/backward pass, standard layers (linear, feed-forward,
//! convolution, embedding, GRU, layer norm, dropout), initialisers,
//! optimisers (SGD with momentum, Adam — both with exportable state for
//! training-state snapshots) and crash-safe JSON checkpointing: CRC-checked
//! atomic writes plus a rotating [`CheckpointStore`] that falls back to the
//! newest valid file when the latest is truncated or corrupt.
//!
//! # Training loop shape
//!
//! ```
//! use yollo_nn::{Adam, Binder, Linear, Module, Optimizer};
//! use yollo_tensor::{Graph, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let layer = Linear::new("fc", 4, 1, true, &mut rng);
//! let mut opt = Adam::new(layer.parameters(), 1e-2);
//! for _ in 0..10 {
//!     let g = Graph::new();
//!     let b = Binder::new(&g);
//!     let x = g.leaf(Tensor::ones(&[8, 4]));
//!     let y = layer.forward(&b, x);
//!     let loss = y.square().mean_all();
//!     opt.zero_grad();
//!     loss.backward();
//!     b.harvest();
//!     opt.step();
//! }
//! ```

mod binder;
mod conv_layer;
mod dropout;
mod embedding;
mod gru;
mod init;
mod linear;
mod module;
mod norm;
mod optim;
mod param;
mod schedule;
mod serialize;

pub use binder::Binder;
pub use conv_layer::Conv2d;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gru::{Gru, GruState};
pub use init::{he_normal, uniform_fan_in, xavier_uniform};
pub use linear::{Ffn, Linear};
pub use module::{count_params, Module, ParamList};
pub use norm::LayerNorm;
pub use optim::{clip_global_norm, Adam, OptimState, Optimizer, Sgd};
pub use param::Parameter;
pub use schedule::{ConstantLr, CosineDecay, LrSchedule, StepDecay};
pub use serialize::{
    crc32, load_params, read_validated, save_params, write_durable, Checkpoint, CheckpointStore,
};
