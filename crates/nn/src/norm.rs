use crate::{Binder, Module, ParamList, Parameter};
use yollo_tensor::{Element, Tensor, Var};

/// Layer normalisation over the last dimension, with learned gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm<E: Element = f64> {
    gamma: Parameter<E>,
    beta: Parameter<E>,
    dim: usize,
    eps: f64,
}

impl LayerNorm {
    /// Creates a layer norm for feature dimension `dim`.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Parameter::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }
}

impl<E: Element> LayerNorm<E> {
    /// Normalises the last dimension of `x` (any rank ≥ 1).
    ///
    /// # Panics
    /// Panics if the last dimension differs from `dim`.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        let dims = x.dims();
        let last = *dims.last().expect("layernorm input must have rank >= 1");
        assert_eq!(last, self.dim, "layernorm dim mismatch");
        let axis = dims.len() - 1;
        let mut keep = dims.clone();
        keep[axis] = 1;
        let mean = x.mean_axis(axis).reshape(&keep);
        let centered = x - mean;
        let var = centered.square().mean_axis(axis).reshape(&keep);
        let normed = centered / (var.add_scalar(self.eps)).sqrt();
        normed * bind.var(&self.gamma) + bind.var(&self.beta)
    }

    /// This layer with the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> LayerNorm<F> {
        LayerNorm {
            gamma: self.gamma.cast(),
            beta: self.beta.cast(),
            dim: self.dim,
            eps: self.eps,
        }
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> ParamList {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::{check_gradients, GradCheck, Graph};

    #[test]
    fn output_rows_are_standardised() {
        let ln = LayerNorm::new("ln", 6);
        let mut rng = StdRng::seed_from_u64(0);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::randn(&[3, 6], &mut rng).scale(7.0));
        let y = ln.forward(&b, x).value();
        for r in 0..3 {
            let row: Vec<f64> = (0..6).map(|c| y.at(&[r, c])).collect();
            let mean: f64 = row.iter().sum::<f64>() / 6.0;
            let var: f64 = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 6.0;
            assert!(mean.abs() < 1e-9, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Tensor = Tensor::randn(&[2, 4], &mut rng);
        check_gradients(
            &[x],
            GradCheck {
                eps: 1e-5,
                tol: 1e-4,
            },
            |v| {
                // inline the normalisation with constant gamma/beta
                let dims = v[0].dims();
                let axis = dims.len() - 1;
                let mut keep = dims.clone();
                keep[axis] = 1;
                let mean = v[0].mean_axis(axis).reshape(&keep);
                let c = v[0] - mean;
                let var = c.square().mean_axis(axis).reshape(&keep);
                (c / var.add_scalar(1e-5).sqrt()).square().sum_all()
            },
        )
        .unwrap();
    }
}
