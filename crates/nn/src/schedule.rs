//! Learning-rate schedules.
//!
//! The paper trains with a constant 5e-5 (§4.2); these schedules back the
//! longer laptop-scale runs where a warmup + decay profile converges
//! noticeably faster.

use crate::Optimizer;

/// A learning-rate schedule: maps a 0-based step index to a rate.
pub trait LrSchedule {
    /// The learning rate to use at `step`.
    fn lr_at(&self, step: usize) -> f64;

    /// Applies the schedule to an optimiser for the given step.
    fn apply(&self, opt: &mut dyn Optimizer, step: usize)
    where
        Self: Sized,
    {
        opt.set_learning_rate(self.lr_at(step));
    }
}

/// A constant rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr(pub f64);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _step: usize) -> f64 {
        self.0
    }
}

/// Multiplies the rate by `factor` every `every` steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f64,
    /// Multiplier applied at each boundary (e.g. 0.5).
    pub factor: f64,
    /// Steps between boundaries.
    pub every: usize,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, step: usize) -> f64 {
        self.base * self.factor.powi((step / self.every.max(1)) as i32)
    }
}

/// Cosine annealing from `base` to `min` over `total` steps, with an
/// optional linear warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineDecay {
    /// Peak rate.
    pub base: f64,
    /// Final rate.
    pub min: f64,
    /// Steps over which to anneal.
    pub total: usize,
    /// Linear warmup steps from 0 to `base`.
    pub warmup: usize,
}

impl LrSchedule for CosineDecay {
    fn lr_at(&self, step: usize) -> f64 {
        if step < self.warmup {
            return self.base * (step + 1) as f64 / self.warmup as f64;
        }
        let t =
            (step - self.warmup) as f64 / (self.total.saturating_sub(self.warmup)).max(1) as f64;
        let t = t.clamp(0.0, 1.0);
        self.min + 0.5 * (self.base - self.min) * (1.0 + (std::f64::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(1e-3);
        assert_eq!(s.lr_at(0), 1e-3);
        assert_eq!(s.lr_at(10_000), 1e-3);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay {
            base: 1.0,
            factor: 0.5,
            every: 100,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(99), 1.0);
        assert_eq!(s.lr_at(100), 0.5);
        assert_eq!(s.lr_at(250), 0.25);
    }

    #[test]
    fn cosine_warms_up_then_anneals() {
        let s = CosineDecay {
            base: 1.0,
            min: 0.1,
            total: 100,
            warmup: 10,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-9);
        // midpoint of annealing ≈ (base+min)/2
        assert!((s.lr_at(55) - 0.55).abs() < 0.02);
        // end stays at min
        assert!((s.lr_at(100) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(5000) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn schedule_drives_optimizer() {
        use crate::{Adam, Parameter};
        use yollo_tensor::Tensor;
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p], 1.0);
        let s = StepDecay {
            base: 1.0,
            factor: 0.1,
            every: 1,
        };
        s.apply(&mut opt, 2);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = CosineDecay {
            base: 2e-3,
            min: 1e-4,
            total: 200,
            warmup: 20,
        };
        let mut last = f64::INFINITY;
        for step in (20..200).step_by(10) {
            let lr = s.lr_at(step);
            assert!(lr <= last + 1e-12, "not monotone at {step}");
            last = lr;
        }
    }
}
