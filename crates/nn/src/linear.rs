use crate::{uniform_fan_in, xavier_uniform, Binder, Module, ParamList, Parameter};
use rand::Rng;
use yollo_tensor::{Element, Tensor, Var};

/// A fully-connected layer `y = x W + b`.
///
/// Accepts rank-2 `[rows, in]` or rank-3 `[batch, rows, in]` inputs; the
/// weight is shared across leading dimensions.
#[derive(Debug, Clone)]
pub struct Linear<E: Element = f64> {
    w: Parameter<E>,
    b: Option<Parameter<E>>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let w = Parameter::new(
            format!("{name}.w"),
            xavier_uniform(&[in_dim, out_dim], in_dim, out_dim, rng),
        );
        let b = bias.then(|| Parameter::new(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Creates a linear layer with fan-in uniform weights (recurrent style).
    pub fn new_uniform(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = Parameter::new(
            format!("{name}.w"),
            uniform_fan_in(&[in_dim, out_dim], in_dim, rng),
        );
        let b = bias.then(|| Parameter::new(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }
}

impl<E: Element> Linear<E> {
    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer.
    ///
    /// # Panics
    /// Panics if the last input dimension differs from `in_dim`.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        let dims = x.dims();
        assert_eq!(
            *dims.last().expect("linear input must have rank >= 1"),
            self.in_dim,
            "linear input dim mismatch"
        );
        let w = bind.var(&self.w);
        let y = x.matmul(w);
        match &self.b {
            Some(b) => y.add(bind.var(b)),
            None => y,
        }
    }

    /// Graph-free forward for inference: same math as [`Linear::forward`]
    /// without recording on a tape.
    ///
    /// # Panics
    /// Panics if the last input dimension differs from `in_dim`.
    pub fn forward_infer(&self, x: &Tensor<E>) -> Tensor<E> {
        assert_eq!(
            *x.dims().last().expect("linear input must have rank >= 1"),
            self.in_dim,
            "linear input dim mismatch"
        );
        let y = x.matmul(&self.w.value());
        match &self.b {
            Some(b) => y.zip_broadcast(&b.value(), |a, c| a + c),
            None => y,
        }
    }

    /// This layer with the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Linear<F> {
        Linear {
            w: self.w.cast(),
            b: self.b.as_ref().map(Parameter::cast),
            in_dim: self.in_dim,
            out_dim: self.out_dim,
        }
    }
}

impl Module for Linear {
    fn parameters(&self) -> ParamList {
        let mut ps = vec![self.w.clone()];
        if let Some(b) = &self.b {
            ps.push(b.clone());
        }
        ps
    }
}

/// The paper's two-layer feed-forward network (`FFN(x, θ)` in Eq. 1–2):
/// `y = ReLU(x W1 + b1) W2 + b2`.
#[derive(Debug, Clone)]
pub struct Ffn<E: Element = f64> {
    fc1: Linear<E>,
    fc2: Linear<E>,
}

impl Ffn {
    /// Creates an FFN with the given input, hidden, and output sizes.
    pub fn new(
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Ffn {
            fc1: Linear::new(&format!("{name}.fc1"), in_dim, hidden, true, rng),
            fc2: Linear::new(&format!("{name}.fc2"), hidden, out_dim, true, rng),
        }
    }
}

impl<E: Element> Ffn<E> {
    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.fc2.out_dim()
    }

    /// Applies the two layers with a ReLU between.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        self.fc2.forward(bind, self.fc1.forward(bind, x).relu())
    }

    /// Graph-free forward for inference (see [`Linear::forward_infer`]).
    pub fn forward_infer(&self, x: &Tensor<E>) -> Tensor<E> {
        self.fc2
            .forward_infer(&self.fc1.forward_infer(x).map(|v| v.max(E::ZERO)))
    }

    /// This network with the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Ffn<F> {
        Ffn {
            fc1: self.fc1.cast(),
            fc2: self.fc2.cast(),
        }
    }
}

impl Module for Ffn {
    fn parameters(&self) -> ParamList {
        let mut ps = self.fc1.parameters();
        ps.extend(self.fc2.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    #[test]
    fn linear_shapes_2d_and_3d() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 4, 3, true, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x2 = g.leaf(Tensor::ones(&[5, 4]));
        assert_eq!(l.forward(&b, x2).dims(), vec![5, 3]);
        let x3 = g.leaf(Tensor::ones(&[2, 5, 4]));
        assert_eq!(l.forward(&b, x3).dims(), vec![2, 5, 3]);
    }

    #[test]
    fn linear_gradients_reach_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new("l", 3, 2, true, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::ones(&[4, 3]));
        let loss = l.forward(&b, x).square().mean_all();
        loss.backward();
        b.harvest();
        for p in l.parameters() {
            assert!(p.grad_norm() > 0.0, "param {} got no gradient", p.name());
        }
    }

    #[test]
    fn forward_infer_matches_graph_forward() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = Linear::new("l", 4, 3, true, &mut rng);
        let f = Ffn::new("f", 4, 6, 2, &mut rng);
        let x = Tensor::randn(&[2, 5, 4], &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let lw = l.forward(&b, g.leaf(x.clone())).value();
        assert!(l.forward_infer(&x).max_abs_diff(&lw) < 1e-12);
        let fw = f.forward(&b, g.leaf(x.clone())).value();
        assert!(f.forward_infer(&x).max_abs_diff(&fw) < 1e-12);
    }

    #[test]
    fn ffn_reduces_loss_under_sgd() {
        use crate::{Optimizer, Sgd};
        let mut rng = StdRng::seed_from_u64(2);
        let f = Ffn::new("f", 2, 8, 1, &mut rng);
        let x = Tensor::rand_uniform(&[16, 2], -1.0, 1.0, &mut rng);
        // target: y = x0 + x1
        let t = Tensor::from_fn(&[16, 1], |i| x.at(&[i, 0]) + x.at(&[i, 1]));
        let mut opt = Sgd::new(f.parameters(), 0.1, 0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let g = Graph::new();
            let b = Binder::new(&g);
            let xv = g.leaf(x.clone());
            let y = f.forward(&b, xv);
            let loss = (y - g.leaf(t.clone())).square().mean_all();
            last = loss.value().scalar();
            first.get_or_insert(last);
            opt.zero_grad();
            loss.backward();
            b.harvest();
            opt.step();
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.05,
            "ffn failed to fit: first {first}, last {last}"
        );
    }

    #[test]
    fn parameters_are_stable_handles() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = Ffn::new("f", 2, 4, 2, &mut rng);
        assert_eq!(f.parameters().len(), 4);
        assert_eq!(f.num_params(), 2 * 4 + 4 + 4 * 2 + 2);
        assert!(f.parameters()[0].same_storage(&f.parameters()[0]));
    }
}
