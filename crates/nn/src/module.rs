use crate::Parameter;

/// A collection of named parameters.
pub type ParamList<E = f64> = Vec<Parameter<E>>;

/// Anything holding trainable parameters.
///
/// Layers implement this so optimisers and checkpointers can enumerate the
/// weights. Forward passes are *not* part of the trait: each layer exposes a
/// concretely-typed `forward` whose signature matches its input shape
/// (sequence, image, token ids, …).
pub trait Module {
    /// Handles to every trainable parameter, in a stable order.
    fn parameters(&self) -> ParamList;

    /// Total number of scalar weights.
    fn num_params(&self) -> usize {
        self.parameters().iter().map(Parameter::numel).sum()
    }

    /// Clears all accumulated gradients.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

impl Module for ParamList {
    fn parameters(&self) -> ParamList {
        self.clone()
    }
}

/// Sums the parameter counts of several modules.
pub fn count_params(modules: &[&dyn Module]) -> usize {
    modules.iter().map(|m| m.num_params()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_tensor::Tensor;

    #[test]
    fn param_list_is_a_module() {
        let ps: ParamList = vec![
            Parameter::new("a", Tensor::zeros(&[2, 3])),
            Parameter::new("b", Tensor::zeros(&[5])),
        ];
        assert_eq!(ps.num_params(), 11);
        assert_eq!(count_params(&[&ps]), 11);
    }
}
