//! Checkpointing: JSON parameter snapshots, crash-safe durable writes with
//! an embedded CRC-32, and a rotating on-disk checkpoint store.
//!
//! # Durable checkpoint format (v1)
//!
//! A durable checkpoint file is a one-line ASCII header followed by the raw
//! payload bytes:
//!
//! ```text
//! YOLLO-CKPT v1 crc32=9bd366ae len=1234\n
//! <payload bytes…>
//! ```
//!
//! The header carries the CRC-32 (IEEE) and exact byte length of the
//! payload, so truncation (a crash mid-write, a full disk) and bit-level
//! corruption are both detected at load time. Writes go to a temporary
//! sibling file, are fsynced, and are renamed into place, so a reader never
//! observes a half-written checkpoint under the final name.
//!
//! [`CheckpointStore`] layers versioned `ckpt-{iter}.json` rotation with a
//! retained-last-K policy on top, and falls back to the newest *valid* file
//! when the latest one fails validation.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::Parameter;
use serde::{Deserialize, Serialize};
use yollo_tensor::Tensor;

/// A serialisable snapshot of named weights.
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq)]
pub struct Checkpoint {
    /// Parameter name → weights.
    pub tensors: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Captures the current values of `params`.
    ///
    /// # Panics
    /// Panics if two parameters share a name (checkpoints must be
    /// unambiguous).
    pub fn capture(params: &[Parameter]) -> Self {
        let mut tensors = BTreeMap::new();
        for p in params {
            let prev = tensors.insert(p.name().to_string(), p.value());
            assert!(prev.is_none(), "duplicate parameter name {}", p.name());
        }
        Checkpoint { tensors }
    }

    /// Restores weights into `params`, matching by name. Every entry is
    /// shape-checked before any write, so a mismatch reports the offending
    /// parameter's name and both shapes instead of panicking mid-restore
    /// with the model half-overwritten.
    ///
    /// # Errors
    /// Returns the missing name if a parameter has no entry, or the
    /// name/shape pair of the first shape mismatch.
    pub fn restore(&self, params: &[Parameter]) -> Result<(), String> {
        // validate everything first: restore is all-or-nothing
        for p in params {
            match self.tensors.get(p.name()) {
                Some(t) if t.dims() != p.dims() => {
                    return Err(format!(
                        "checkpoint shape mismatch for {}: checkpoint has {:?}, model has {:?}",
                        p.name(),
                        t.dims(),
                        p.dims()
                    ))
                }
                Some(_) => {}
                None => return Err(format!("checkpoint missing parameter {}", p.name())),
            }
        }
        for p in params {
            let t = self.tensors[p.name()].clone();
            p.try_set_value(t).map_err(|e| format!("parameter {e}"))?;
        }
        Ok(())
    }
}

// ----- CRC-32 (IEEE 802.3) -----

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE polynomial, as used by zip/png) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ----- durable writes -----

const HEADER_MAGIC: &str = "YOLLO-CKPT v1";

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `payload` to `path` crash-safely: CRC-32 header + payload go to a
/// temporary sibling (`<name>.tmp`), the file is fsynced, renamed over
/// `path`, and the parent directory is fsynced, so a crash at any point
/// leaves either the old file or the new one — never a torn mix.
///
/// # Errors
/// Returns any I/O error from the write, sync, or rename.
pub fn write_durable(path: impl AsRef<Path>, payload: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    let header = format!(
        "{HEADER_MAGIC} crc32={:08x} len={}\n",
        crc32(payload),
        payload.len()
    );
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // fsync the directory so the rename itself is durable (best-effort:
    // some filesystems refuse to sync a directory handle)
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a durable checkpoint written by [`write_durable`], validating the
/// header, the payload length, and the CRC-32. A file without the
/// `YOLLO-CKPT` magic is treated as a legacy bare payload and returned
/// whole (pre-v1 checkpoints carried no envelope).
///
/// # Errors
/// Returns [`io::ErrorKind::InvalidData`] for a malformed header, a
/// truncated or over-long payload, or a checksum mismatch, and any
/// underlying I/O error.
pub fn read_validated(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let bytes = fs::read(path)?;
    if !bytes.starts_with(HEADER_MAGIC.as_bytes()) {
        return Ok(bytes); // legacy bare payload
    }
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| invalid("checkpoint header has no newline (truncated?)"))?;
    let header =
        std::str::from_utf8(&bytes[..nl]).map_err(|_| invalid("checkpoint header is not UTF-8"))?;
    let mut crc: Option<u32> = None;
    let mut len: Option<usize> = None;
    for field in header.split_whitespace() {
        if let Some(v) = field.strip_prefix("crc32=") {
            crc = u32::from_str_radix(v, 16).ok();
        } else if let Some(v) = field.strip_prefix("len=") {
            len = v.parse().ok();
        }
    }
    let (crc, len) = match (crc, len) {
        (Some(c), Some(l)) => (c, l),
        _ => return Err(invalid(format!("malformed checkpoint header: {header:?}"))),
    };
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(invalid(format!(
            "checkpoint payload truncated: header says {len} bytes, file has {}",
            payload.len()
        )));
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(invalid(format!(
            "checkpoint checksum mismatch: header {crc:08x}, payload {actual:08x}"
        )));
    }
    Ok(payload.to_vec())
}

// ----- rotating checkpoint store -----

/// A directory of versioned, durable checkpoints (`ckpt-{iter:08}.json`)
/// with a retained-last-K rotation policy and corruption-tolerant loading:
/// [`CheckpointStore::load_latest_valid`] walks files newest-first and
/// returns the first one that passes CRC validation, so a checkpoint
/// truncated by a mid-write crash falls back to its predecessor instead of
/// killing the resume.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory that retains the
    /// last `keep_last` checkpoints (minimum 1).
    ///
    /// # Errors
    /// Returns any error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>, keep_last: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep_last: keep_last.max(1),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint file for iteration `iter`.
    pub fn path_for(&self, iter: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{iter:08}.json"))
    }

    /// All checkpoint files present, as `(iteration, path)` sorted by
    /// iteration ascending. Non-checkpoint files are ignored.
    ///
    /// # Errors
    /// Returns any error from listing the directory.
    pub fn entries(&self) -> io::Result<Vec<(usize, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(iter) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<usize>().ok())
            {
                out.push((iter, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Durably writes `payload` as the checkpoint for iteration `iter`,
    /// then rotates: all but the newest `keep_last` checkpoints are
    /// deleted.
    ///
    /// # Errors
    /// Returns any I/O error from the write or the rotation scan.
    pub fn save(&self, iter: usize, payload: &[u8]) -> io::Result<PathBuf> {
        let path = self.path_for(iter);
        write_durable(&path, payload)?;
        let entries = self.entries()?;
        if entries.len() > self.keep_last {
            for (_, old) in &entries[..entries.len() - self.keep_last] {
                fs::remove_file(old)?;
            }
        }
        Ok(path)
    }

    /// Loads the newest checkpoint that passes CRC validation, returning
    /// its iteration and payload. Corrupt or truncated files are skipped
    /// (newest-first); returns `Ok(None)` when no valid checkpoint exists.
    ///
    /// # Errors
    /// Returns any error from listing the directory (per-file validation
    /// failures are skipped, not returned).
    pub fn load_latest_valid(&self) -> io::Result<Option<(usize, Vec<u8>)>> {
        for (iter, path) in self.entries()?.into_iter().rev() {
            match read_validated(&path) {
                Ok(payload) => return Ok(Some((iter, payload))),
                Err(_) => continue, // corrupt/truncated: fall back further
            }
        }
        Ok(None)
    }
}

/// Saves `params` as a durable (CRC-checked, atomically renamed) JSON
/// checkpoint at `path`.
///
/// # Errors
/// Returns any I/O or serialisation error.
pub fn save_params(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let ckpt = Checkpoint::capture(params);
    let json = serde_json::to_vec(&ckpt).map_err(io::Error::other)?;
    write_durable(path, &json)
}

/// Loads weights from a checkpoint into `params` (matched by name).
/// Accepts both durable (v1 header) and legacy bare-JSON files.
///
/// # Errors
/// Returns I/O, validation, parse, or missing-parameter/shape errors.
pub fn load_params(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let payload = read_validated(path)?;
    let ckpt: Checkpoint = serde_json::from_slice(&payload).map_err(io::Error::other)?;
    ckpt.restore(params).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("yollo_nn_{name}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn capture_restore_roundtrip() {
        let p = Parameter::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let q = Parameter::new("b", Tensor::from_vec(vec![3.0], &[1]));
        let ckpt = Checkpoint::capture(&[p.clone(), q.clone()]);
        p.set_value(Tensor::zeros(&[2]));
        q.set_value(Tensor::zeros(&[1]));
        ckpt.restore(&[p.clone(), q.clone()]).unwrap();
        assert_eq!(p.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(q.value().as_slice(), &[3.0]);
    }

    #[test]
    fn restore_reports_missing() {
        let ckpt = Checkpoint::default();
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let err = ckpt.restore(&[p]).unwrap_err();
        assert!(err.contains("w"));
    }

    #[test]
    fn restore_reports_shape_mismatch_without_writing() {
        let good = Parameter::new("a", Tensor::ones(&[2]));
        let bad = Parameter::new("b", Tensor::ones(&[2, 2]));
        let ckpt = Checkpoint::capture(&[good.clone(), bad.clone()]);
        // model now disagrees on b's shape
        let model_a = Parameter::new("a", Tensor::zeros(&[2]));
        let model_b = Parameter::new("b", Tensor::zeros(&[4]));
        let err = ckpt.restore(&[model_a.clone(), model_b]).unwrap_err();
        assert!(err.contains('b'), "{err}");
        assert!(err.contains("[2, 2]") && err.contains("[4]"), "{err}");
        // all-or-nothing: a was validated but never written
        assert_eq!(model_a.value().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn file_roundtrip() {
        let dir = tmpdir("ckpt");
        let path = dir.join("model.json");
        let p = Parameter::new("layer.w", Tensor::from_vec(vec![0.5; 6], &[2, 3]));
        save_params(&path, std::slice::from_ref(&p)).unwrap();
        p.set_value(Tensor::zeros(&[2, 3]));
        load_params(&path, std::slice::from_ref(&p)).unwrap();
        assert_eq!(p.value().as_slice(), &[0.5; 6]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn legacy_bare_json_still_loads() {
        let dir = tmpdir("legacy");
        let path = dir.join("legacy.json");
        let p = Parameter::new("w", Tensor::from_vec(vec![7.0], &[1]));
        let json = serde_json::to_vec(&Checkpoint::capture(std::slice::from_ref(&p))).unwrap();
        fs::write(&path, json).unwrap(); // no header, pre-v1 style
        p.set_value(Tensor::zeros(&[1]));
        load_params(&path, std::slice::from_ref(&p)).unwrap();
        assert_eq!(p.value().as_slice(), &[7.0]);
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let q = Parameter::new("w", Tensor::zeros(&[1]));
        Checkpoint::capture(&[p, q]);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn read_validated_detects_truncation_and_bitflips() {
        let dir = tmpdir("corrupt");
        let path = dir.join("c.json");
        let payload = b"{\"hello\": [1, 2, 3, 4, 5]}";
        write_durable(&path, payload).unwrap();
        assert_eq!(read_validated(&path).unwrap(), payload);

        // truncation: drop the tail
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        let err = read_validated(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");

        // bit flip in the payload
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        let err = read_validated(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_file(path).ok();
    }

    #[test]
    fn store_rotates_and_falls_back_to_newest_valid() {
        let dir = tmpdir("store");
        let store = CheckpointStore::open(dir.join("run"), 2).unwrap();
        for it in [10usize, 20, 30] {
            store.save(it, format!("payload-{it}").as_bytes()).unwrap();
        }
        // keep_last = 2: ckpt-10 rotated away
        let iters: Vec<usize> = store.entries().unwrap().iter().map(|e| e.0).collect();
        assert_eq!(iters, vec![20, 30]);
        let (it, payload) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!((it, payload.as_slice()), (30, b"payload-30".as_slice()));

        // truncate the newest: loader falls back to ckpt-20
        let newest = store.path_for(30);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (it, payload) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!((it, payload.as_slice()), (20, b"payload-20".as_slice()));

        // corrupt both: no valid checkpoint remains
        let older = store.path_for(20);
        let mut bytes = fs::read(&older).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&older, &bytes).unwrap();
        assert!(store.load_latest_valid().unwrap().is_none());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn write_durable_leaves_no_tmp_file() {
        let dir = tmpdir("tmpclean");
        let path = dir.join("x.json");
        write_durable(&path, b"abc").unwrap();
        assert!(path.exists());
        assert!(!dir.join("x.json.tmp").exists());
        fs::remove_dir_all(dir).ok();
    }

    proptest! {
        /// Checkpoint save→load round-trips arbitrary parameter sets
        /// bit-for-bit (serde_json's float_roundtrip feature guarantees
        /// exact f64 round-trips for finite values).
        #[test]
        fn durable_roundtrip_is_bit_exact(
            sets in prop::collection::vec(
                (1usize..5, 1usize..5,
                 prop::collection::vec(-1e12f64..1e12, 16)),
                1..4,
            )
        ) {
            let dir = tmpdir("prop");
            let path = dir.join("p.json");
            let params: Vec<Parameter> = sets
                .iter()
                .enumerate()
                .map(|(i, (r, c, vals))| {
                    let data: Vec<f64> = (0..r * c).map(|j| vals[j % vals.len()]).collect();
                    Parameter::new(format!("p{i}"), Tensor::from_vec(data, &[*r, *c]))
                })
                .collect();
            let before: Vec<Vec<u64>> = params
                .iter()
                .map(|p| p.value().as_slice().iter().map(|x| x.to_bits()).collect())
                .collect();
            save_params(&path, &params).unwrap();
            for p in &params {
                let dims = p.dims();
                p.set_value(Tensor::zeros(&dims));
            }
            load_params(&path, &params).unwrap();
            for (p, bits) in params.iter().zip(&before) {
                let after: Vec<u64> =
                    p.value().as_slice().iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(&after, bits);
            }
            fs::remove_file(&path).ok();
        }
    }
}
