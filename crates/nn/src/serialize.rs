//! JSON checkpointing of parameter sets.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::Parameter;
use serde::{Deserialize, Serialize};
use yollo_tensor::Tensor;

/// A serialisable snapshot of named weights.
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq)]
pub struct Checkpoint {
    /// Parameter name → weights.
    pub tensors: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Captures the current values of `params`.
    ///
    /// # Panics
    /// Panics if two parameters share a name (checkpoints must be
    /// unambiguous).
    pub fn capture(params: &[Parameter]) -> Self {
        let mut tensors = BTreeMap::new();
        for p in params {
            let prev = tensors.insert(p.name().to_string(), p.value());
            assert!(prev.is_none(), "duplicate parameter name {}", p.name());
        }
        Checkpoint { tensors }
    }

    /// Restores weights into `params`, matching by name.
    ///
    /// # Errors
    /// Returns the missing name if a parameter has no entry.
    pub fn restore(&self, params: &[Parameter]) -> Result<(), String> {
        for p in params {
            match self.tensors.get(p.name()) {
                Some(t) => p.set_value(t.clone()),
                None => return Err(format!("checkpoint missing parameter {}", p.name())),
            }
        }
        Ok(())
    }
}

/// Saves `params` as JSON at `path`.
///
/// # Errors
/// Returns any I/O or serialisation error.
pub fn save_params(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let ckpt = Checkpoint::capture(params);
    let json = serde_json::to_string(&ckpt).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Loads weights from a JSON checkpoint into `params` (matched by name).
///
/// # Errors
/// Returns I/O, parse, or missing-parameter errors.
pub fn load_params(path: impl AsRef<Path>, params: &[Parameter]) -> io::Result<()> {
    let json = fs::read_to_string(path)?;
    let ckpt: Checkpoint = serde_json::from_str(&json).map_err(io::Error::other)?;
    ckpt.restore(params).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_restore_roundtrip() {
        let p = Parameter::new("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let q = Parameter::new("b", Tensor::from_vec(vec![3.0], &[1]));
        let ckpt = Checkpoint::capture(&[p.clone(), q.clone()]);
        p.set_value(Tensor::zeros(&[2]));
        q.set_value(Tensor::zeros(&[1]));
        ckpt.restore(&[p.clone(), q.clone()]).unwrap();
        assert_eq!(p.value().as_slice(), &[1.0, 2.0]);
        assert_eq!(q.value().as_slice(), &[3.0]);
    }

    #[test]
    fn restore_reports_missing() {
        let ckpt = Checkpoint::default();
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let err = ckpt.restore(&[p]).unwrap_err();
        assert!(err.contains("w"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("yollo_nn_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let p = Parameter::new("layer.w", Tensor::from_vec(vec![0.5; 6], &[2, 3]));
        save_params(&path, &[p.clone()]).unwrap();
        p.set_value(Tensor::zeros(&[2, 3]));
        load_params(&path, &[p.clone()]).unwrap();
        assert_eq!(p.value().as_slice(), &[0.5; 6]);
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let q = Parameter::new("w", Tensor::zeros(&[1]));
        Checkpoint::capture(&[p, q]);
    }
}
