use crate::{Binder, Linear, Module, ParamList};
use rand::Rng;
use yollo_tensor::{Tensor, Var};

/// Hidden state of a [`Gru`], one row per batch element.
#[derive(Debug, Clone, Copy)]
pub struct GruState<'g>(pub Var<'g>);

/// A gated recurrent unit (Cho et al. 2014), the sequence encoder used by
/// the two-stage listener/speaker baselines.
///
/// Update equations per step (on `[batch, dim]` rows):
/// `z = σ(x Wz + h Uz)`, `r = σ(x Wr + h Ur)`,
/// `ĥ = tanh(x Wh + (r⊙h) Uh)`, `h' = (1−z)⊙h + z⊙ĥ`.
#[derive(Debug, Clone)]
pub struct Gru {
    wx: Linear, // input → 3*hidden (z, r, h)
    wh: Linear, // hidden → 3*hidden
    hidden: usize,
}

impl Gru {
    /// Creates a GRU with the given input and hidden sizes.
    pub fn new(name: &str, input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Gru {
            wx: Linear::new_uniform(&format!("{name}.wx"), input, 3 * hidden, true, rng),
            wh: Linear::new_uniform(&format!("{name}.wh"), hidden, 3 * hidden, false, rng),
            hidden,
        }
    }

    /// Hidden-state dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero initial state for a batch of `batch` rows.
    pub fn zero_state<'g>(&self, bind: &Binder<'g>, batch: usize) -> GruState<'g> {
        GruState(bind.graph().leaf(Tensor::zeros(&[batch, self.hidden])))
    }

    /// One recurrence step. `x` is `[batch, input]`.
    pub fn step<'g>(&self, bind: &Binder<'g>, x: Var<'g>, state: GruState<'g>) -> GruState<'g> {
        let h = state.0;
        let gx = self.wx.forward(bind, x); // [b, 3H]
        let gh = self.wh.forward(bind, h); // [b, 3H]
        let hs = self.hidden;
        let z = (gx.slice(1, 0, hs) + gh.slice(1, 0, hs)).sigmoid();
        let r = (gx.slice(1, hs, hs) + gh.slice(1, hs, hs)).sigmoid();
        let cand = (gx.slice(1, 2 * hs, hs) + (r * h).matmul(self.wh_slice_h(bind))).tanh();
        let one = bind.graph().ones(&z.dims());
        GruState((one - z) * h + z * cand)
    }

    // the candidate gate needs Uh applied to r⊙h, not to h; expose the
    // third block of wh's weight as its own matmul operand
    fn wh_slice_h<'g>(&self, bind: &Binder<'g>) -> Var<'g> {
        let w = bind.var(&self.wh.parameters()[0]); // [H, 3H]
        w.slice(1, 2 * self.hidden, self.hidden) // [H, H]
    }

    /// Runs the full sequence `[len, input]` (batch of 1), returning all
    /// hidden states `[len, hidden]` and the final state.
    pub fn run_sequence<'g>(&self, bind: &Binder<'g>, xs: Var<'g>) -> (Var<'g>, GruState<'g>) {
        let dims = xs.dims();
        assert_eq!(dims.len(), 2, "run_sequence expects [len, input]");
        let len = dims[0];
        assert!(len > 0, "empty sequence");
        let mut state = self.zero_state(bind, 1);
        let mut outs = Vec::with_capacity(len);
        for t in 0..len {
            let x = xs.slice(0, t, 1); // [1, input]
            state = self.step(bind, x, state);
            outs.push(state.0);
        }
        (Var::concat(&outs, 0), state)
    }
}

impl Module for Gru {
    fn parameters(&self) -> ParamList {
        let mut ps = self.wx.parameters();
        ps.extend(self.wh.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    #[test]
    fn step_and_sequence_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new("g", 3, 5, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let xs = g.leaf(Tensor::randn(&[4, 3], &mut rng));
        let (hs, last) = gru.run_sequence(&b, xs);
        assert_eq!(hs.dims(), vec![4, 5]);
        assert_eq!(last.0.dims(), vec![1, 5]);
        // final row of hs equals the final state
        assert_eq!(
            hs.value().slice(0, 3, 1).as_slice(),
            last.0.value().as_slice()
        );
    }

    #[test]
    fn state_is_bounded_by_tanh_dynamics() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new("g", 2, 4, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let xs = g.leaf(Tensor::randn(&[50, 2], &mut rng).scale(10.0));
        let (_, last) = gru.run_sequence(&b, xs);
        assert!(last.0.value().as_slice().iter().all(|&h| h.abs() <= 1.0));
    }

    #[test]
    fn learns_to_remember_first_token() {
        // task: output = first input element, after 5 steps
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new("g", 1, 8, &mut rng);
        let head = Linear::new("head", 8, 1, true, &mut rng);
        let mut params = gru.parameters();
        params.extend(head.parameters());
        let mut opt = Adam::new(params.clone(), 1e-2);
        let mut losses = Vec::new();
        for it in 0..150 {
            let g = Graph::new();
            let b = Binder::new(&g);
            let first = if it % 2 == 0 { 1.0 } else { -1.0 };
            let mut seq = vec![first];
            seq.extend(std::iter::repeat_n(0.0, 4));
            let xs = g.leaf(Tensor::from_vec(seq, &[5, 1]));
            let (_, last) = gru.run_sequence(&b, xs);
            let y = head.forward(&b, last.0);
            let t = g.leaf(Tensor::from_vec(vec![first], &[1, 1]));
            let loss = (y - t).square().mean_all();
            losses.push(loss.value().scalar());
            opt.zero_grad();
            loss.backward();
            b.harvest();
            opt.step();
        }
        let early: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early * 0.2, "gru failed to learn: {early} → {late}");
    }
}
