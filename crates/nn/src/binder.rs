use std::cell::RefCell;

use crate::Parameter;
use yollo_tensor::{Element, Graph, Var};

/// Connects [`Parameter`]s to one autodiff tape for a forward/backward pass.
///
/// Layers call [`Binder::var`] to obtain a tape [`Var`] for each parameter;
/// after `loss.backward()`, [`Binder::harvest`] copies the tape gradients
/// back into the parameters (accumulating, so gradient accumulation across
/// micro-batches falls out naturally).
///
/// Binding the same parameter twice on one tape returns the same `Var`, so
/// weight sharing (e.g. the stacked Rel2Att modules reusing an embedding)
/// contributes a single, correctly-summed gradient.
pub struct Binder<'g, E: Element = f64> {
    graph: &'g Graph<E>,
    bound: RefCell<Vec<(usize, Parameter<E>)>>,
}

impl<E: Element> std::fmt::Debug for Binder<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Binder({} bound params)", self.bound.borrow().len())
    }
}

impl<'g, E: Element> Binder<'g, E> {
    /// Creates a binder for `graph`.
    pub fn new(graph: &'g Graph<E>) -> Self {
        Binder {
            graph,
            bound: RefCell::new(Vec::new()),
        }
    }

    /// The underlying tape.
    pub fn graph(&self) -> &'g Graph<E> {
        self.graph
    }

    /// Returns a tape variable holding the parameter's current value.
    pub fn var(&self, p: &Parameter<E>) -> Var<'g, E> {
        let mut bound = self.bound.borrow_mut();
        if let Some((id, _)) = bound.iter().find(|(_, q)| q.same_storage(p)) {
            return self.graph.var_by_index(*id);
        }
        let v = self.graph.leaf(p.value());
        bound.push((v.index(), p.clone()));
        v
    }

    /// Folds every bound parameter's tape gradient back into the parameter
    /// (accumulating with whatever is already there). Reads the tape grads
    /// in place — no clone per parameter — and skips parameters the
    /// backward pass never reached.
    pub fn harvest(&self) {
        for (id, p) in self.bound.borrow().iter() {
            self.graph.var_by_index(*id).with_grad(|g| {
                if let Some(g) = g {
                    p.accumulate_grad(g);
                }
            });
        }
    }

    /// Number of distinct parameters bound so far.
    pub fn len(&self) -> usize {
        self.bound.borrow().len()
    }

    /// True when no parameters have been bound.
    pub fn is_empty(&self) -> bool {
        self.bound.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_tensor::Tensor;

    #[test]
    fn harvest_accumulates_into_parameter() {
        let p = Parameter::new("w", Tensor::from_vec(vec![2.0], &[1]));
        let g = Graph::new();
        let b = Binder::new(&g);
        let w = b.var(&p);
        w.square().sum_all().backward();
        b.harvest();
        assert_eq!(p.grad().as_slice(), &[4.0]);
    }

    #[test]
    fn rebinding_shares_one_var() {
        let p = Parameter::new("w", Tensor::from_vec(vec![3.0], &[1]));
        let g = Graph::new();
        let b = Binder::new(&g);
        let w1 = b.var(&p);
        let w2 = b.var(&p);
        assert_eq!(b.len(), 1);
        // loss = w * w via two bindings → dL/dw = 2w = 6
        (w1 * w2).sum_all().backward();
        b.harvest();
        assert_eq!(p.grad().as_slice(), &[6.0]);
    }
}
