use crate::{he_normal, Binder, Module, ParamList, Parameter};
use rand::Rng;
use yollo_tensor::{conv2d_forward, Conv2dSpec, ConvScratch, Element, Tensor, Var};

/// A 2-D convolution layer over `[N,C,H,W]` inputs, He-initialised.
#[derive(Debug, Clone)]
pub struct Conv2d<E: Element = f64> {
    w: Parameter<E>,
    b: Option<Parameter<E>>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
}

impl Conv2d {
    /// Creates a convolution with a square `kernel`, given `stride`/`pad`.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = Parameter::new(
            format!("{name}.w"),
            he_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng),
        );
        let b = bias.then(|| Parameter::new(format!("{name}.b"), Tensor::zeros(&[out_channels])));
        Conv2d {
            w,
            b,
            spec,
            in_channels,
            out_channels,
            kernel,
        }
    }
}

impl<E: Element> Conv2d<E> {
    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Convolution hyper-parameters.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Applies the convolution (plus bias if configured).
    ///
    /// # Panics
    /// Panics if the input channel count differs from `in_channels`.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, x: Var<'g, E>) -> Var<'g, E> {
        let dims = x.dims();
        assert_eq!(dims.len(), 4, "conv input must be [N,C,H,W]");
        assert_eq!(dims[1], self.in_channels, "conv channel mismatch");
        let w = bind.var(&self.w);
        let y = x.conv2d(w, self.spec);
        match &self.b {
            Some(b) => {
                let bv = bind.var(b).reshape(&[1, self.out_channels, 1, 1]);
                y.add(bv)
            }
            None => y,
        }
    }

    /// Graph-free forward for inference: same math as [`Conv2d::forward`]
    /// but records nothing on a tape, and reuses the column buffers in
    /// `scratch` so repeated calls stop allocating per-call im2col
    /// matrices.
    ///
    /// # Panics
    /// Panics if the input channel count differs from `in_channels`.
    pub fn forward_infer(&self, x: &Tensor<E>, scratch: &mut ConvScratch<E>) -> Tensor<E> {
        assert_eq!(x.rank(), 4, "conv input must be [N,C,H,W]");
        assert_eq!(x.dims()[1], self.in_channels, "conv channel mismatch");
        let y = conv2d_forward(x, &self.w.value(), self.spec, scratch);
        match &self.b {
            Some(b) => {
                let bv = b.value().reshape(&[1, self.out_channels, 1, 1]);
                y.zip_broadcast(&bv, |a, c| a + c)
            }
            None => y,
        }
    }

    /// Output spatial size for an `h`×`w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        self.spec.output_hw(h, w, self.kernel, self.kernel)
    }

    /// This layer with the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Conv2d<F> {
        Conv2d {
            w: self.w.cast(),
            b: self.b.as_ref().map(Parameter::cast),
            spec: self.spec,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
        }
    }
}

impl Module for Conv2d {
    fn parameters(&self) -> ParamList {
        let mut ps = vec![self.w.clone()];
        if let Some(b) = &self.b {
            ps.push(b.clone());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    #[test]
    fn conv_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(
            "c",
            3,
            8,
            3,
            Conv2dSpec { stride: 2, pad: 1 },
            true,
            &mut rng,
        );
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::ones(&[2, 3, 8, 12]));
        let y = c.forward(&b, x);
        assert_eq!(y.dims(), vec![2, 8, 4, 6]);
        assert_eq!(c.output_hw(8, 12), (4, 6));
    }

    #[test]
    fn conv_bias_shifts_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Conv2d::new("c", 1, 1, 1, Conv2dSpec::default(), true, &mut rng);
        c.parameters()[0].set_value(Tensor::zeros(&[1, 1, 1, 1]));
        c.parameters()[1].set_value(Tensor::from_vec(vec![5.0], &[1]));
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::ones(&[1, 1, 2, 2]));
        let y = c.forward(&b, x);
        assert_eq!(y.value().as_slice(), &[5.0; 4]);
    }

    #[test]
    fn forward_infer_matches_graph_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = Conv2d::new(
            "c",
            3,
            5,
            3,
            Conv2dSpec { stride: 2, pad: 1 },
            true,
            &mut rng,
        );
        let x = Tensor::randn(&[2, 3, 9, 7], &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let want = c.forward(&b, g.leaf(x.clone())).value();
        let mut scratch = ConvScratch::new();
        let got = c.forward_infer(&x, &mut scratch);
        assert_eq!(got.dims(), want.dims());
        assert!(got.max_abs_diff(&want) < 1e-12);
        // buffer is retained across calls
        let cap = scratch.capacity();
        let again = c.forward_infer(&x, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
        assert!(again.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn conv_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Conv2d::new(
            "c",
            2,
            4,
            3,
            Conv2dSpec { stride: 1, pad: 1 },
            true,
            &mut rng,
        );
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::randn(&[1, 2, 5, 5], &mut rng));
        c.forward(&b, x).square().mean_all().backward();
        b.harvest();
        for p in c.parameters() {
            assert!(p.grad_norm() > 0.0, "no grad for {}", p.name());
        }
    }
}
