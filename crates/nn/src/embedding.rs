use crate::{Binder, Module, ParamList, Parameter};
use rand::Rng;
use yollo_tensor::{Element, Tensor, Var};

/// A token-embedding table `[vocab, dim]` with differentiable row lookup.
#[derive(Debug, Clone)]
pub struct Embedding<E: Element = f64> {
    table: Parameter<E>,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a table initialised from `N(0, 0.1)`.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let table = Parameter::new(
            format!("{name}.table"),
            Tensor::randn(&[vocab, dim], rng).scale(0.1),
        );
        Embedding { table, vocab, dim }
    }
}

impl<E: Element> Embedding<E> {
    /// Creates a table from pre-trained vectors (e.g. word2vec output).
    ///
    /// # Panics
    /// Panics if `weights` is not rank 2.
    pub fn from_pretrained(name: &str, weights: Tensor<E>) -> Self {
        assert_eq!(weights.rank(), 2, "embedding weights must be [vocab, dim]");
        let (vocab, dim) = (weights.dims()[0], weights.dims()[1]);
        Embedding {
            table: Parameter::new(format!("{name}.table"), weights),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a sequence of token ids, returning `[len, dim]`.
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn forward<'g>(&self, bind: &Binder<'g, E>, ids: &[usize]) -> Var<'g, E> {
        for &id in ids {
            assert!(id < self.vocab, "token id {id} out of vocab {}", self.vocab);
        }
        bind.var(&self.table).gather_rows(ids)
    }

    /// This table with the weights converted element-wise to dtype `F`.
    pub fn cast<F: Element>(&self) -> Embedding<F> {
        Embedding {
            table: self.table.cast(),
            vocab: self.vocab,
            dim: self.dim,
        }
    }
}

impl Module for Embedding {
    fn parameters(&self) -> ParamList {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use yollo_tensor::Graph;

    #[test]
    fn lookup_shapes_and_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new("e", 10, 4, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        let v = e.forward(&b, &[3, 3, 7]);
        assert_eq!(v.dims(), vec![3, 4]);
        let t = e.parameters()[0].value();
        assert_eq!(
            v.value().slice(0, 0, 1).as_slice(),
            t.slice(0, 3, 1).as_slice()
        );
    }

    #[test]
    fn grads_only_touch_used_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::new("e", 5, 2, &mut rng);
        let g = Graph::new();
        let b = Binder::new(&g);
        e.forward(&b, &[1, 1]).sum_all().backward();
        b.harvest();
        let grad = e.parameters()[0].grad();
        assert_eq!(grad.slice(0, 1, 1).as_slice(), &[2.0, 2.0]);
        assert_eq!(grad.slice(0, 0, 1).as_slice(), &[0.0, 0.0]);
        assert_eq!(grad.slice(0, 4, 1).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn from_pretrained_keeps_weights() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let e = Embedding::from_pretrained("e", w.clone());
        assert_eq!(e.vocab(), 2);
        assert_eq!(e.parameters()[0].value(), w);
    }
}
