use crate::Parameter;
use serde::{Deserialize, Serialize};
use yollo_tensor::Tensor;

/// Serialisable snapshot of an optimiser's mutable state (moment buffers,
/// step count, learning rate). Captured into training checkpoints so a
/// resumed run continues bit-for-bit identically to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptimState {
    /// [`Sgd`] state: learning rate and per-parameter velocity buffers.
    Sgd {
        /// Current learning rate.
        lr: f64,
        /// Momentum velocity, one tensor per parameter (in parameter order).
        velocity: Vec<Tensor>,
    },
    /// [`Adam`] state: learning rate, step count and both moment buffers.
    Adam {
        /// Current learning rate.
        lr: f64,
        /// Bias-correction step count.
        t: u64,
        /// First moments, one tensor per parameter (in parameter order).
        m: Vec<Tensor>,
        /// Second moments, one tensor per parameter (in parameter order).
        v: Vec<Tensor>,
    },
}

/// Checks that `bufs` lines up one-to-one (and shape-for-shape) with
/// `params`; `what` names the buffer in error messages.
fn check_buffers(params: &[Parameter], bufs: &[Tensor], what: &str) -> Result<(), String> {
    if bufs.len() != params.len() {
        return Err(format!(
            "optimizer state has {} {what} buffers for {} parameters",
            bufs.len(),
            params.len()
        ));
    }
    for (p, b) in params.iter().zip(bufs) {
        if p.dims() != b.dims() {
            return Err(format!(
                "optimizer {what} buffer for {} has shape {:?}, parameter has {:?}",
                p.name(),
                b.dims(),
                p.dims()
            ));
        }
    }
    Ok(())
}

/// A first-order optimiser over a fixed set of parameters.
pub trait Optimizer {
    /// Applies one update using the parameters' accumulated gradients.
    fn step(&mut self);

    /// The parameters this optimiser updates.
    fn parameters(&self) -> &[Parameter];

    /// Clears all accumulated gradients.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Snapshots the optimiser's mutable state for checkpointing.
    fn export_state(&self) -> OptimState;

    /// Restores state captured by [`Optimizer::export_state`].
    ///
    /// # Errors
    /// Returns a message naming the offending parameter/buffer when the
    /// state's variant, buffer count, or any buffer shape does not match.
    fn import_state(&mut self, state: &OptimState) -> Result<(), String>;
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Parameter>,
    lr: f64,
    momentum: f64,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    /// Panics unless `lr > 0` and `0 <= momentum < 1`.
    pub fn new(params: Vec<Parameter>, lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        let velocity = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let _span = yollo_obs::span!("optim.sgd.step");
        let _lat = yollo_obs::time_hist!("optim.step_ns");
        yollo_obs::counter!("optim.step.calls").incr();
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let g = p.grad();
            // v <- momentum * v + g ; w <- w - lr * v
            *v = &v.scale(self.momentum) + &g;
            let upd = v.scale(self.lr);
            p.update(|w, _| {
                for (wi, ui) in w.as_mut_slice().iter_mut().zip(upd.as_slice()) {
                    *wi -= ui;
                }
            });
        }
    }

    fn parameters(&self) -> &[Parameter] {
        &self.params
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimState {
        OptimState::Sgd {
            lr: self.lr,
            velocity: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: &OptimState) -> Result<(), String> {
        match state {
            OptimState::Sgd { lr, velocity } => {
                check_buffers(&self.params, velocity, "velocity")?;
                self.lr = *lr;
                self.velocity = velocity.clone();
                Ok(())
            }
            OptimState::Adam { .. } => Err("cannot import Adam state into Sgd".into()),
        }
    }
}

/// Adam (Kingma & Ba 2014) — the optimiser the paper trains YOLLO with
/// (learning rate 5e-5 in §4.2).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Parameter>,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    ///
    /// # Panics
    /// Panics unless `lr > 0`.
    pub fn new(params: Vec<Parameter>, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.dims())).collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m,
            v,
        }
    }

    /// Enables AdamW-style decoupled weight decay.
    ///
    /// # Panics
    /// Panics if `wd < 0`.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        let _span = yollo_obs::span!("optim.adam.step");
        let _lat = yollo_obs::time_hist!("optim.step_ns");
        yollo_obs::counter!("optim.step.calls").incr();
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let g = p.grad();
            for ((mi, vi), gi) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(g.as_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let (ms, vs) = (m.as_slice().to_vec(), v.as_slice().to_vec());
            p.update(|w, _| {
                for ((wi, mi), vi) in w.as_mut_slice().iter_mut().zip(&ms).zip(&vs) {
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    // decoupled decay (AdamW): applied to the weight itself
                    *wi -= lr * (mhat / (vhat.sqrt() + eps) + wd * *wi);
                }
            });
        }
    }

    fn parameters(&self) -> &[Parameter] {
        &self.params
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimState {
        OptimState::Adam {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn import_state(&mut self, state: &OptimState) -> Result<(), String> {
        match state {
            OptimState::Adam { lr, t, m, v } => {
                check_buffers(&self.params, m, "first-moment")?;
                check_buffers(&self.params, v, "second-moment")?;
                self.lr = *lr;
                self.t = *t;
                self.m = m.clone();
                self.v = v.clone();
                Ok(())
            }
            OptimState::Sgd { .. } => Err("cannot import Sgd state into Adam".into()),
        }
    }
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping.
///
/// # Panics
/// Panics unless `max_norm > 0`.
pub fn clip_global_norm(params: &[Parameter], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f64 = params
        .iter()
        .map(|p| {
            let n = p.grad_norm();
            n * n
        })
        .sum::<f64>()
        .sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for p in params {
            let scaled = p.grad().scale(scale);
            p.zero_grad();
            p.accumulate_grad(&scaled);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(opt: &mut dyn Optimizer, p: &Parameter) -> f64 {
        // loss = 0.5 * w^2  → grad = w
        opt.zero_grad();
        p.accumulate_grad(&p.value());
        opt.step();
        p.value().norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Parameter::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt = Sgd::new(vec![p.clone()], 0.2, 0.0);
        let mut n = f64::INFINITY;
        for _ in 0..50 {
            n = quadratic_step(&mut opt, &p);
        }
        assert!(n < 1e-3, "norm after sgd: {n}");
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mom: f64| {
            let p = Parameter::new("w", Tensor::from_vec(vec![5.0], &[1]));
            let mut opt = Sgd::new(vec![p.clone()], 0.01, mom);
            for _ in 0..60 {
                quadratic_step(&mut opt, &p);
            }
            p.value().norm()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Parameter::new("w", Tensor::from_vec(vec![5.0, -3.0, 0.5], &[3]));
        let mut opt = Adam::new(vec![p.clone()], 0.3);
        let mut n = f64::INFINITY;
        for _ in 0..200 {
            n = quadratic_step(&mut opt, &p);
        }
        assert!(n < 1e-2, "norm after adam: {n}");
    }

    #[test]
    fn weight_decay_shrinks_unused_weights() {
        let p = Parameter::new("w", Tensor::from_vec(vec![10.0], &[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.1).with_weight_decay(0.1);
        for _ in 0..50 {
            opt.zero_grad(); // zero gradient: only decay acts
            opt.step();
        }
        assert!(p.value().scalar() < 10.0 * 0.7, "decay had no effect");
        // and without decay the weight is untouched
        let q = Parameter::new("q", Tensor::from_vec(vec![10.0], &[1]));
        let mut opt2 = Adam::new(vec![q.clone()], 0.1);
        opt2.zero_grad();
        opt2.step();
        assert_eq!(q.value().scalar(), 10.0);
    }

    #[test]
    fn lr_schedule_hooks() {
        let p = Parameter::new("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(vec![p], 1e-3);
        assert_eq!(opt.learning_rate(), 1e-3);
        opt.set_learning_rate(1e-4);
        assert_eq!(opt.learning_rate(), 1e-4);
    }

    #[test]
    fn adam_state_roundtrip_reproduces_trajectory() {
        // run A: 10 steps straight through
        let p = Parameter::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..10 {
            quadratic_step(&mut opt, &p);
        }
        // run B: 5 steps, export, import into a fresh optimiser, 5 more
        let q = Parameter::new("w", Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut opt_b = Adam::new(vec![q.clone()], 0.1);
        for _ in 0..5 {
            quadratic_step(&mut opt_b, &q);
        }
        let state = opt_b.export_state();
        let mut opt_c = Adam::new(vec![q.clone()], 0.9); // wrong lr on purpose
        opt_c.import_state(&state).unwrap();
        assert_eq!(opt_c.learning_rate(), 0.1, "lr must come from the state");
        for _ in 0..5 {
            quadratic_step(&mut opt_c, &q);
        }
        // bit-identical: same f64 sequence on both paths
        assert_eq!(p.value().as_slice(), q.value().as_slice());
    }

    #[test]
    fn sgd_state_roundtrip_preserves_velocity() {
        let p = Parameter::new("w", Tensor::from_vec(vec![4.0], &[1]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1, 0.9);
        for _ in 0..3 {
            quadratic_step(&mut opt, &p);
        }
        let state = opt.export_state();
        let mut opt2 = Sgd::new(vec![p.clone()], 0.5, 0.9);
        opt2.import_state(&state).unwrap();
        assert_eq!(opt2.export_state(), state);
    }

    #[test]
    fn import_state_rejects_mismatches() {
        let p = Parameter::new("w", Tensor::zeros(&[2]));
        let mut adam = Adam::new(vec![p.clone()], 0.1);
        // wrong variant
        let sgd_state = Sgd::new(vec![p.clone()], 0.1, 0.0).export_state();
        assert!(adam.import_state(&sgd_state).unwrap_err().contains("Sgd"));
        // wrong buffer shape
        let bad = OptimState::Adam {
            lr: 0.1,
            t: 1,
            m: vec![Tensor::zeros(&[3])],
            v: vec![Tensor::zeros(&[3])],
        };
        let err = adam.import_state(&bad).unwrap_err();
        assert!(err.contains('w') && err.contains("[3]"), "{err}");
        // wrong buffer count
        let short = OptimState::Adam {
            lr: 0.1,
            t: 1,
            m: vec![],
            v: vec![],
        };
        assert!(adam.import_state(&short).is_err());
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let p = Parameter::new("w", Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let before = clip_global_norm(std::slice::from_ref(&p), 1.0);
        assert!((before - 5.0).abs() < 1e-12);
        assert!((p.grad_norm() - 1.0).abs() < 1e-12);
        // already small: untouched
        let q = Parameter::new("q", Tensor::zeros(&[1]));
        q.accumulate_grad(&Tensor::from_vec(vec![0.1], &[1]));
        clip_global_norm(std::slice::from_ref(&q), 1.0);
        assert!((q.grad_norm() - 0.1).abs() < 1e-12);
    }
}
