use std::cell::RefCell;

use crate::Binder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yollo_tensor::{Tensor, Var};

/// Inverted dropout: during training, zeroes each element with probability
/// `p` and scales survivors by `1/(1-p)`; at evaluation it is the identity.
#[derive(Debug)]
pub struct Dropout {
    p: f64,
    training: std::cell::Cell<bool>,
    rng: RefCell<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
        Dropout {
            p,
            training: std::cell::Cell::new(true),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Switches between training (dropping) and evaluation (identity).
    pub fn set_training(&self, training: bool) {
        self.training.set(training);
    }

    /// Applies dropout.
    pub fn forward<'g>(&self, bind: &Binder<'g>, x: Var<'g>) -> Var<'g> {
        if !self.training.get() || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mask = Tensor::from_fn(&x.dims(), |_| {
            if rng.gen::<f64>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        x.mul(bind.graph().leaf(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yollo_tensor::Graph;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::ones(&[4, 4]));
        let y = d.forward(&b, x);
        assert_eq!(y.value().as_slice(), &[1.0; 16]);
    }

    #[test]
    fn training_mode_preserves_expectation() {
        let d = Dropout::new(0.5, 1);
        let g = Graph::new();
        let b = Binder::new(&g);
        let x = g.leaf(Tensor::ones(&[100, 100]));
        let y = d.forward(&b, x).value();
        let mean: f64 = y.as_slice().iter().sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // survivors are scaled by 2
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));
    }
}
